//! Source locations ("debug info") attached to IR instructions.
//!
//! Hippocrates maps bug-finder trace events back to IR instructions through
//! these locations (paper §5.1), so every front end is expected to attach a
//! line-accurate [`SrcLoc`] to each lowered instruction.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An interned source-file name; indexes [`crate::Module::file_name`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FileId(pub u32);

/// A `file:line:col` source position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SrcLoc {
    /// The containing file.
    pub file: FileId,
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number; 0 when unknown.
    pub col: u32,
}

impl SrcLoc {
    /// Creates a location with an unknown column.
    pub fn line(file: FileId, line: u32) -> Self {
        SrcLoc { file, line, col: 0 }
    }
}

impl fmt::Display for SrcLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.col == 0 {
            write!(f, "file{}:{}", self.file.0, self.line)
        } else {
            write!(f, "file{}:{}:{}", self.file.0, self.line, self.col)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let l = SrcLoc::line(FileId(0), 12);
        assert_eq!(l.to_string(), "file0:12");
        let l2 = SrcLoc {
            file: FileId(1),
            line: 3,
            col: 9,
        };
        assert_eq!(l2.to_string(), "file1:3:9");
    }

    #[test]
    fn ordering_is_positional() {
        let a = SrcLoc::line(FileId(0), 1);
        let b = SrcLoc::line(FileId(0), 2);
        assert!(a < b);
    }
}
