//! Structural and type verification of modules.
//!
//! The verifier enforces the IR's well-formedness rules:
//!
//! * every block ends in exactly one terminator;
//! * operands reference in-range values, and pointer-consuming operations
//!   (loads, stores, flushes, `gep`, …) receive pointer-typed operands;
//! * call sites match callee signatures;
//! * every value use is dominated by its definition (arguments dominate
//!   everything).
//!
//! Hippocrates re-verifies the module after applying fixes; a verifier error
//! after repair would indicate a rewriter bug.

use crate::cfg::{Cfg, Dominators};
use crate::function::{BlockId, Function, InstId, ValueKind};
use crate::inst::{Op, Operand};
use crate::module::{FuncId, Module};
use crate::types::Type;
use std::fmt;

/// A verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// The offending function's name.
    pub function: String,
    /// A description of the violation.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "in function `{}`: {}", self.function, self.message)
    }
}

impl std::error::Error for VerifyError {}

/// Verifies every function in the module.
///
/// # Errors
///
/// Returns the first [`VerifyError`] found.
pub fn verify_module(m: &Module) -> Result<(), VerifyError> {
    for (id, _) in m.functions() {
        verify_function(m, id)?;
    }
    Ok(())
}

/// Verifies a single function.
///
/// # Errors
///
/// Returns the first [`VerifyError`] found.
pub fn verify_function(m: &Module, id: FuncId) -> Result<(), VerifyError> {
    let f = m.function(id);
    let err = |msg: String| VerifyError {
        function: f.name().to_string(),
        message: msg,
    };

    if !f.blocks_well_formed() {
        return Err(err(
            "a block is empty, unterminated, or has an interior terminator".into(),
        ));
    }

    // Map each linked instruction to its (block, index) and detect
    // double-linking.
    let mut pos: std::collections::HashMap<InstId, (BlockId, usize)> =
        std::collections::HashMap::new();
    for b in f.block_ids() {
        for (idx, &i) in f.block(b).insts.iter().enumerate() {
            if i.0 as usize >= f.inst_count() {
                return Err(err(format!(
                    "block {b:?} references out-of-range inst {i:?}"
                )));
            }
            if pos.insert(i, (b, idx)).is_some() {
                return Err(err(format!(
                    "instruction {i:?} linked into more than one place"
                )));
            }
        }
    }

    let cfg = Cfg::of(f);
    let dom = Dominators::compute(&cfg, f.entry());

    for (&inst_id, &(b, idx)) in &pos {
        let inst = f.inst(inst_id);
        check_operand_types(m, f, inst_id, &inst.op).map_err(&err)?;
        // Branch targets must exist.
        for t in inst.op.successors() {
            if t.0 as usize >= f.block_count() {
                return Err(err(format!("branch to nonexistent block {t:?}")));
            }
        }
        // Result bookkeeping must be consistent.
        if let Some(r) = inst.result {
            let vd = f
                .values
                .get(r.0 as usize)
                .ok_or_else(|| err(format!("result value {r:?} out of range")))?;
            if vd.kind != ValueKind::Inst(inst_id) {
                return Err(err(format!(
                    "value {r:?} does not point back at its defining inst {inst_id:?}"
                )));
            }
        }
        // Dominance of value uses.
        for op in inst.op.operands() {
            if let Operand::Value(v) = op {
                let vd = f
                    .values
                    .get(v.0 as usize)
                    .ok_or_else(|| err(format!("operand value {v:?} out of range")))?;
                match vd.kind {
                    ValueKind::Arg(_) => {}
                    ValueKind::Inst(def_inst) => {
                        let Some(&(db, didx)) = pos.get(&def_inst) else {
                            return Err(err(format!(
                                "use of value {v:?} whose defining inst is not linked"
                            )));
                        };
                        let ok = if db == b {
                            didx < idx
                        } else {
                            dom.dominates(db, b)
                        };
                        if !ok {
                            return Err(err(format!(
                                "use of value {v:?} at {b:?}[{idx}] not dominated by its definition"
                            )));
                        }
                    }
                }
            }
        }
        // Return type.
        if let Op::Ret { value } = &inst.op {
            match (value, f.ret_type()) {
                (None, Type::Void) => {}
                (Some(_), Type::Void) => {
                    return Err(err("returning a value from a void function".into()))
                }
                (None, _) => return Err(err("missing return value".into())),
                (Some(v), ty) => {
                    let vt = operand_type(f, *v).map_err(&err)?;
                    if !types_compatible(vt, ty) {
                        return Err(err(format!("return type mismatch: {vt} vs {ty}")));
                    }
                }
            }
        }
    }
    Ok(())
}

fn types_compatible(actual: Type, expected: Type) -> bool {
    match (actual, expected) {
        (Type::Int(_), Type::Int(_)) => true,
        (a, b) => a == b,
    }
}

fn operand_type(f: &Function, op: Operand) -> Result<Type, String> {
    match op {
        Operand::Value(v) => f
            .values
            .get(v.0 as usize)
            .map(|vd| vd.ty)
            .ok_or_else(|| format!("operand value {v:?} out of range")),
        Operand::Const(_) => Ok(Type::Int(8)),
        Operand::Null => Ok(Type::Ptr),
    }
}

fn expect_ptr(f: &Function, op: Operand, what: &str) -> Result<(), String> {
    let t = operand_type(f, op)?;
    if t.is_ptr() {
        Ok(())
    } else {
        Err(format!("{what} must be a pointer, got {t}"))
    }
}

fn expect_int(f: &Function, op: Operand, what: &str) -> Result<(), String> {
    let t = operand_type(f, op)?;
    if t.is_int() {
        Ok(())
    } else {
        Err(format!("{what} must be an integer, got {t}"))
    }
}

fn check_operand_types(m: &Module, f: &Function, _id: InstId, op: &Op) -> Result<(), String> {
    match op {
        Op::Bin { a, b, .. } | Op::Cmp { a, b, .. } => {
            // Comparisons may compare pointers (e.g. null checks); arithmetic
            // requires integers except `gep`-free pointer equality idioms, so
            // we only require that binary *arithmetic* sees integers.
            if matches!(op, Op::Bin { .. }) {
                expect_int(f, *a, "binary lhs")?;
                expect_int(f, *b, "binary rhs")?;
            }
            Ok(())
        }
        Op::HeapAlloc { size } | Op::PmemMap { size, .. } => expect_int(f, *size, "size"),
        Op::HeapFree { ptr } => expect_ptr(f, *ptr, "freed pointer"),
        Op::Gep { base, offset } => {
            expect_ptr(f, *base, "gep base")?;
            expect_int(f, *offset, "gep offset")
        }
        Op::Load { addr, ty } => {
            if *ty == Type::Void {
                return Err("cannot load void".into());
            }
            expect_ptr(f, *addr, "load address")
        }
        Op::Store { addr, value, ty } => {
            if *ty == Type::Void {
                return Err("cannot store void".into());
            }
            expect_ptr(f, *addr, "store address")?;
            let vt = operand_type(f, *value)?;
            if ty.is_ptr() != vt.is_ptr() {
                return Err(format!("store of {vt} with declared type {ty}"));
            }
            Ok(())
        }
        Op::Memcpy { dst, src, len } => {
            expect_ptr(f, *dst, "memcpy dst")?;
            expect_ptr(f, *src, "memcpy src")?;
            expect_int(f, *len, "memcpy len")
        }
        Op::Memset { dst, val, len } => {
            expect_ptr(f, *dst, "memset dst")?;
            expect_int(f, *val, "memset value")?;
            expect_int(f, *len, "memset len")
        }
        Op::Flush { addr, .. } => expect_ptr(f, *addr, "flush address"),
        Op::Call { callee, args } => {
            if callee.0 as usize >= m.function_count() {
                return Err(format!("call to nonexistent function {callee:?}"));
            }
            let cf = m.function(*callee);
            if cf.params().len() != args.len() {
                return Err(format!(
                    "call to `{}` with {} args, expected {}",
                    cf.name(),
                    args.len(),
                    cf.params().len()
                ));
            }
            for (i, (&arg, &pt)) in args.iter().zip(cf.params()).enumerate() {
                let at = operand_type(f, arg)?;
                if !types_compatible(at, pt) {
                    return Err(format!(
                        "call to `{}`: argument {i} has type {at}, expected {pt}",
                        cf.name()
                    ));
                }
            }
            Ok(())
        }
        Op::CondBr { cond, .. } => expect_int(f, *cond, "branch condition"),
        Op::GlobalAddr { global } => {
            if global.0 as usize >= m.global_count() {
                return Err(format!("reference to nonexistent global {global:?}"));
            }
            Ok(())
        }
        Op::Print { value } => {
            operand_type(f, *value)?;
            Ok(())
        }
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::Inst;
    use crate::ops::FlushKind;

    fn simple_module() -> Module {
        let mut m = Module::new();
        let f = m.declare_function("f", vec![Type::Ptr], Type::Void);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.entry_block();
        b.switch_to(e);
        let p = b.arg(0);
        b.store(Type::int(8), p, 1i64);
        b.flush(FlushKind::Clwb, p);
        b.ret(None);
        b.finish();
        m
    }

    #[test]
    fn good_module_verifies() {
        let m = simple_module();
        assert!(verify_module(&m).is_ok());
    }

    #[test]
    fn flush_of_int_rejected() {
        let mut m = Module::new();
        let f = m.declare_function("f", vec![Type::int(8)], Type::Void);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.entry_block();
        b.switch_to(e);
        let x = b.arg(0);
        b.flush(FlushKind::Clwb, x);
        b.ret(None);
        b.finish();
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("flush address"), "{e}");
    }

    #[test]
    fn call_arity_mismatch_rejected() {
        let mut m = Module::new();
        let g = m.declare_function("g", vec![Type::int(8)], Type::Void);
        {
            let mut b = FunctionBuilder::new(&mut m, g);
            let e = b.entry_block();
            b.switch_to(e);
            b.ret(None);
            b.finish();
        }
        let f = m.declare_function("f", vec![], Type::Void);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.entry_block();
        b.switch_to(e);
        b.emit(Op::Call {
            callee: g,
            args: vec![],
        });
        b.ret(None);
        b.finish();
        let err = verify_module(&m).unwrap_err();
        assert!(err.message.contains("0 args"), "{err}");
    }

    #[test]
    fn use_not_dominated_rejected() {
        // Build: entry -> (a | b); value defined in a, used in b.
        let mut m = Module::new();
        let f = m.declare_function("f", vec![Type::int(8)], Type::Void);
        let mut bl = FunctionBuilder::new(&mut m, f);
        let entry = bl.entry_block();
        let a = bl.new_block("a");
        let b = bl.new_block("b");
        bl.switch_to(entry);
        let x = bl.arg(0);
        bl.cond_br(x, a, b);
        bl.switch_to(a);
        let v = bl.bin(crate::ops::BinOp::Add, 1i64, 2i64);
        bl.ret(None);
        bl.switch_to(b);
        bl.print(v); // not dominated!
        bl.ret(None);
        bl.finish();
        let err = verify_module(&m).unwrap_err();
        assert!(err.message.contains("not dominated"), "{err}");
    }

    #[test]
    fn return_type_mismatch_rejected() {
        let mut m = Module::new();
        let f = m.declare_function("f", vec![], Type::Ptr);
        let func = m.function_mut(f);
        let i = func.alloc_inst(Inst {
            op: Op::Ret {
                value: Some(Operand::Const(1)),
            },
            loc: None,
            result: None,
        });
        let e = func.entry();
        func.block_mut(e).insts.push(i);
        let err = verify_module(&m).unwrap_err();
        assert!(err.message.contains("return type mismatch"), "{err}");
    }

    #[test]
    fn void_return_with_value_rejected() {
        let mut m = Module::new();
        let f = m.declare_function("f", vec![], Type::Void);
        let func = m.function_mut(f);
        let i = func.alloc_inst(Inst {
            op: Op::Ret {
                value: Some(Operand::Const(1)),
            },
            loc: None,
            result: None,
        });
        let e = func.entry();
        func.block_mut(e).insts.push(i);
        assert!(verify_module(&m).is_err());
    }

    #[test]
    fn double_linked_inst_rejected() {
        let mut m = simple_module();
        let f = m.function_by_name("f").unwrap();
        let func = m.function_mut(f);
        let first = func.block(func.entry()).insts[0];
        let e = func.entry();
        // Link the store a second time (before the terminator).
        func.block_mut(e).insts.insert(1, first);
        assert!(verify_module(&m).is_err());
    }

    #[test]
    fn same_block_use_before_def_rejected() {
        let mut m = Module::new();
        let f = m.declare_function("f", vec![], Type::Void);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.entry_block();
        b.switch_to(e);
        let v = b.bin(crate::ops::BinOp::Add, 1i64, 2i64);
        b.print(v);
        b.ret(None);
        b.finish();
        // Swap the def and the use.
        let func = m.function_mut(f);
        let entry = func.entry();
        func.block_mut(entry).insts.swap(0, 1);
        assert!(verify_module(&m).is_err());
    }
}
