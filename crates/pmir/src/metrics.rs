//! Size metrics used by the §6.4 code-bloat experiment.

use crate::inst::Op;
use crate::module::Module;

/// Static size statistics of a module.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModuleMetrics {
    /// Number of functions.
    pub functions: usize,
    /// Number of basic blocks across all functions.
    pub blocks: usize,
    /// Number of instructions *linked into blocks* across all functions.
    pub insts: usize,
    /// Lines in the textual IR (the paper's "lines of LLVM IR" analog).
    pub ir_lines: usize,
    /// Number of linked flush instructions.
    pub flushes: usize,
    /// Number of linked fence instructions.
    pub fences: usize,
    /// Number of linked store-like instructions (store/memcpy/memset).
    pub stores: usize,
    /// Number of linked call instructions.
    pub calls: usize,
}

impl ModuleMetrics {
    /// Measures `m`.
    pub fn measure(m: &Module) -> Self {
        let mut s = ModuleMetrics {
            functions: m.function_count(),
            ir_lines: crate::display::print_module(m).lines().count(),
            ..Default::default()
        };
        for (_, f) in m.functions() {
            s.blocks += f.block_count();
            for (_, i) in f.linked_insts() {
                s.insts += 1;
                match &f.inst(i).op {
                    Op::Flush { .. } => s.flushes += 1,
                    Op::Fence { .. } => s.fences += 1,
                    op if op.is_pm_storeish() => s.stores += 1,
                    Op::Call { .. } => s.calls += 1,
                    _ => {}
                }
            }
        }
        s
    }

    /// Relative growth of IR lines from `self` to `after`, in percent.
    pub fn ir_growth_percent(&self, after: &ModuleMetrics) -> f64 {
        if self.ir_lines == 0 {
            return 0.0;
        }
        (after.ir_lines as f64 - self.ir_lines as f64) / self.ir_lines as f64 * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::ops::{FenceKind, FlushKind};
    use crate::types::Type;

    #[test]
    fn counts() {
        let mut m = Module::new();
        let f = m.declare_function("f", vec![Type::Ptr], Type::Void);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.entry_block();
        b.switch_to(e);
        let p = b.arg(0);
        b.store(Type::int(8), p, 1i64);
        b.flush(FlushKind::Clwb, p);
        b.fence(FenceKind::Sfence);
        b.ret(None);
        b.finish();
        let s = ModuleMetrics::measure(&m);
        assert_eq!(s.functions, 1);
        assert_eq!(s.blocks, 1);
        assert_eq!(s.insts, 4);
        assert_eq!(s.flushes, 1);
        assert_eq!(s.fences, 1);
        assert_eq!(s.stores, 1);
        assert!(s.ir_lines >= 6);
    }

    #[test]
    fn growth_percent() {
        let a = ModuleMetrics {
            ir_lines: 1000,
            ..Default::default()
        };
        let b = ModuleMetrics {
            ir_lines: 1010,
            ..Default::default()
        };
        let g = a.ir_growth_percent(&b);
        assert!((g - 1.0).abs() < 1e-9);
    }
}
