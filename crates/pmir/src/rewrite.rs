//! IR rewriting utilities used by the Hippocrates repair engine.
//!
//! All rewrites are *additive*: instructions are appended to the arena and
//! spliced into block instruction lists, so existing [`InstId`]s (which
//! traces refer to) stay valid.

use crate::function::{Function, InstId};
use crate::inst::{Inst, Op};
use crate::module::{FuncId, Module};
use crate::srcloc::SrcLoc;

/// Inserts `op` immediately after `target` in its block; returns the new
/// instruction's id.
///
/// `op` must not produce a result and must not be a terminator (fixes are
/// flushes, fences, and calls-to-void — none of which define values).
///
/// # Panics
///
/// Panics if `target` is not linked into a block, `target` is a terminator,
/// or `op` produces a result or terminates a block.
pub fn insert_after(f: &mut Function, target: InstId, op: Op, loc: Option<SrcLoc>) -> InstId {
    assert!(
        op.result_type().is_none(),
        "insert_after: op defines a value"
    );
    assert!(!op.is_terminator(), "insert_after: op is a terminator");
    assert!(
        !f.inst(target).op.is_terminator(),
        "insert_after: cannot insert after a terminator (use insert_before)"
    );
    let (block, idx) = f
        .find_inst_pos(target)
        .expect("insert_after: target not linked into any block");
    let id = f.alloc_inst(Inst {
        op,
        loc,
        result: None,
    });
    f.block_mut(block).insts.insert(idx + 1, id);
    id
}

/// Inserts `op` immediately before `target` in its block; returns the new
/// instruction's id.
///
/// # Panics
///
/// Panics if `target` is not linked, or `op` produces a result or terminates
/// a block.
pub fn insert_before(f: &mut Function, target: InstId, op: Op, loc: Option<SrcLoc>) -> InstId {
    assert!(
        op.result_type().is_none(),
        "insert_before: op defines a value"
    );
    assert!(!op.is_terminator(), "insert_before: op is a terminator");
    let (block, idx) = f
        .find_inst_pos(target)
        .expect("insert_before: target not linked into any block");
    let id = f.alloc_inst(Inst {
        op,
        loc,
        result: None,
    });
    f.block_mut(block).insts.insert(idx, id);
    id
}

/// Deep-clones `src` under `new_name` and records the provenance in
/// [`Function::persistent_clone_of`]. Internal [`InstId`]s/[`crate::ValueId`]s
/// are preserved 1:1, so positions valid in the original are valid in the
/// clone.
///
/// # Panics
///
/// Panics if `new_name` is already taken.
pub fn clone_function(m: &mut Module, src: FuncId, new_name: &str) -> FuncId {
    let mut f = m.function(src).clone();
    let orig_name = f.name().to_string();
    f.set_name(new_name.to_string());
    f.persistent_clone_of = Some(orig_name);
    m.add_function(f)
}

/// Redirects the call instruction `call` in `f` to `new_callee`.
///
/// # Panics
///
/// Panics if `call` is not a call instruction.
pub fn retarget_call(f: &mut Function, call: InstId, new_callee: FuncId) {
    match &mut f.inst_mut(call).op {
        Op::Call { callee, .. } => *callee = new_callee,
        other => panic!("retarget_call: not a call instruction: {other:?}"),
    }
}

/// Finds the first call instruction in `f` whose callee is `target`, if any.
pub fn find_call_to(f: &Function, target: FuncId) -> Option<InstId> {
    f.linked_insts()
        .map(|(_, i)| i)
        .find(|&i| matches!(f.inst(i).op, Op::Call { callee, .. } if callee == target))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::Operand;
    use crate::ops::{FenceKind, FlushKind};
    use crate::types::Type;
    use crate::verify::verify_module;

    fn module_with_store() -> (Module, FuncId, InstId) {
        let mut m = Module::new();
        let f = m.declare_function("f", vec![Type::Ptr], Type::Void);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.entry_block();
        b.switch_to(e);
        let p = b.arg(0);
        let st = b.store(Type::int(8), p, 1i64);
        b.ret(None);
        b.finish();
        (m, f, st)
    }

    #[test]
    fn insert_flush_after_store() {
        let (mut m, f, st) = module_with_store();
        let p = m.function(f).arg(0);
        let fl = insert_after(
            m.function_mut(f),
            st,
            Op::Flush {
                kind: FlushKind::Clwb,
                addr: Operand::Value(p),
            },
            None,
        );
        insert_after(
            m.function_mut(f),
            fl,
            Op::Fence {
                kind: FenceKind::Sfence,
            },
            None,
        );
        verify_module(&m).unwrap();
        let func = m.function(f);
        let entry = func.entry();
        let kinds: Vec<String> = func
            .block(entry)
            .insts
            .iter()
            .map(|&i| {
                format!("{:?}", func.inst(i).op)
                    .split_whitespace()
                    .next()
                    .unwrap()
                    .to_string()
            })
            .collect();
        assert_eq!(kinds[0], "Store");
        assert!(matches!(
            func.inst(func.block(entry).insts[1]).op,
            Op::Flush { .. }
        ));
        assert!(matches!(
            func.inst(func.block(entry).insts[2]).op,
            Op::Fence { .. }
        ));
        assert!(matches!(
            func.inst(func.block(entry).insts[3]).op,
            Op::Ret { .. }
        ));
    }

    #[test]
    fn insert_before_terminator() {
        let (mut m, f, _) = module_with_store();
        let func = m.function(f);
        let entry = func.entry();
        let term = *func.block(entry).insts.last().unwrap();
        insert_before(
            m.function_mut(f),
            term,
            Op::Fence {
                kind: FenceKind::Sfence,
            },
            None,
        );
        verify_module(&m).unwrap();
        let func = m.function(f);
        let n = func.block(entry).insts.len();
        assert!(matches!(
            func.inst(func.block(entry).insts[n - 2]).op,
            Op::Fence { .. }
        ));
    }

    #[test]
    #[should_panic(expected = "after a terminator")]
    fn insert_after_terminator_panics() {
        let (mut m, f, _) = module_with_store();
        let func = m.function(f);
        let term = *func.block(func.entry()).insts.last().unwrap();
        insert_after(
            m.function_mut(f),
            term,
            Op::Fence {
                kind: FenceKind::Sfence,
            },
            None,
        );
    }

    #[test]
    fn clone_preserves_positions_and_provenance() {
        let (mut m, f, st) = module_with_store();
        let clone = clone_function(&mut m, f, "f_PM");
        verify_module(&m).unwrap();
        assert_eq!(m.function(clone).name(), "f_PM");
        assert_eq!(m.function(clone).persistent_clone_of.as_deref(), Some("f"));
        // The store occupies the same position in the clone.
        assert_eq!(
            m.function(clone).find_inst_pos(st),
            m.function(f).find_inst_pos(st)
        );
    }

    #[test]
    fn retarget_and_find_call() {
        let (mut m, f, _) = module_with_store();
        let g = m.declare_function("g", vec![Type::Ptr], Type::Void);
        {
            let mut b = FunctionBuilder::new(&mut m, g);
            let e = b.entry_block();
            b.switch_to(e);
            b.ret(None);
            b.finish();
        }
        let main = m.declare_function("main", vec![], Type::Void);
        let mut b = FunctionBuilder::new(&mut m, main);
        let e = b.entry_block();
        b.switch_to(e);
        let pm = b.pmem_map(64i64, 0);
        b.call(f, vec![Operand::Value(pm)]);
        b.ret(None);
        b.finish();

        let call = find_call_to(m.function(main), f).unwrap();
        assert!(find_call_to(m.function(main), g).is_none());
        retarget_call(m.function_mut(main), call, g);
        assert!(find_call_to(m.function(main), g).is_some());
        verify_module(&m).unwrap();
    }
}

/// Unlinks `inst` from its block without deleting it from the arena (ids
/// stay stable). Only legal for instructions that define no value and do
/// not terminate a block — i.e. exactly the flush/fence class the
/// performance pass removes.
///
/// # Panics
///
/// Panics if `inst` defines a value, is a terminator, or is not linked.
pub fn unlink(f: &mut Function, inst: InstId) {
    assert!(
        f.inst(inst).result.is_none(),
        "unlink: instruction defines a value"
    );
    assert!(
        !f.inst(inst).op.is_terminator(),
        "unlink: instruction is a terminator"
    );
    let (block, idx) = f
        .find_inst_pos(inst)
        .expect("unlink: instruction not linked");
    f.block_mut(block).insts.remove(idx);
}

#[cfg(test)]
mod unlink_tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::ops::FlushKind;
    use crate::types::Type;
    use crate::verify::verify_module;

    #[test]
    fn unlink_removes_flush() {
        let mut m = Module::new();
        let f = m.declare_function("f", vec![Type::Ptr], Type::Void);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.entry_block();
        b.switch_to(e);
        let p = b.arg(0);
        let fl = b.flush(FlushKind::Clwb, p);
        b.ret(None);
        b.finish();
        unlink(m.function_mut(f), fl);
        verify_module(&m).unwrap();
        assert_eq!(m.function(f).block(m.function(f).entry()).insts.len(), 1);
    }

    #[test]
    #[should_panic(expected = "defines a value")]
    fn unlink_rejects_value_definers() {
        let mut m = Module::new();
        let f = m.declare_function("f", vec![], Type::Void);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.entry_block();
        b.switch_to(e);
        let v = b.alloca(8);
        let _ = v;
        b.ret(None);
        b.finish();
        let first = m.function(f).block(m.function(f).entry()).insts[0];
        unlink(m.function_mut(f), first);
    }
}
