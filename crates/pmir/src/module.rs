//! Modules: the unit of compilation, analysis, and repair.

use crate::function::Function;
use crate::srcloc::FileId;
use crate::types::Type;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifies a function within a [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FuncId(pub u32);

/// Identifies a global within a [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GlobalId(pub u32);

/// A module-level byte-array global with optional initial contents.
#[derive(Debug, Clone, PartialEq)]
pub struct Global {
    /// The global's name.
    pub name: String,
    /// Size in bytes.
    pub size: u64,
    /// Initial contents; zero-filled to `size` if shorter.
    pub init: Vec<u8>,
}

/// A whole program: functions, globals, and interned source-file names.
#[derive(Debug, Clone, Default)]
pub struct Module {
    funcs: Vec<Function>,
    by_name: HashMap<String, FuncId>,
    globals: Vec<Global>,
    files: Vec<String>,
}

impl Module {
    /// Creates an empty module.
    pub fn new() -> Self {
        Module::default()
    }

    /// Declares a new function with an empty body; its body is filled in via
    /// [`crate::FunctionBuilder`].
    ///
    /// # Panics
    ///
    /// Panics if a function with the same name already exists.
    pub fn declare_function(
        &mut self,
        name: impl Into<String>,
        params: Vec<Type>,
        ret: Type,
    ) -> FuncId {
        let name = name.into();
        assert!(
            !self.by_name.contains_key(&name),
            "duplicate function name: {name}"
        );
        let id = FuncId(self.funcs.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.funcs.push(Function::new(name, params, ret));
        id
    }

    /// Adds an already-built function (used by cloning and the parser).
    ///
    /// # Panics
    ///
    /// Panics if a function with the same name already exists.
    pub fn add_function(&mut self, f: Function) -> FuncId {
        assert!(
            !self.by_name.contains_key(f.name()),
            "duplicate function name: {}",
            f.name()
        );
        let id = FuncId(self.funcs.len() as u32);
        self.by_name.insert(f.name().to_string(), id);
        self.funcs.push(f);
        id
    }

    /// Renames a function, keeping the name index consistent.
    ///
    /// # Panics
    ///
    /// Panics if the new name is already taken.
    pub fn rename_function(&mut self, id: FuncId, new_name: impl Into<String>) {
        let new_name = new_name.into();
        assert!(
            !self.by_name.contains_key(&new_name),
            "duplicate function name: {new_name}"
        );
        let old = self.funcs[id.0 as usize].name().to_string();
        self.by_name.remove(&old);
        self.by_name.insert(new_name.clone(), id);
        self.funcs[id.0 as usize].set_name(new_name);
    }

    /// Looks a function up by name.
    pub fn function_by_name(&self, name: &str) -> Option<FuncId> {
        self.by_name.get(name).copied()
    }

    /// Accesses a function.
    ///
    /// # Panics
    ///
    /// Panics if `id` is invalid.
    pub fn function(&self, id: FuncId) -> &Function {
        &self.funcs[id.0 as usize]
    }

    /// Mutable function access.
    ///
    /// # Panics
    ///
    /// Panics if `id` is invalid.
    pub fn function_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.funcs[id.0 as usize]
    }

    /// Number of functions.
    pub fn function_count(&self) -> usize {
        self.funcs.len()
    }

    /// Iterates over function ids in declaration order.
    pub fn func_ids(&self) -> impl Iterator<Item = FuncId> {
        (0..self.funcs.len() as u32).map(FuncId)
    }

    /// Iterates over `(id, function)` pairs.
    pub fn functions(&self) -> impl Iterator<Item = (FuncId, &Function)> {
        self.funcs
            .iter()
            .enumerate()
            .map(|(i, f)| (FuncId(i as u32), f))
    }

    /// Adds a global byte array.
    pub fn add_global(&mut self, name: impl Into<String>, size: u64, init: Vec<u8>) -> GlobalId {
        let id = GlobalId(self.globals.len() as u32);
        self.globals.push(Global {
            name: name.into(),
            size,
            init,
        });
        id
    }

    /// Accesses a global.
    ///
    /// # Panics
    ///
    /// Panics if `id` is invalid.
    pub fn global(&self, id: GlobalId) -> &Global {
        &self.globals[id.0 as usize]
    }

    /// Iterates over `(id, global)` pairs.
    pub fn globals(&self) -> impl Iterator<Item = (GlobalId, &Global)> {
        self.globals
            .iter()
            .enumerate()
            .map(|(i, g)| (GlobalId(i as u32), g))
    }

    /// Number of globals.
    pub fn global_count(&self) -> usize {
        self.globals.len()
    }

    /// Interns a source-file name, returning a stable [`FileId`].
    pub fn intern_file(&mut self, name: impl Into<String>) -> FileId {
        let name = name.into();
        if let Some(i) = self.files.iter().position(|f| *f == name) {
            return FileId(i as u32);
        }
        let id = FileId(self.files.len() as u32);
        self.files.push(name);
        id
    }

    /// The name behind a [`FileId`], or `"<unknown>"`.
    pub fn file_name(&self, id: FileId) -> &str {
        self.files
            .get(id.0 as usize)
            .map(String::as_str)
            .unwrap_or("<unknown>")
    }

    /// All interned file names.
    pub fn files(&self) -> &[String] {
        &self.files
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_and_lookup() {
        let mut m = Module::new();
        let f = m.declare_function("foo", vec![Type::Ptr], Type::Int(8));
        assert_eq!(m.function_by_name("foo"), Some(f));
        assert_eq!(m.function(f).ret_type(), Type::Int(8));
        assert_eq!(m.function_count(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate function name")]
    fn duplicate_name_panics() {
        let mut m = Module::new();
        m.declare_function("foo", vec![], Type::Void);
        m.declare_function("foo", vec![], Type::Void);
    }

    #[test]
    fn rename_updates_index() {
        let mut m = Module::new();
        let f = m.declare_function("foo", vec![], Type::Void);
        m.rename_function(f, "bar");
        assert_eq!(m.function_by_name("foo"), None);
        assert_eq!(m.function_by_name("bar"), Some(f));
        assert_eq!(m.function(f).name(), "bar");
    }

    #[test]
    fn file_interning_dedupes() {
        let mut m = Module::new();
        let a = m.intern_file("x.pmc");
        let b = m.intern_file("x.pmc");
        let c = m.intern_file("y.pmc");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(m.file_name(a), "x.pmc");
    }

    #[test]
    fn globals() {
        let mut m = Module::new();
        let g = m.add_global("table", 64, vec![1, 2, 3]);
        assert_eq!(m.global(g).size, 64);
        assert_eq!(m.global(g).init, vec![1, 2, 3]);
        assert_eq!(m.global_count(), 1);
    }
}
