//! Functions, basic blocks, and virtual values.

use crate::inst::{Inst, Op};
use crate::types::Type;
use serde::{Deserialize, Serialize};

/// Identifies a basic block within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockId(pub u32);

/// Identifies an instruction within a function's instruction arena. Ids are
/// stable across fix insertion (instructions are only ever appended).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct InstId(pub u32);

/// Identifies a virtual value (argument or instruction result) within a
/// function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ValueId(pub u32);

/// How a virtual value is defined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueKind {
    /// The `n`-th function argument.
    Arg(u32),
    /// The result of an instruction.
    Inst(InstId),
}

/// A virtual value definition.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueDef {
    /// How the value is produced.
    pub kind: ValueKind,
    /// The value's type.
    pub ty: Type,
    /// An optional human-readable name (used by the printer).
    pub name: Option<String>,
}

/// A basic block: an ordered list of instructions ending in a terminator.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Block {
    /// Optional label for printing.
    pub name: Option<String>,
    /// Instruction ids in execution order.
    pub insts: Vec<InstId>,
}

/// A function definition.
///
/// Blocks, instructions, and values live in per-function arenas indexed by
/// [`BlockId`], [`InstId`], and [`ValueId`]. The Hippocrates rewriter only
/// appends to the arenas, so ids recorded in traces stay valid across repair.
#[derive(Debug, Clone)]
pub struct Function {
    name: String,
    params: Vec<Type>,
    ret: Type,
    pub(crate) blocks: Vec<Block>,
    pub(crate) insts: Vec<Inst>,
    pub(crate) values: Vec<ValueDef>,
    entry: BlockId,
    /// Set when this function was produced by the persistent-subprogram
    /// transformation; holds the original function's name.
    pub persistent_clone_of: Option<String>,
}

impl Function {
    /// Creates an empty function with an entry block and one value per
    /// parameter.
    pub fn new(name: impl Into<String>, params: Vec<Type>, ret: Type) -> Self {
        let values = params
            .iter()
            .enumerate()
            .map(|(i, &ty)| ValueDef {
                kind: ValueKind::Arg(i as u32),
                ty,
                name: None,
            })
            .collect();
        Function {
            name: name.into(),
            params,
            ret,
            blocks: vec![Block {
                name: Some("entry".to_string()),
                insts: vec![],
            }],
            insts: vec![],
            values,
            entry: BlockId(0),
            persistent_clone_of: None,
        }
    }

    /// The function's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the function. The module's name index must be refreshed by the
    /// caller; prefer [`crate::Module::rename_function`].
    pub(crate) fn set_name(&mut self, name: String) {
        self.name = name;
    }

    /// Parameter types.
    pub fn params(&self) -> &[Type] {
        &self.params
    }

    /// Return type.
    pub fn ret_type(&self) -> Type {
        self.ret
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// The [`ValueId`] of the `n`-th argument.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn arg(&self, n: usize) -> ValueId {
        assert!(n < self.params.len(), "argument index out of range");
        ValueId(n as u32)
    }

    /// Number of basic blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Iterates over block ids in creation order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Accesses a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is invalid.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.0 as usize]
    }

    /// Mutable block access.
    ///
    /// # Panics
    ///
    /// Panics if `id` is invalid.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.0 as usize]
    }

    /// Appends a new empty block and returns its id.
    pub fn add_block(&mut self, name: Option<String>) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block {
            name,
            insts: vec![],
        });
        id
    }

    /// Number of instructions in the arena (including any that were unlinked
    /// by rewrites).
    pub fn inst_count(&self) -> usize {
        self.insts.len()
    }

    /// Accesses an instruction.
    ///
    /// # Panics
    ///
    /// Panics if `id` is invalid.
    pub fn inst(&self, id: InstId) -> &Inst {
        &self.insts[id.0 as usize]
    }

    /// Mutable instruction access.
    ///
    /// # Panics
    ///
    /// Panics if `id` is invalid.
    pub fn inst_mut(&mut self, id: InstId) -> &mut Inst {
        &mut self.insts[id.0 as usize]
    }

    /// Iterates over all instruction ids currently linked into blocks, in
    /// block order.
    pub fn linked_insts(&self) -> impl Iterator<Item = (BlockId, InstId)> + '_ {
        self.block_ids()
            .flat_map(move |b| self.block(b).insts.iter().map(move |&i| (b, i)))
    }

    /// Allocates an instruction in the arena *without* linking it into a
    /// block; returns its id. Used by the builder and the rewriter.
    pub fn alloc_inst(&mut self, inst: Inst) -> InstId {
        let id = InstId(self.insts.len() as u32);
        self.insts.push(inst);
        id
    }

    /// Allocates a fresh value defined by `inst` with type `ty`.
    pub fn alloc_value(&mut self, inst: InstId, ty: Type, name: Option<String>) -> ValueId {
        let id = ValueId(self.values.len() as u32);
        self.values.push(ValueDef {
            kind: ValueKind::Inst(inst),
            ty,
            name,
        });
        id
    }

    /// Accesses a value definition.
    ///
    /// # Panics
    ///
    /// Panics if `id` is invalid.
    pub fn value(&self, id: ValueId) -> &ValueDef {
        &self.values[id.0 as usize]
    }

    /// Number of virtual values.
    pub fn value_count(&self) -> usize {
        self.values.len()
    }

    /// Iterates over all value ids.
    pub fn value_ids(&self) -> impl Iterator<Item = ValueId> {
        (0..self.values.len() as u32).map(ValueId)
    }

    /// Finds the block and intra-block index of a linked instruction.
    ///
    /// Returns `None` if the instruction is not linked into any block.
    pub fn find_inst_pos(&self, id: InstId) -> Option<(BlockId, usize)> {
        for b in self.block_ids() {
            if let Some(idx) = self.block(b).insts.iter().position(|&i| i == id) {
                return Some((b, idx));
            }
        }
        None
    }

    /// Whether every block ends in a terminator and contains no interior
    /// terminators. (The full check lives in [`crate::verify`].)
    pub fn blocks_well_formed(&self) -> bool {
        self.block_ids().all(|b| {
            let insts = &self.block(b).insts;
            match insts.split_last() {
                None => false,
                Some((last, rest)) => {
                    self.inst(*last).op.is_terminator()
                        && rest.iter().all(|&i| !self.inst(i).op.is_terminator())
                }
            }
        })
    }

    /// All call instructions currently linked, as `(block, inst)` pairs.
    pub fn call_sites(&self) -> Vec<(BlockId, InstId)> {
        self.linked_insts()
            .filter(|&(_, i)| matches!(self.inst(i).op, Op::Call { .. }))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Operand;

    #[test]
    fn new_function_has_entry_and_args() {
        let f = Function::new("f", vec![Type::Ptr, Type::Int(8)], Type::Void);
        assert_eq!(f.name(), "f");
        assert_eq!(f.block_count(), 1);
        assert_eq!(f.value_count(), 2);
        assert_eq!(f.value(f.arg(0)).ty, Type::Ptr);
        assert_eq!(f.value(f.arg(1)).ty, Type::Int(8));
    }

    #[test]
    #[should_panic(expected = "argument index out of range")]
    fn arg_out_of_range_panics() {
        let f = Function::new("f", vec![], Type::Void);
        let _ = f.arg(0);
    }

    #[test]
    fn alloc_and_find() {
        let mut f = Function::new("f", vec![], Type::Void);
        let ret = f.alloc_inst(Inst {
            op: Op::Ret { value: None },
            loc: None,
            result: None,
        });
        let entry = f.entry();
        f.block_mut(entry).insts.push(ret);
        assert_eq!(f.find_inst_pos(ret), Some((entry, 0)));
        assert!(f.blocks_well_formed());
    }

    #[test]
    fn unterminated_block_is_ill_formed() {
        let mut f = Function::new("f", vec![], Type::Void);
        let fence = f.alloc_inst(Inst {
            op: Op::Print {
                value: Operand::Const(1),
            },
            loc: None,
            result: None,
        });
        let entry = f.entry();
        f.block_mut(entry).insts.push(fence);
        assert!(!f.blocks_well_formed());
    }
}
