//! `pmir` — a small typed intermediate representation for persistent-memory
//! programs.
//!
//! This crate plays the role LLVM IR plays in the original Hippocrates
//! artifact (ASPLOS '21): programs under test are lowered to `pmir`, executed
//! by the `pmvm` interpreter to produce pmemcheck-style traces, and then
//! *rewritten* by the Hippocrates repair engine, which inserts cache-line
//! flushes ([`Op::Flush`]) and memory fences ([`Op::Fence`]) and performs the
//! persistent-subprogram transformation (function duplication plus call-site
//! retargeting).
//!
//! The IR is deliberately C-shaped rather than fully SSA: named variables are
//! lowered to [`Op::Alloca`] slots (mirroring `clang -O0`, which is exactly
//! how the paper generates its traces — optimizations are disabled during
//! trace collection, see §5.1), while expression temporaries are block-local
//! virtual values. A dominance-based [verifier](verify) enforces that
//! discipline.
//!
//! # Example
//!
//! ```
//! use pmir::{Module, FunctionBuilder, Type, Operand, FlushKind, FenceKind};
//!
//! let mut m = Module::new();
//! let f = m.declare_function("store_and_persist", vec![Type::Ptr], Type::Void);
//! let mut b = FunctionBuilder::new(&mut m, f);
//! let entry = b.entry_block();
//! b.switch_to(entry);
//! let addr = b.arg(0);
//! b.store(Type::int(8), Operand::Value(addr), Operand::Const(42));
//! b.flush(FlushKind::Clwb, Operand::Value(addr));
//! b.fence(FenceKind::Sfence);
//! b.ret(None);
//! b.finish();
//! pmir::verify::verify_module(&m).unwrap();
//! assert_eq!(m.function(f).name(), "store_and_persist");
//! ```

pub mod builder;
pub mod cfg;
pub mod display;
pub mod function;
pub mod inst;
pub mod metrics;
pub mod module;
pub mod ops;
pub mod parse;
pub mod rewrite;
pub mod snapshot;
pub mod srcloc;
pub mod types;
pub mod verify;

pub use builder::FunctionBuilder;
pub use function::{Block, BlockId, Function, InstId, ValueDef, ValueId, ValueKind};
pub use inst::{Inst, Op, Operand};
pub use metrics::ModuleMetrics;
pub use module::{FuncId, Global, GlobalId, Module};
pub use ops::{AccessWidth, BinOp, CmpPred, FenceKind, FlushKind};
pub use snapshot::{ModuleDiff, ModulePatch, ModuleSnapshot, PatchError};
pub use srcloc::{FileId, SrcLoc};
pub use types::Type;
