//! A convenience builder for emitting function bodies.

use crate::function::{BlockId, InstId, ValueId};
use crate::inst::{Inst, Op, Operand};
use crate::module::{FuncId, GlobalId, Module};
use crate::ops::{BinOp, CmpPred, FenceKind, FlushKind};
use crate::srcloc::SrcLoc;
use crate::types::Type;

/// Emits instructions into one function of a [`Module`].
///
/// The builder keeps a *current block* and an optional *current source
/// location* that is attached to every emitted instruction until changed.
///
/// # Example
///
/// ```
/// use pmir::{Module, FunctionBuilder, Type, Operand};
///
/// let mut m = Module::new();
/// let f = m.declare_function("id", vec![Type::int(8)], Type::int(8));
/// let mut b = FunctionBuilder::new(&mut m, f);
/// let entry = b.entry_block();
/// b.switch_to(entry);
/// let x = b.arg(0);
/// b.ret(Some(Operand::Value(x)));
/// b.finish();
/// ```
pub struct FunctionBuilder<'m> {
    module: &'m mut Module,
    func: FuncId,
    cur_block: Option<BlockId>,
    cur_loc: Option<SrcLoc>,
}

impl<'m> FunctionBuilder<'m> {
    /// Starts building the body of `func`.
    pub fn new(module: &'m mut Module, func: FuncId) -> Self {
        FunctionBuilder {
            module,
            func,
            cur_block: None,
            cur_loc: None,
        }
    }

    /// The function being built.
    pub fn func_id(&self) -> FuncId {
        self.func
    }

    /// The module being built into.
    pub fn module(&mut self) -> &mut Module {
        self.module
    }

    /// The function's entry block.
    pub fn entry_block(&self) -> BlockId {
        self.module.function(self.func).entry()
    }

    /// Creates a new basic block.
    pub fn new_block(&mut self, name: &str) -> BlockId {
        self.module
            .function_mut(self.func)
            .add_block(Some(name.to_string()))
    }

    /// Makes `block` the insertion point.
    pub fn switch_to(&mut self, block: BlockId) {
        self.cur_block = Some(block);
    }

    /// The current insertion block, if one is selected.
    pub fn current_block(&self) -> Option<BlockId> {
        self.cur_block
    }

    /// Sets the source location attached to subsequently emitted
    /// instructions.
    pub fn set_loc(&mut self, loc: SrcLoc) {
        self.cur_loc = Some(loc);
    }

    /// Clears the current source location.
    pub fn clear_loc(&mut self) {
        self.cur_loc = None;
    }

    /// The [`ValueId`] of argument `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn arg(&self, n: usize) -> ValueId {
        self.module.function(self.func).arg(n)
    }

    /// Emits `op` into the current block; returns the instruction id and the
    /// result value if the op produces one.
    ///
    /// # Panics
    ///
    /// Panics if no block is selected or the current block is already
    /// terminated.
    pub fn emit(&mut self, op: Op) -> (InstId, Option<ValueId>) {
        let block = self.cur_block.expect("no insertion block selected");
        let ty = match &op {
            Op::Call { callee, .. } => {
                let rt = self.module.function(*callee).ret_type();
                (rt != Type::Void).then_some(rt)
            }
            other => other.result_type(),
        };
        let f = self.module.function_mut(self.func);
        if let Some(&last) = f.block(block).insts.last() {
            assert!(
                !f.inst(last).op.is_terminator(),
                "emitting into a terminated block"
            );
        }
        let id = f.alloc_inst(Inst {
            op,
            loc: self.cur_loc,
            result: None,
        });
        let result = ty.map(|ty| f.alloc_value(id, ty, None));
        f.inst_mut(id).result = result;
        f.block_mut(block).insts.push(id);
        (id, result)
    }

    fn emit_val(&mut self, op: Op) -> ValueId {
        self.emit(op).1.expect("operation produces no value")
    }

    /// Emits a binary operation.
    pub fn bin(&mut self, op: BinOp, a: impl Into<Operand>, b: impl Into<Operand>) -> ValueId {
        self.emit_val(Op::Bin {
            op,
            a: a.into(),
            b: b.into(),
        })
    }

    /// Emits a comparison.
    pub fn cmp(&mut self, pred: CmpPred, a: impl Into<Operand>, b: impl Into<Operand>) -> ValueId {
        self.emit_val(Op::Cmp {
            pred,
            a: a.into(),
            b: b.into(),
        })
    }

    /// Emits a stack allocation of `size` bytes.
    pub fn alloca(&mut self, size: u64) -> ValueId {
        self.emit_val(Op::Alloca { size })
    }

    /// Emits a volatile-heap allocation.
    pub fn heap_alloc(&mut self, size: impl Into<Operand>) -> ValueId {
        self.emit_val(Op::HeapAlloc { size: size.into() })
    }

    /// Emits a heap free.
    pub fn heap_free(&mut self, ptr: impl Into<Operand>) {
        self.emit(Op::HeapFree { ptr: ptr.into() });
    }

    /// Emits a persistent-memory pool mapping.
    pub fn pmem_map(&mut self, size: impl Into<Operand>, pool_hint: u64) -> ValueId {
        self.emit_val(Op::PmemMap {
            size: size.into(),
            pool_hint,
        })
    }

    /// Emits pointer arithmetic `base + offset`.
    pub fn gep(&mut self, base: impl Into<Operand>, offset: impl Into<Operand>) -> ValueId {
        self.emit_val(Op::Gep {
            base: base.into(),
            offset: offset.into(),
        })
    }

    /// Emits a typed load.
    pub fn load(&mut self, ty: Type, addr: impl Into<Operand>) -> ValueId {
        self.emit_val(Op::Load {
            ty,
            addr: addr.into(),
        })
    }

    /// Emits a typed store; returns the instruction id (used by tests that
    /// need to point Hippocrates at a specific store).
    pub fn store(
        &mut self,
        ty: Type,
        addr: impl Into<Operand>,
        value: impl Into<Operand>,
    ) -> InstId {
        self.emit(Op::Store {
            ty,
            addr: addr.into(),
            value: value.into(),
        })
        .0
    }

    /// Emits a memcpy.
    pub fn memcpy(
        &mut self,
        dst: impl Into<Operand>,
        src: impl Into<Operand>,
        len: impl Into<Operand>,
    ) -> InstId {
        self.emit(Op::Memcpy {
            dst: dst.into(),
            src: src.into(),
            len: len.into(),
        })
        .0
    }

    /// Emits a memset.
    pub fn memset(
        &mut self,
        dst: impl Into<Operand>,
        val: impl Into<Operand>,
        len: impl Into<Operand>,
    ) -> InstId {
        self.emit(Op::Memset {
            dst: dst.into(),
            val: val.into(),
            len: len.into(),
        })
        .0
    }

    /// Emits a cache-line flush.
    pub fn flush(&mut self, kind: FlushKind, addr: impl Into<Operand>) -> InstId {
        self.emit(Op::Flush {
            kind,
            addr: addr.into(),
        })
        .0
    }

    /// Emits a memory fence.
    pub fn fence(&mut self, kind: FenceKind) -> InstId {
        self.emit(Op::Fence { kind }).0
    }

    /// Emits a direct call; returns the result value for non-void callees.
    pub fn call(&mut self, callee: FuncId, args: Vec<Operand>) -> Option<ValueId> {
        self.emit(Op::Call { callee, args }).1
    }

    /// Emits a call by function name.
    ///
    /// # Panics
    ///
    /// Panics if the function is not declared.
    pub fn call_named(&mut self, name: &str, args: Vec<Operand>) -> Option<ValueId> {
        let callee = self
            .module
            .function_by_name(name)
            .unwrap_or_else(|| panic!("call to undeclared function: {name}"));
        self.call(callee, args)
    }

    /// Emits the address of a global.
    pub fn global_addr(&mut self, global: GlobalId) -> ValueId {
        self.emit_val(Op::GlobalAddr { global })
    }

    /// Emits a `print`.
    pub fn print(&mut self, value: impl Into<Operand>) {
        self.emit(Op::Print {
            value: value.into(),
        });
    }

    /// Emits a crash-point marker.
    pub fn crash_point(&mut self) -> InstId {
        self.emit(Op::CrashPoint).0
    }

    /// Emits a return and deselects the block.
    pub fn ret(&mut self, value: Option<Operand>) {
        self.emit(Op::Ret { value });
        self.cur_block = None;
    }

    /// Emits an unconditional branch and deselects the block.
    pub fn br(&mut self, target: BlockId) {
        self.emit(Op::Br { target });
        self.cur_block = None;
    }

    /// Emits a conditional branch and deselects the block.
    pub fn cond_br(&mut self, cond: impl Into<Operand>, then_bb: BlockId, else_bb: BlockId) {
        self.emit(Op::CondBr {
            cond: cond.into(),
            then_bb,
            else_bb,
        });
        self.cur_block = None;
    }

    /// Emits an abort and deselects the block.
    pub fn abort(&mut self, code: i64) {
        self.emit(Op::Abort { code });
        self.cur_block = None;
    }

    /// Finishes the function.
    ///
    /// # Panics
    ///
    /// Panics if any block lacks a terminator — an unterminated body is
    /// always a front-end bug.
    pub fn finish(self) {
        let f = self.module.function(self.func);
        assert!(
            f.blocks_well_formed(),
            "function `{}` has an unterminated or malformed block",
            f.name()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_loop() {
        // while (i < 10) i++;
        let mut m = Module::new();
        let f = m.declare_function("count", vec![], Type::int(8));
        let mut b = FunctionBuilder::new(&mut m, f);
        let entry = b.entry_block();
        let header = b.new_block("header");
        let body = b.new_block("body");
        let exit = b.new_block("exit");

        b.switch_to(entry);
        let slot = b.alloca(8);
        b.store(Type::int(8), slot, 0i64);
        b.br(header);

        b.switch_to(header);
        let i = b.load(Type::int(8), slot);
        let c = b.cmp(CmpPred::SLt, i, 10i64);
        b.cond_br(c, body, exit);

        b.switch_to(body);
        let i2 = b.load(Type::int(8), slot);
        let i3 = b.bin(BinOp::Add, i2, 1i64);
        b.store(Type::int(8), slot, i3);
        b.br(header);

        b.switch_to(exit);
        let fin = b.load(Type::int(8), slot);
        b.ret(Some(Operand::Value(fin)));
        b.finish();

        assert_eq!(m.function(f).block_count(), 4);
        assert!(m.function(f).blocks_well_formed());
    }

    #[test]
    #[should_panic(expected = "terminated block")]
    fn emitting_after_terminator_panics() {
        let mut m = Module::new();
        let f = m.declare_function("f", vec![], Type::Void);
        let mut b = FunctionBuilder::new(&mut m, f);
        let entry = b.entry_block();
        b.switch_to(entry);
        b.emit(Op::Ret { value: None });
        b.emit(Op::Fence {
            kind: FenceKind::Sfence,
        });
    }

    #[test]
    #[should_panic(expected = "unterminated")]
    fn finish_checks_termination() {
        let mut m = Module::new();
        let f = m.declare_function("f", vec![], Type::Void);
        let b = FunctionBuilder::new(&mut m, f);
        b.finish();
    }

    #[test]
    fn call_result_types() {
        let mut m = Module::new();
        let callee = m.declare_function("g", vec![], Type::int(8));
        {
            let mut b = FunctionBuilder::new(&mut m, callee);
            let e = b.entry_block();
            b.switch_to(e);
            b.ret(Some(Operand::Const(7)));
            b.finish();
        }
        let f = m.declare_function("f", vec![], Type::Void);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.entry_block();
        b.switch_to(e);
        let r = b.call_named("g", vec![]);
        assert!(r.is_some());
        b.ret(None);
        b.finish();
    }
}
