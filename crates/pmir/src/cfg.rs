//! Control-flow-graph utilities: predecessors, reverse postorder, and
//! dominators (used by the [verifier](crate::verify)).

use crate::function::{BlockId, Function};
use std::collections::HashMap;

/// Predecessor/successor maps for a function's CFG.
#[derive(Debug, Clone)]
pub struct Cfg {
    preds: HashMap<BlockId, Vec<BlockId>>,
    succs: HashMap<BlockId, Vec<BlockId>>,
    rpo: Vec<BlockId>,
}

impl Cfg {
    /// Builds the CFG of `f`. Unreachable blocks do not appear in the
    /// reverse postorder but still have (empty) predecessor entries.
    pub fn of(f: &Function) -> Self {
        let mut preds: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
        let mut succs: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
        for b in f.block_ids() {
            preds.entry(b).or_default();
            let s: Vec<BlockId> = f
                .block(b)
                .insts
                .last()
                .map(|&i| f.inst(i).op.successors())
                .unwrap_or_default();
            for &t in &s {
                preds.entry(t).or_default().push(b);
            }
            succs.insert(b, s);
        }
        let rpo = reverse_postorder(f.entry(), &succs);
        Cfg { preds, succs, rpo }
    }

    /// Predecessors of `b`.
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        self.preds.get(&b).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Successors of `b`.
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        self.succs.get(&b).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Blocks reachable from entry, in reverse postorder.
    pub fn reverse_postorder(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Whether `b` is reachable from the entry block.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo.contains(&b)
    }
}

fn reverse_postorder(entry: BlockId, succs: &HashMap<BlockId, Vec<BlockId>>) -> Vec<BlockId> {
    let mut visited = std::collections::HashSet::new();
    let mut post = Vec::new();
    // Iterative DFS with an explicit stack of (block, next-successor-index).
    let mut stack = vec![(entry, 0usize)];
    visited.insert(entry);
    while let Some(&mut (b, ref mut idx)) = stack.last_mut() {
        let ss = succs.get(&b).map(Vec::as_slice).unwrap_or(&[]);
        if *idx < ss.len() {
            let next = ss[*idx];
            *idx += 1;
            if visited.insert(next) {
                stack.push((next, 0));
            }
        } else {
            post.push(b);
            stack.pop();
        }
    }
    post.reverse();
    post
}

/// Immediate-dominator tree computed with the Cooper–Harvey–Kennedy
/// iterative algorithm.
#[derive(Debug, Clone)]
pub struct Dominators {
    idom: HashMap<BlockId, BlockId>,
    rpo_index: HashMap<BlockId, usize>,
}

impl Dominators {
    /// Computes dominators over `cfg`, rooted at `entry`.
    pub fn compute(cfg: &Cfg, entry: BlockId) -> Self {
        let rpo = cfg.reverse_postorder();
        let rpo_index: HashMap<BlockId, usize> =
            rpo.iter().enumerate().map(|(i, &b)| (b, i)).collect();
        let mut idom: HashMap<BlockId, BlockId> = HashMap::new();
        idom.insert(entry, entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in cfg.preds(b) {
                    if !idom.contains_key(&p) {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_index, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom.get(&b) != Some(&ni) {
                        idom.insert(b, ni);
                        changed = true;
                    }
                }
            }
        }
        Dominators { idom, rpo_index }
    }

    /// The immediate dominator of `b` (`entry` for the entry block itself);
    /// `None` for unreachable blocks.
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom.get(&b).copied()
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if !self.idom.contains_key(&b) || !self.idom.contains_key(&a) {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            let next = self.idom[&cur];
            if next == cur {
                return false;
            }
            cur = next;
        }
    }

    /// Position of `b` in reverse postorder, if reachable.
    pub fn rpo_index(&self, b: BlockId) -> Option<usize> {
        self.rpo_index.get(&b).copied()
    }
}

fn intersect(
    idom: &HashMap<BlockId, BlockId>,
    rpo_index: &HashMap<BlockId, usize>,
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_index[&a] > rpo_index[&b] {
            a = idom[&a];
        }
        while rpo_index[&b] > rpo_index[&a] {
            b = idom[&b];
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::Operand;
    use crate::module::Module;
    use crate::ops::CmpPred;
    use crate::types::Type;

    /// Builds a diamond: entry -> (a | b) -> join -> ret.
    fn diamond() -> (Module, crate::module::FuncId, [BlockId; 4]) {
        let mut m = Module::new();
        let f = m.declare_function("d", vec![Type::int(8)], Type::Void);
        let mut bld = FunctionBuilder::new(&mut m, f);
        let entry = bld.entry_block();
        let a = bld.new_block("a");
        let b = bld.new_block("b");
        let join = bld.new_block("join");
        bld.switch_to(entry);
        let x = bld.arg(0);
        let c = bld.cmp(CmpPred::SGt, x, 0i64);
        bld.cond_br(c, a, b);
        bld.switch_to(a);
        bld.br(join);
        bld.switch_to(b);
        bld.br(join);
        bld.switch_to(join);
        bld.ret(None);
        bld.finish();
        (m, f, [entry, a, b, join])
    }

    #[test]
    fn diamond_cfg() {
        let (m, f, [entry, a, b, join]) = diamond();
        let cfg = Cfg::of(m.function(f));
        assert_eq!(cfg.succs(entry), &[a, b]);
        assert_eq!(cfg.preds(join).len(), 2);
        assert_eq!(cfg.reverse_postorder()[0], entry);
        assert!(cfg.is_reachable(join));
    }

    #[test]
    fn diamond_dominators() {
        let (m, f, [entry, a, b, join]) = diamond();
        let cfg = Cfg::of(m.function(f));
        let dom = Dominators::compute(&cfg, entry);
        assert_eq!(dom.idom(join), Some(entry));
        assert_eq!(dom.idom(a), Some(entry));
        assert!(dom.dominates(entry, join));
        assert!(!dom.dominates(a, join));
        assert!(dom.dominates(join, join));
        assert!(!dom.dominates(a, b));
    }

    #[test]
    fn unreachable_block_not_in_rpo() {
        let mut m = Module::new();
        let f = m.declare_function("u", vec![], Type::Void);
        let mut bld = FunctionBuilder::new(&mut m, f);
        let entry = bld.entry_block();
        let dead = bld.new_block("dead");
        bld.switch_to(entry);
        bld.ret(None);
        bld.switch_to(dead);
        bld.ret(None);
        bld.finish();
        let cfg = Cfg::of(m.function(f));
        assert!(!cfg.is_reachable(dead));
        let dom = Dominators::compute(&cfg, entry);
        assert_eq!(dom.idom(dead), None);
        assert!(!dom.dominates(entry, dead));
    }

    #[test]
    fn loop_dominators() {
        // entry -> header <-> body, header -> exit
        let mut m = Module::new();
        let f = m.declare_function("l", vec![Type::int(8)], Type::Void);
        let mut bld = FunctionBuilder::new(&mut m, f);
        let entry = bld.entry_block();
        let header = bld.new_block("header");
        let body = bld.new_block("body");
        let exit = bld.new_block("exit");
        bld.switch_to(entry);
        bld.br(header);
        bld.switch_to(header);
        let x = bld.arg(0);
        bld.cond_br(Operand::Value(x), body, exit);
        bld.switch_to(body);
        bld.br(header);
        bld.switch_to(exit);
        bld.ret(None);
        bld.finish();
        let cfg = Cfg::of(m.function(f));
        let dom = Dominators::compute(&cfg, entry);
        assert_eq!(dom.idom(body), Some(header));
        assert_eq!(dom.idom(exit), Some(header));
        assert!(dom.dominates(header, body));
        assert!(!dom.dominates(body, exit));
    }
}
