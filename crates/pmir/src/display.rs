//! Textual printing of modules. The format round-trips through
//! [`crate::parse`].

use crate::function::{BlockId, Function, ValueId};
use crate::inst::{Op, Operand};
use crate::module::Module;
use std::fmt::Write as _;

/// Prints a whole module in the textual IR format.
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    for (i, file) in m.files().iter().enumerate() {
        let _ = writeln!(out, "file {i} {file:?}");
    }
    for (_, g) in m.globals() {
        let _ = writeln!(out, "global @{} size {} init {:?}", g.name, g.size, g.init);
    }
    for (_, f) in m.functions() {
        out.push('\n');
        out.push_str(&print_function(m, f));
    }
    out
}

/// Prints one function.
pub fn print_function(m: &Module, f: &Function) -> String {
    let mut out = String::new();
    let params: Vec<String> = f
        .params()
        .iter()
        .enumerate()
        .map(|(i, t)| format!("%v{i}: {t}"))
        .collect();
    let _ = write!(out, "func @{}({})", f.name(), params.join(", "));
    let _ = writeln!(out, " -> {} {{", f.ret_type());
    for b in f.block_ids() {
        // Block names are builder conveniences and intentionally do not
        // survive printing; labels are canonical so print→parse→print is a
        // fixed point.
        let _ = writeln!(out, "{}:", block_label(b));
        for &i in &f.block(b).insts {
            let inst = f.inst(i);
            let mut line = String::from("  ");
            if let Some(r) = inst.result {
                let _ = write!(line, "{} = ", val(r));
            }
            line.push_str(&op_text(m, &inst.op));
            if let Some(loc) = inst.loc {
                let _ = write!(line, " !loc {}:{}:{}", loc.file.0, loc.line, loc.col);
            }
            let _ = writeln!(out, "{line}");
        }
    }
    out.push_str("}\n");
    out
}

fn block_label(b: BlockId) -> String {
    format!("bb{}", b.0)
}

fn val(v: ValueId) -> String {
    format!("%v{}", v.0)
}

fn opnd(o: Operand) -> String {
    match o {
        Operand::Value(v) => val(v),
        Operand::Const(c) => c.to_string(),
        Operand::Null => "null".to_string(),
    }
}

fn op_text(m: &Module, op: &Op) -> String {
    match op {
        Op::Bin { op, a, b } => format!("{} {}, {}", op.mnemonic(), opnd(*a), opnd(*b)),
        Op::Cmp { pred, a, b } => format!("cmp {} {}, {}", pred.mnemonic(), opnd(*a), opnd(*b)),
        Op::Alloca { size } => format!("alloca {size}"),
        Op::HeapAlloc { size } => format!("heapalloc {}", opnd(*size)),
        Op::HeapFree { ptr } => format!("heapfree {}", opnd(*ptr)),
        Op::PmemMap { size, pool_hint } => {
            format!("pmemmap {}, pool {}", opnd(*size), pool_hint)
        }
        Op::Gep { base, offset } => format!("gep {}, {}", opnd(*base), opnd(*offset)),
        Op::Load { ty, addr } => format!("load.{ty} {}", opnd(*addr)),
        Op::Store { ty, addr, value } => {
            format!("store.{ty} {}, {}", opnd(*addr), opnd(*value))
        }
        Op::Memcpy { dst, src, len } => {
            format!("memcpy {}, {}, {}", opnd(*dst), opnd(*src), opnd(*len))
        }
        Op::Memset { dst, val: v, len } => {
            format!("memset {}, {}, {}", opnd(*dst), opnd(*v), opnd(*len))
        }
        Op::Flush { kind, addr } => format!("{} {}", kind.mnemonic(), opnd(*addr)),
        Op::Fence { kind } => kind.mnemonic().to_string(),
        Op::Call { callee, args } => {
            let name = m.function(*callee).name();
            let args: Vec<String> = args.iter().map(|&a| opnd(a)).collect();
            format!("call @{name}({})", args.join(", "))
        }
        Op::Ret { value } => match value {
            Some(v) => format!("ret {}", opnd(*v)),
            None => "ret".to_string(),
        },
        Op::Br { target } => format!("br {}", block_label(*target)),
        Op::CondBr {
            cond,
            then_bb,
            else_bb,
        } => format!(
            "condbr {}, {}, {}",
            opnd(*cond),
            block_label(*then_bb),
            block_label(*else_bb)
        ),
        Op::GlobalAddr { global } => format!("globaladdr @{}", m.global(*global).name),
        Op::Print { value } => format!("print {}", opnd(*value)),
        Op::CrashPoint => "crashpoint".to_string(),
        Op::Abort { code } => format!("abort {code}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::ops::{BinOp, CmpPred, FenceKind, FlushKind};
    use crate::srcloc::SrcLoc;
    use crate::types::Type;

    #[test]
    fn prints_all_constructs() {
        let mut m = Module::new();
        let file = m.intern_file("x.pmc");
        let g = m.add_global("tbl", 16, vec![0xff]);
        let callee = m.declare_function("callee", vec![Type::Ptr], Type::Void);
        {
            let mut b = FunctionBuilder::new(&mut m, callee);
            let e = b.entry_block();
            b.switch_to(e);
            b.ret(None);
            b.finish();
        }
        let f = m.declare_function("main", vec![], Type::int(8));
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.entry_block();
        let exit = b.new_block("exit");
        b.switch_to(e);
        b.set_loc(SrcLoc::line(file, 3));
        let pm = b.pmem_map(4096i64, 1);
        let heap = b.heap_alloc(64i64);
        let stack = b.alloca(8);
        let sum = b.bin(BinOp::Add, 1i64, 2i64);
        b.store(Type::int(8), stack, sum);
        let ld = b.load(Type::int(8), stack);
        let gp = b.gep(pm, 8i64);
        b.store(Type::Ptr, gp, heap);
        b.memcpy(pm, heap, 16i64);
        b.memset(heap, 0i64, 16i64);
        b.flush(FlushKind::Clwb, pm);
        b.fence(FenceKind::Sfence);
        b.call(callee, vec![Operand::Value(pm)]);
        let ga = b.global_addr(g);
        b.print(ld);
        b.crash_point();
        b.heap_free(heap);
        let c = b.cmp(CmpPred::Eq, ld, 3i64);
        let _ = ga;
        b.cond_br(c, exit, exit);
        b.switch_to(exit);
        b.ret(Some(Operand::Const(0)));
        b.finish();

        let text = print_module(&m);
        for needle in [
            "file 0 \"x.pmc\"",
            "global @tbl size 16",
            "func @main() -> i64 {",
            "pmemmap 4096, pool 1",
            "heapalloc 64",
            "alloca 8",
            "add 1, 2",
            "store.i64",
            "load.i64",
            "gep %v",
            "store.ptr",
            "memcpy",
            "memset",
            "clwb",
            "sfence",
            "call @callee(",
            "globaladdr @tbl",
            "print",
            "crashpoint",
            "heapfree",
            "cmp eq",
            "condbr",
            "!loc 0:3:0",
            "ret 0",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }
}
