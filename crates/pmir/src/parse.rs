//! Parser for the textual IR format produced by [`crate::display`].
//!
//! The parser accepts exactly the printer's output (plus arbitrary blank
//! lines and `;` comments), which is enough for IR-level tests, golden files,
//! and hand-written fixtures.

use crate::function::{Block, InstId, ValueDef, ValueId, ValueKind};
use crate::inst::{Inst, Op, Operand};
use crate::module::Module;
use crate::ops::{BinOp, CmpPred, FenceKind, FlushKind};
use crate::srcloc::{FileId, SrcLoc};
use crate::types::Type;
use std::fmt;

/// A parse failure with a 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending input.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

type PResult<T> = Result<T, ParseError>;

fn perr<T>(line: usize, msg: impl Into<String>) -> PResult<T> {
    Err(ParseError {
        line,
        message: msg.into(),
    })
}

/// Parses a module from the textual format.
///
/// # Errors
///
/// Returns a [`ParseError`] naming the offending line.
pub fn parse_module(text: &str) -> PResult<Module> {
    let mut m = Module::new();
    let lines: Vec<(usize, &str)> = text
        .lines()
        .enumerate()
        .map(|(i, l)| {
            let l = match l.find(';') {
                Some(p) => &l[..p],
                None => l,
            };
            (i + 1, l.trim())
        })
        .filter(|(_, l)| !l.is_empty())
        .collect();

    // Pass 1: declare all functions so calls can resolve.
    for &(ln, l) in &lines {
        if let Some(rest) = l.strip_prefix("func @") {
            let (name, params, ret) = parse_signature(ln, rest)?;
            m.declare_function(name, params, ret);
        }
    }

    // Pass 2: files, globals, bodies.
    let mut i = 0;
    while i < lines.len() {
        let (ln, l) = lines[i];
        if let Some(rest) = l.strip_prefix("file ") {
            let mut c = Cursor::new(ln, rest);
            let _idx = c.number()?;
            let name = c.quoted_string()?;
            m.intern_file(name);
            i += 1;
        } else if let Some(rest) = l.strip_prefix("global @") {
            parse_global(&mut m, ln, rest)?;
            i += 1;
        } else if let Some(rest) = l.strip_prefix("func @") {
            let (name, _, _) = parse_signature(ln, rest)?;
            let end = parse_body(&mut m, &name, &lines, i + 1)?;
            i = end;
        } else {
            return perr(ln, format!("unexpected top-level line: {l}"));
        }
    }
    Ok(m)
}

fn parse_global(m: &mut Module, ln: usize, rest: &str) -> PResult<()> {
    // `<name> size <n> init [a, b, c]`
    let Some((name, tail)) = rest.split_once(" size ") else {
        return perr(ln, "malformed global");
    };
    let Some((size, init)) = tail.split_once(" init ") else {
        return perr(ln, "malformed global");
    };
    let size: u64 = size.trim().parse().map_err(|_| ParseError {
        line: ln,
        message: "bad global size".into(),
    })?;
    let init = init.trim();
    let inner = init
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| ParseError {
            line: ln,
            message: "bad global init".into(),
        })?;
    let bytes: Vec<u8> = if inner.trim().is_empty() {
        vec![]
    } else {
        inner
            .split(',')
            .map(|b| b.trim().parse::<u8>())
            .collect::<Result<_, _>>()
            .map_err(|_| ParseError {
                line: ln,
                message: "bad global init byte".into(),
            })?
    };
    m.add_global(name.trim(), size, bytes);
    Ok(())
}

fn parse_signature(ln: usize, rest: &str) -> PResult<(String, Vec<Type>, Type)> {
    // `<name>(<params>) -> <ty> {`
    let Some(open) = rest.find('(') else {
        return perr(ln, "missing ( in signature");
    };
    let name = rest[..open].to_string();
    let Some(close) = rest.find(')') else {
        return perr(ln, "missing ) in signature");
    };
    let params_text = &rest[open + 1..close];
    let mut params = vec![];
    if !params_text.trim().is_empty() {
        for p in params_text.split(',') {
            let Some((_, ty)) = p.split_once(':') else {
                return perr(ln, "malformed parameter");
            };
            params.push(parse_type(ln, ty.trim())?);
        }
    }
    let tail = rest[close + 1..].trim();
    let Some(ret) = tail.strip_prefix("->") else {
        return perr(ln, "missing -> in signature");
    };
    let ret = ret.trim().trim_end_matches('{').trim();
    Ok((name, params, parse_type(ln, ret)?))
}

fn parse_type(ln: usize, s: &str) -> PResult<Type> {
    match s {
        "void" => Ok(Type::Void),
        "ptr" => Ok(Type::Ptr),
        "i8" => Ok(Type::Int(1)),
        "i16" => Ok(Type::Int(2)),
        "i32" => Ok(Type::Int(4)),
        "i64" => Ok(Type::Int(8)),
        _ => perr(ln, format!("unknown type: {s}")),
    }
}

/// A parsed instruction before value/type resolution.
struct RawInst {
    line: usize,
    result: Option<u32>,
    op: Op,
    loc: Option<SrcLoc>,
}

fn parse_body(m: &mut Module, name: &str, lines: &[(usize, &str)], mut i: usize) -> PResult<usize> {
    let fid = m.function_by_name(name).expect("declared in pass 1");
    let mut blocks: Vec<Vec<RawInst>> = vec![];
    loop {
        if i >= lines.len() {
            return perr(
                lines.last().map(|l| l.0).unwrap_or(0),
                "unterminated function body",
            );
        }
        let (ln, l) = lines[i];
        if l == "}" {
            i += 1;
            break;
        }
        if let Some(label) = l.strip_suffix(':') {
            let Some(n) = label.strip_prefix("bb") else {
                return perr(ln, format!("bad block label: {label}"));
            };
            let n: usize = n.parse().map_err(|_| ParseError {
                line: ln,
                message: "bad block number".into(),
            })?;
            if n != blocks.len() {
                return perr(ln, "block labels must be dense and in order");
            }
            blocks.push(vec![]);
            i += 1;
            continue;
        }
        if blocks.is_empty() {
            return perr(ln, "instruction before first block label");
        }
        let raw = parse_inst(m, ln, l)?;
        blocks.last_mut().unwrap().push(raw);
        i += 1;
    }

    // Materialize the function body.
    let nparams = m.function(fid).params().len();
    let mut max_val = nparams as i64 - 1;
    for b in &blocks {
        for r in b {
            if let Some(v) = r.result {
                max_val = max_val.max(i64::from(v));
            }
        }
    }
    // Compute result types (calls need module access).
    let mut defs: Vec<Option<(InstId, Type)>> = vec![None; (max_val + 1).max(0) as usize];
    let f = m.function(fid);
    let param_tys: Vec<Type> = f.params().to_vec();
    let _ = f;

    let mut insts: Vec<Inst> = vec![];
    let mut block_lists: Vec<Block> = vec![];
    for b in &blocks {
        let mut list = vec![];
        for r in b {
            let id = InstId(insts.len() as u32);
            let ty = match &r.op {
                Op::Call { callee, .. } => {
                    let rt = m.function(*callee).ret_type();
                    (rt != Type::Void).then_some(rt)
                }
                other => other.result_type(),
            };
            match (r.result, ty) {
                (Some(v), Some(t)) => {
                    let slot = v as usize;
                    if slot < param_tys.len() {
                        return perr(r.line, "instruction result clashes with a parameter value");
                    }
                    if defs[slot].is_some() {
                        return perr(r.line, format!("value %v{v} defined twice"));
                    }
                    defs[slot] = Some((id, t));
                }
                (Some(_), None) => return perr(r.line, "operation produces no result"),
                (None, Some(_)) if matches!(r.op, Op::Call { .. }) => {
                    // Void-context call to a non-void function: tolerated by
                    // allocating an unnamed result so types stay consistent.
                }
                (None, Some(_)) => return perr(r.line, "missing result binding"),
                (None, None) => {}
            }
            insts.push(Inst {
                op: r.op.clone(),
                loc: r.loc,
                result: None,
            });
            list.push(id);
        }
        block_lists.push(Block {
            name: None,
            insts: list,
        });
    }

    // Build the value table: params then instruction results in id order.
    let mut values: Vec<ValueDef> = param_tys
        .iter()
        .enumerate()
        .map(|(i, &ty)| ValueDef {
            kind: ValueKind::Arg(i as u32),
            ty,
            name: None,
        })
        .collect();
    for (slot, d) in defs.iter().enumerate().skip(param_tys.len()) {
        match d {
            Some((inst, ty)) => {
                values.push(ValueDef {
                    kind: ValueKind::Inst(*inst),
                    ty: *ty,
                    name: None,
                });
                insts[inst.0 as usize].result = Some(ValueId(slot as u32));
            }
            None => {
                return perr(
                    0,
                    format!("value %v{slot} used or numbered but never defined"),
                )
            }
        }
    }

    let f = m.function_mut(fid);
    f.insts = insts;
    f.values = values;
    f.blocks = if block_lists.is_empty() {
        vec![Block::default()]
    } else {
        block_lists
    };
    Ok(i)
}

fn parse_inst(m: &Module, ln: usize, l: &str) -> PResult<RawInst> {
    // Split off the `!loc f:l:c` suffix.
    let (body, loc) = match l.rfind("!loc ") {
        Some(p) => {
            let loc_text = l[p + 5..].trim();
            let parts: Vec<&str> = loc_text.split(':').collect();
            if parts.len() != 3 {
                return perr(ln, "malformed !loc");
            }
            let parse = |s: &str| -> PResult<u32> {
                s.parse().map_err(|_| ParseError {
                    line: ln,
                    message: "bad !loc number".into(),
                })
            };
            (
                l[..p].trim(),
                Some(SrcLoc {
                    file: FileId(parse(parts[0])?),
                    line: parse(parts[1])?,
                    col: parse(parts[2])?,
                }),
            )
        }
        None => (l, None),
    };

    // Split off `%vN = `.
    let (result, rest) = match body.split_once('=') {
        Some((lhs, rhs)) if lhs.trim_start().starts_with("%v") => {
            let v: u32 = lhs
                .trim()
                .trim_start_matches("%v")
                .parse()
                .map_err(|_| ParseError {
                    line: ln,
                    message: "bad result value".into(),
                })?;
            (Some(v), rhs.trim())
        }
        _ => (None, body),
    };

    let mut c = Cursor::new(ln, rest);
    let mnemonic = c.word()?;
    let op = parse_op(m, &mut c, &mnemonic)?;
    c.expect_end()?;
    Ok(RawInst {
        line: ln,
        result,
        op,
        loc,
    })
}

fn parse_op(m: &Module, c: &mut Cursor, mnemonic: &str) -> PResult<Op> {
    if let Some(op) = BinOp::from_mnemonic(mnemonic) {
        let a = c.operand()?;
        c.comma()?;
        let b = c.operand()?;
        return Ok(Op::Bin { op, a, b });
    }
    if let Some(kind) = FlushKind::from_mnemonic(mnemonic) {
        let addr = c.operand()?;
        return Ok(Op::Flush { kind, addr });
    }
    if let Some(kind) = FenceKind::from_mnemonic(mnemonic) {
        return Ok(Op::Fence { kind });
    }
    match mnemonic {
        "cmp" => {
            let pred_w = c.word()?;
            let pred = CmpPred::from_mnemonic(&pred_w)
                .ok_or_else(|| c.err(format!("unknown predicate {pred_w}")))?;
            let a = c.operand()?;
            c.comma()?;
            let b = c.operand()?;
            Ok(Op::Cmp { pred, a, b })
        }
        "alloca" => Ok(Op::Alloca {
            size: c.number()? as u64,
        }),
        "heapalloc" => Ok(Op::HeapAlloc { size: c.operand()? }),
        "heapfree" => Ok(Op::HeapFree { ptr: c.operand()? }),
        "pmemmap" => {
            let size = c.operand()?;
            c.comma()?;
            let kw = c.word()?;
            if kw != "pool" {
                return Err(c.err("expected `pool`"));
            }
            let pool_hint = c.number()? as u64;
            Ok(Op::PmemMap { size, pool_hint })
        }
        "gep" => {
            let base = c.operand()?;
            c.comma()?;
            let offset = c.operand()?;
            Ok(Op::Gep { base, offset })
        }
        m2 if m2.starts_with("load.") => {
            let ty = parse_type(c.line, &m2[5..])?;
            Ok(Op::Load {
                ty,
                addr: c.operand()?,
            })
        }
        m2 if m2.starts_with("store.") => {
            let ty = parse_type(c.line, &m2[6..])?;
            let addr = c.operand()?;
            c.comma()?;
            let value = c.operand()?;
            Ok(Op::Store { ty, addr, value })
        }
        "memcpy" => {
            let dst = c.operand()?;
            c.comma()?;
            let src = c.operand()?;
            c.comma()?;
            let len = c.operand()?;
            Ok(Op::Memcpy { dst, src, len })
        }
        "memset" => {
            let dst = c.operand()?;
            c.comma()?;
            let val = c.operand()?;
            c.comma()?;
            let len = c.operand()?;
            Ok(Op::Memset { dst, val, len })
        }
        "call" => {
            let name = c.func_name()?;
            let callee = m
                .function_by_name(&name)
                .ok_or_else(|| c.err(format!("call to unknown function @{name}")))?;
            let args = c.call_args()?;
            Ok(Op::Call { callee, args })
        }
        "ret" => {
            if c.at_end() {
                Ok(Op::Ret { value: None })
            } else {
                Ok(Op::Ret {
                    value: Some(c.operand()?),
                })
            }
        }
        "br" => Ok(Op::Br {
            target: c.block_label()?,
        }),
        "condbr" => {
            let cond = c.operand()?;
            c.comma()?;
            let then_bb = c.block_label()?;
            c.comma()?;
            let else_bb = c.block_label()?;
            Ok(Op::CondBr {
                cond,
                then_bb,
                else_bb,
            })
        }
        "globaladdr" => {
            let name = c.func_name()?; // same `@name` syntax
            let id = m
                .globals()
                .find(|(_, g)| g.name == name)
                .map(|(id, _)| id)
                .ok_or_else(|| c.err(format!("unknown global @{name}")))?;
            Ok(Op::GlobalAddr { global: id })
        }
        "print" => Ok(Op::Print {
            value: c.operand()?,
        }),
        "crashpoint" => Ok(Op::CrashPoint),
        "abort" => Ok(Op::Abort { code: c.number()? }),
        other => Err(c.err(format!("unknown mnemonic: {other}"))),
    }
}

/// A tiny within-line token cursor.
struct Cursor<'a> {
    line: usize,
    rest: &'a str,
}

impl<'a> Cursor<'a> {
    fn new(line: usize, text: &'a str) -> Self {
        Cursor {
            line,
            rest: text.trim(),
        }
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            message: msg.into(),
        }
    }

    fn skip_ws(&mut self) {
        self.rest = self.rest.trim_start();
    }

    fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.rest.is_empty()
    }

    fn expect_end(&mut self) -> PResult<()> {
        if self.at_end() {
            Ok(())
        } else {
            Err(self.err(format!("trailing tokens: {}", self.rest)))
        }
    }

    fn word(&mut self) -> PResult<String> {
        self.skip_ws();
        let end = self
            .rest
            .find(|ch: char| ch.is_whitespace() || ch == ',')
            .unwrap_or(self.rest.len());
        if end == 0 {
            return Err(self.err("expected a word"));
        }
        let w = self.rest[..end].to_string();
        self.rest = &self.rest[end..];
        Ok(w)
    }

    fn comma(&mut self) -> PResult<()> {
        self.skip_ws();
        if let Some(r) = self.rest.strip_prefix(',') {
            self.rest = r;
            Ok(())
        } else {
            Err(self.err("expected `,`"))
        }
    }

    fn number(&mut self) -> PResult<i64> {
        let w = self.word()?;
        w.parse().map_err(|_| self.err(format!("bad number: {w}")))
    }

    fn operand(&mut self) -> PResult<Operand> {
        let w = self.word()?;
        if w == "null" {
            Ok(Operand::Null)
        } else if let Some(v) = w.strip_prefix("%v") {
            let v: u32 = v.parse().map_err(|_| self.err("bad value id"))?;
            Ok(Operand::Value(ValueId(v)))
        } else {
            w.parse::<i64>()
                .map(Operand::Const)
                .map_err(|_| self.err(format!("bad operand: {w}")))
        }
    }

    fn block_label(&mut self) -> PResult<crate::function::BlockId> {
        let w = self.word()?;
        let n = w
            .strip_prefix("bb")
            .and_then(|n| n.parse::<u32>().ok())
            .ok_or_else(|| self.err(format!("bad block label: {w}")))?;
        Ok(crate::function::BlockId(n))
    }

    fn quoted_string(&mut self) -> PResult<String> {
        self.skip_ws();
        let r = self
            .rest
            .strip_prefix('"')
            .ok_or_else(|| self.err("expected quoted string"))?;
        let end = r.find('"').ok_or_else(|| self.err("unterminated string"))?;
        let s = r[..end].to_string();
        self.rest = &r[end + 1..];
        Ok(s)
    }

    /// Parses `@name` up to `(` or whitespace.
    fn func_name(&mut self) -> PResult<String> {
        self.skip_ws();
        let r = self
            .rest
            .strip_prefix('@')
            .ok_or_else(|| self.err("expected @name"))?;
        let end = r
            .find(|ch: char| ch == '(' || ch.is_whitespace())
            .unwrap_or(r.len());
        let name = r[..end].to_string();
        self.rest = &r[end..];
        Ok(name)
    }

    fn call_args(&mut self) -> PResult<Vec<Operand>> {
        self.skip_ws();
        let r = self
            .rest
            .strip_prefix('(')
            .ok_or_else(|| self.err("expected ("))?;
        let close = r.find(')').ok_or_else(|| self.err("unterminated call"))?;
        let inner = &r[..close];
        self.rest = &r[close + 1..];
        let mut args = vec![];
        if !inner.trim().is_empty() {
            for part in inner.split(',') {
                let mut sub = Cursor::new(self.line, part);
                args.push(sub.operand()?);
                sub.expect_end()?;
            }
        }
        Ok(args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::display::print_module;
    use crate::verify::verify_module;

    fn roundtrip(m: &Module) -> Module {
        let text = print_module(m);
        let m2 = parse_module(&text).unwrap_or_else(|e| panic!("{e}\n--\n{text}"));
        let text2 = print_module(&m2);
        assert_eq!(text, text2, "print→parse→print not a fixed point");
        m2
    }

    #[test]
    fn roundtrip_simple() {
        let mut m = Module::new();
        let file = m.intern_file("t.pmc");
        let f = m.declare_function("f", vec![Type::Ptr, Type::int(8)], Type::int(8));
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.entry_block();
        let t = b.new_block("t");
        b.switch_to(e);
        b.set_loc(SrcLoc::line(file, 2));
        let p = b.arg(0);
        let n = b.arg(1);
        b.store(Type::int(8), p, n);
        b.flush(FlushKind::Clwb, p);
        b.fence(FenceKind::Sfence);
        let c = b.cmp(CmpPred::SGt, n, 0i64);
        b.cond_br(c, t, t);
        b.switch_to(t);
        b.ret(Some(Operand::Const(0)));
        b.finish();
        let m2 = roundtrip(&m);
        verify_module(&m2).unwrap();
    }

    #[test]
    fn roundtrip_calls_and_globals() {
        let mut m = Module::new();
        m.add_global("g", 8, vec![1, 2]);
        let g_fn = m.declare_function("callee", vec![Type::Ptr], Type::Void);
        {
            let mut b = FunctionBuilder::new(&mut m, g_fn);
            let e = b.entry_block();
            b.switch_to(e);
            b.ret(None);
            b.finish();
        }
        let f = m.declare_function("main", vec![], Type::Void);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.entry_block();
        b.switch_to(e);
        let gid = b.module().globals().next().unwrap().0;
        let ga = b.global_addr(gid);
        b.call(g_fn, vec![Operand::Value(ga)]);
        b.ret(None);
        b.finish();
        let m2 = roundtrip(&m);
        verify_module(&m2).unwrap();
        assert_eq!(m2.global_count(), 1);
    }

    #[test]
    fn parse_error_reports_line() {
        let text = "func @f() -> void {\nbb0:\n  bogus 1, 2\n}\n";
        let err = parse_module(text).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("bogus"));
    }

    #[test]
    fn forward_calls_resolve() {
        // `main` calls `helper`, declared later in the file.
        let text = "\
func @main() -> void {
bb0:
  call @helper()
  ret
}

func @helper() -> void {
bb0:
  ret
}
";
        let m = parse_module(text).unwrap();
        verify_module(&m).unwrap();
        assert_eq!(m.function_count(), 2);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\
; a comment
func @f() -> i64 { ; trailing
bb0: ; entry

  %v0 = add 1, 2
  ret %v0
}
";
        let m = parse_module(text).unwrap();
        verify_module(&m).unwrap();
    }

    #[test]
    fn double_definition_rejected() {
        let text = "\
func @f() -> void {
bb0:
  %v0 = add 1, 2
  %v0 = add 3, 4
  ret
}
";
        let err = parse_module(text).unwrap_err();
        assert!(err.message.contains("defined twice"));
    }
}
