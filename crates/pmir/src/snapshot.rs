//! Module snapshot/diff/patch utilities for transactional rewriting.
//!
//! The repair engine mutates a [`Module`] in place; a round that fails
//! re-verification must roll back *byte-identically*. The canonical byte
//! representation of a module is its printed text ([`crate::display::print_module`]),
//! which round-trips through [`crate::parse::parse_module`] — so snapshots,
//! digests, and patches are all defined over that text:
//!
//! - [`digest`]/[`digest_hex`] — a cheap FNV-1a 64 fingerprint of the printed
//!   module, used as the identity in journal records and resume checks.
//! - [`ModuleSnapshot`] — captures a round's starting state and restores it
//!   exactly on rollback.
//! - [`ModuleDiff`] — names the functions a round added/changed/removed, for
//!   human-readable quarantine and journal diagnostics.
//! - [`ModulePatch`] — a self-validating, idempotently applicable transition
//!   `base_digest → after_digest`; the unit of journal replay.
//!
//! Patches carry the *whole* printed module rather than per-function splices:
//! calls reference callees by [`crate::FuncId`], so grafting a single printed
//! function into a different module would silently rebind call targets.

use crate::display::print_module;
use crate::module::Module;
use crate::parse::parse_module;
use std::collections::BTreeMap;
use std::fmt;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64 over arbitrary bytes (the repo-wide fingerprint primitive).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Digest of a module's canonical printed text.
pub fn digest(m: &Module) -> u64 {
    fnv1a(print_module(m).as_bytes())
}

/// [`digest`] rendered as the fixed-width hex form used in journals and
/// diagnostics (`16` lowercase hex digits).
pub fn digest_hex(m: &Module) -> String {
    format!("{:016x}", digest(m))
}

/// A captured module state that can be restored byte-identically.
#[derive(Debug, Clone)]
pub struct ModuleSnapshot {
    module: Module,
    text: String,
}

impl ModuleSnapshot {
    /// Captures `m` as it is right now.
    pub fn capture(m: &Module) -> ModuleSnapshot {
        ModuleSnapshot {
            module: m.clone(),
            text: print_module(m),
        }
    }

    /// The canonical printed text at capture time.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Digest of the captured state.
    pub fn digest(&self) -> u64 {
        fnv1a(self.text.as_bytes())
    }

    /// Digest of the captured state in hex form.
    pub fn digest_hex(&self) -> String {
        format!("{:016x}", self.digest())
    }

    /// Restores `m` to the captured state. After this call
    /// `print_module(m)` equals [`ModuleSnapshot::text`] exactly.
    pub fn restore(&self, m: &mut Module) {
        *m = self.module.clone();
    }

    /// Whether `m` is still byte-identical to the captured state.
    pub fn matches(&self, m: &Module) -> bool {
        print_module(m) == self.text
    }
}

/// Function-level difference between two module states.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ModuleDiff {
    /// Functions present after but not before.
    pub added: Vec<String>,
    /// Functions whose printed body changed.
    pub changed: Vec<String>,
    /// Functions present before but not after.
    pub removed: Vec<String>,
}

impl ModuleDiff {
    /// Computes the function-level diff from `before` to `after`.
    pub fn between(before: &Module, after: &Module) -> ModuleDiff {
        let index = |m: &Module| -> BTreeMap<String, String> {
            m.functions()
                .map(|(_, f)| (f.name().to_string(), crate::display::print_function(m, f)))
                .collect()
        };
        let b = index(before);
        let a = index(after);
        let mut diff = ModuleDiff::default();
        for (name, body) in &a {
            match b.get(name) {
                None => diff.added.push(name.clone()),
                Some(old) if old != body => diff.changed.push(name.clone()),
                Some(_) => {}
            }
        }
        for name in b.keys() {
            if !a.contains_key(name) {
                diff.removed.push(name.clone());
            }
        }
        diff
    }

    /// Whether the two states printed identically at function granularity.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.changed.is_empty() && self.removed.is_empty()
    }
}

impl fmt::Display for ModuleDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("no function changes");
        }
        let mut parts = Vec::new();
        if !self.added.is_empty() {
            parts.push(format!("+{}", self.added.join(" +")));
        }
        if !self.changed.is_empty() {
            parts.push(format!("~{}", self.changed.join(" ~")));
        }
        if !self.removed.is_empty() {
            parts.push(format!("-{}", self.removed.join(" -")));
        }
        f.write_str(&parts.join(" "))
    }
}

/// Why a [`ModulePatch`] could not be applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatchError {
    /// The target module matches neither the patch's base nor its result.
    BaseMismatch {
        /// Digest the patch expects to start from (hex).
        expected: String,
        /// Digest of the module it was offered (hex).
        found: String,
    },
    /// The stored module text failed to parse (a corrupted patch).
    Unparsable(String),
    /// The stored text parsed but does not hash to `after_digest` (a
    /// corrupted patch).
    DigestMismatch {
        /// Digest the patch claims to produce (hex).
        expected: String,
        /// Digest the stored text actually hashes to (hex).
        found: String,
    },
}

impl fmt::Display for PatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatchError::BaseMismatch { expected, found } => write!(
                f,
                "patch applies to module {expected} but was offered module {found}"
            ),
            PatchError::Unparsable(e) => write!(f, "patch module text is unparsable: {e}"),
            PatchError::DigestMismatch { expected, found } => write!(
                f,
                "patch text hashes to {found}, journal record claims {expected}"
            ),
        }
    }
}

impl std::error::Error for PatchError {}

/// A self-validating module transition, the unit of journal replay.
///
/// Application is idempotent: applying to a module already at
/// `after_digest` is a no-op, applying to one at `base_digest` installs the
/// stored text, and anything else is an error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModulePatch {
    /// Digest (hex) of the state the patch starts from.
    pub base_digest: String,
    /// Digest (hex) of the state the patch produces.
    pub after_digest: String,
    /// Canonical printed text of the resulting module.
    pub after_text: String,
}

impl ModulePatch {
    /// Records the transition from `before` (by snapshot) to `after`.
    pub fn between(before: &ModuleSnapshot, after: &Module) -> ModulePatch {
        let after_text = print_module(after);
        ModulePatch {
            base_digest: before.digest_hex(),
            after_digest: format!("{:016x}", fnv1a(after_text.as_bytes())),
            after_text,
        }
    }

    /// Applies the patch to `m`. Returns `true` if the module changed,
    /// `false` if it was already at `after_digest` (replay idempotence).
    pub fn apply(&self, m: &mut Module) -> Result<bool, PatchError> {
        let found = digest_hex(m);
        if found == self.after_digest {
            return Ok(false);
        }
        if found != self.base_digest {
            return Err(PatchError::BaseMismatch {
                expected: self.base_digest.clone(),
                found,
            });
        }
        let stored = format!("{:016x}", fnv1a(self.after_text.as_bytes()));
        if stored != self.after_digest {
            return Err(PatchError::DigestMismatch {
                expected: self.after_digest.clone(),
                found: stored,
            });
        }
        let parsed =
            parse_module(&self.after_text).map_err(|e| PatchError::Unparsable(e.to_string()))?;
        *m = parsed;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::function::InstId;
    use crate::inst::Op;
    use crate::ops::{FenceKind, FlushKind};
    use crate::rewrite;
    use crate::types::Type;
    use crate::Operand;

    fn sample() -> (Module, InstId) {
        let mut m = Module::new();
        let f = m.declare_function("persist", vec![Type::Ptr], Type::Void);
        let mut b = FunctionBuilder::new(&mut m, f);
        let entry = b.entry_block();
        b.switch_to(entry);
        let addr = b.arg(0);
        let store = b.store(Type::int(8), Operand::Value(addr), Operand::Const(7));
        b.ret(None);
        b.finish();
        (m, store)
    }

    fn fixed(mut m: Module, store: InstId) -> Module {
        let fid = m.function_by_name("persist").unwrap();
        let f = m.function_mut(fid);
        let addr = Operand::Value(f.arg(0));
        let fl = rewrite::insert_after(
            f,
            store,
            Op::Flush {
                kind: FlushKind::Clwb,
                addr,
            },
            None,
        );
        rewrite::insert_after(
            f,
            fl,
            Op::Fence {
                kind: FenceKind::Sfence,
            },
            None,
        );
        m
    }

    #[test]
    fn digest_is_stable_and_text_sensitive() {
        let (m, store) = sample();
        assert_eq!(digest(&m), digest(&m.clone()));
        assert_ne!(digest(&m), digest(&fixed(m.clone(), store)));
        assert_eq!(digest_hex(&m).len(), 16);
    }

    #[test]
    fn snapshot_restores_byte_identically() {
        let (mut m, store) = sample();
        let snap = ModuleSnapshot::capture(&m);
        let before = print_module(&m);
        m = fixed(m, store);
        assert!(!snap.matches(&m));
        snap.restore(&mut m);
        assert_eq!(print_module(&m), before);
        assert!(snap.matches(&m));
    }

    #[test]
    fn diff_names_changed_functions() {
        let (before, store) = sample();
        let after = fixed(before.clone(), store);
        let d = ModuleDiff::between(&before, &after);
        assert_eq!(d.changed, vec!["persist".to_string()]);
        assert!(d.added.is_empty() && d.removed.is_empty());
        assert!(d.to_string().contains("~persist"));
        assert!(ModuleDiff::between(&before, &before).is_empty());
    }

    #[test]
    fn patch_applies_once_and_is_idempotent() {
        let (base, store) = sample();
        let snap = ModuleSnapshot::capture(&base);
        let after = fixed(base.clone(), store);
        let patch = ModulePatch::between(&snap, &after);

        let mut m = base.clone();
        assert_eq!(patch.apply(&mut m), Ok(true));
        assert_eq!(print_module(&m), print_module(&after));
        // Replaying against the already-patched module is a no-op.
        assert_eq!(patch.apply(&mut m), Ok(false));
        assert_eq!(print_module(&m), print_module(&after));
    }

    #[test]
    fn patch_rejects_wrong_base_and_corruption() {
        let (base, store) = sample();
        let snap = ModuleSnapshot::capture(&base);
        let after = fixed(base.clone(), store);
        let patch = ModulePatch::between(&snap, &after);

        // Wrong base: a module that is neither base nor after.
        let mut other = Module::new();
        let uf = other.declare_function("unrelated", vec![], Type::Void);
        let mut b = FunctionBuilder::new(&mut other, uf);
        let e = b.entry_block();
        b.switch_to(e);
        b.ret(None);
        b.finish();
        assert!(matches!(
            patch.apply(&mut other),
            Err(PatchError::BaseMismatch { .. })
        ));

        // Corrupted text: digest check fires before any parse attempt.
        let mut corrupt = patch.clone();
        corrupt.after_text.push('x');
        let mut m = base.clone();
        assert!(matches!(
            corrupt.apply(&mut m),
            Err(PatchError::DigestMismatch { .. })
        ));
        assert!(snap.matches(&m), "failed apply must not touch the module");
    }
}
