//! Operator and instruction-kind enums shared across the IR.

use std::fmt;

/// A binary arithmetic or bitwise operator. All arithmetic is 64-bit
/// two's-complement with wrapping semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    /// Signed division; division by zero traps the interpreter.
    SDiv,
    /// Signed remainder; division by zero traps the interpreter.
    SRem,
    UDiv,
    URem,
    And,
    Or,
    Xor,
    Shl,
    /// Logical (zero-filling) right shift.
    LShr,
    /// Arithmetic (sign-filling) right shift.
    AShr,
}

impl BinOp {
    /// The mnemonic used by the textual IR format.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::SDiv => "sdiv",
            BinOp::SRem => "srem",
            BinOp::UDiv => "udiv",
            BinOp::URem => "urem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::LShr => "lshr",
            BinOp::AShr => "ashr",
        }
    }

    /// Parses a mnemonic produced by [`BinOp::mnemonic`].
    pub fn from_mnemonic(s: &str) -> Option<Self> {
        Some(match s {
            "add" => BinOp::Add,
            "sub" => BinOp::Sub,
            "mul" => BinOp::Mul,
            "sdiv" => BinOp::SDiv,
            "srem" => BinOp::SRem,
            "udiv" => BinOp::UDiv,
            "urem" => BinOp::URem,
            "and" => BinOp::And,
            "or" => BinOp::Or,
            "xor" => BinOp::Xor,
            "shl" => BinOp::Shl,
            "lshr" => BinOp::LShr,
            "ashr" => BinOp::AShr,
            _ => return None,
        })
    }

    /// Evaluates the operator on two 64-bit values.
    ///
    /// Returns `None` for division or remainder by zero.
    pub fn eval(self, a: i64, b: i64) -> Option<i64> {
        Some(match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::SDiv => {
                if b == 0 {
                    return None;
                }
                a.wrapping_div(b)
            }
            BinOp::SRem => {
                if b == 0 {
                    return None;
                }
                a.wrapping_rem(b)
            }
            BinOp::UDiv => {
                if b == 0 {
                    return None;
                }
                ((a as u64) / (b as u64)) as i64
            }
            BinOp::URem => {
                if b == 0 {
                    return None;
                }
                ((a as u64) % (b as u64)) as i64
            }
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl(b as u32 & 63),
            BinOp::LShr => ((a as u64) >> (b as u32 & 63)) as i64,
            BinOp::AShr => a.wrapping_shr(b as u32 & 63),
        })
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// An integer comparison predicate; results are 0 or 1 as `i64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpPred {
    Eq,
    Ne,
    SLt,
    SLe,
    SGt,
    SGe,
    ULt,
    ULe,
    UGt,
    UGe,
}

impl CmpPred {
    /// The mnemonic used by the textual IR format.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpPred::Eq => "eq",
            CmpPred::Ne => "ne",
            CmpPred::SLt => "slt",
            CmpPred::SLe => "sle",
            CmpPred::SGt => "sgt",
            CmpPred::SGe => "sge",
            CmpPred::ULt => "ult",
            CmpPred::ULe => "ule",
            CmpPred::UGt => "ugt",
            CmpPred::UGe => "uge",
        }
    }

    /// Parses a mnemonic produced by [`CmpPred::mnemonic`].
    pub fn from_mnemonic(s: &str) -> Option<Self> {
        Some(match s {
            "eq" => CmpPred::Eq,
            "ne" => CmpPred::Ne,
            "slt" => CmpPred::SLt,
            "sle" => CmpPred::SLe,
            "sgt" => CmpPred::SGt,
            "sge" => CmpPred::SGe,
            "ult" => CmpPred::ULt,
            "ule" => CmpPred::ULe,
            "ugt" => CmpPred::UGt,
            "uge" => CmpPred::UGe,
            _ => return None,
        })
    }

    /// Evaluates the predicate, returning 1 for true and 0 for false.
    pub fn eval(self, a: i64, b: i64) -> i64 {
        let r = match self {
            CmpPred::Eq => a == b,
            CmpPred::Ne => a != b,
            CmpPred::SLt => a < b,
            CmpPred::SLe => a <= b,
            CmpPred::SGt => a > b,
            CmpPred::SGe => a >= b,
            CmpPred::ULt => (a as u64) < (b as u64),
            CmpPred::ULe => (a as u64) <= (b as u64),
            CmpPred::UGt => (a as u64) > (b as u64),
            CmpPred::UGe => (a as u64) >= (b as u64),
        };
        i64::from(r)
    }
}

impl fmt::Display for CmpPred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// The x86 cache-line flush instruction family (§2.1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FlushKind {
    /// `CLWB`: writes the line back without evicting; weakly ordered.
    Clwb,
    /// `CLFLUSHOPT`: writes back and evicts; weakly ordered.
    ClflushOpt,
    /// `CLFLUSH`: writes back and evicts; *strongly* ordered with respect to
    /// other `CLFLUSH`s and stores to the same line — it does not require a
    /// following fence for durability ordering on x86.
    Clflush,
}

impl FlushKind {
    /// Whether the flush is weakly ordered and therefore needs a fence to
    /// establish a durability ordering.
    pub fn is_weakly_ordered(self) -> bool {
        !matches!(self, FlushKind::Clflush)
    }

    /// The mnemonic used by the textual IR format.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FlushKind::Clwb => "clwb",
            FlushKind::ClflushOpt => "clflushopt",
            FlushKind::Clflush => "clflush",
        }
    }

    /// Parses a mnemonic produced by [`FlushKind::mnemonic`].
    pub fn from_mnemonic(s: &str) -> Option<Self> {
        Some(match s {
            "clwb" => FlushKind::Clwb,
            "clflushopt" => FlushKind::ClflushOpt,
            "clflush" => FlushKind::Clflush,
            _ => return None,
        })
    }
}

impl fmt::Display for FlushKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// The x86 memory fence family (§2.1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FenceKind {
    /// `SFENCE`: orders store-like instructions and weak flushes.
    Sfence,
    /// `MFENCE`: orders all memory operations, including loads.
    Mfence,
}

impl FenceKind {
    /// The mnemonic used by the textual IR format.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FenceKind::Sfence => "sfence",
            FenceKind::Mfence => "mfence",
        }
    }

    /// Parses a mnemonic produced by [`FenceKind::mnemonic`].
    pub fn from_mnemonic(s: &str) -> Option<Self> {
        Some(match s {
            "sfence" => FenceKind::Sfence,
            "mfence" => FenceKind::Mfence,
            _ => return None,
        })
    }
}

impl fmt::Display for FenceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Memory access width in bytes; a thin validated wrapper used by loads and
/// stores in the textual format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AccessWidth(u8);

impl AccessWidth {
    /// Creates an access width; only 1, 2, 4 and 8 are legal.
    pub fn new(bytes: u8) -> Option<Self> {
        matches!(bytes, 1 | 2 | 4 | 8).then_some(AccessWidth(bytes))
    }

    /// The width in bytes.
    pub fn bytes(self) -> u8 {
        self.0
    }
}

impl fmt::Display for AccessWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_eval_basics() {
        assert_eq!(BinOp::Add.eval(2, 3), Some(5));
        assert_eq!(BinOp::Sub.eval(2, 3), Some(-1));
        assert_eq!(BinOp::Mul.eval(-4, 3), Some(-12));
        assert_eq!(BinOp::SDiv.eval(7, 2), Some(3));
        assert_eq!(BinOp::SDiv.eval(7, 0), None);
        assert_eq!(BinOp::URem.eval(-1, 10), Some(5)); // u64::MAX % 10
        assert_eq!(BinOp::Shl.eval(1, 4), Some(16));
        assert_eq!(BinOp::LShr.eval(-1, 60), Some(15));
        assert_eq!(BinOp::AShr.eval(-16, 2), Some(-4));
    }

    #[test]
    fn binop_wrapping() {
        assert_eq!(BinOp::Add.eval(i64::MAX, 1), Some(i64::MIN));
        assert_eq!(BinOp::Mul.eval(i64::MAX, 2), Some(-2));
    }

    #[test]
    fn cmp_eval() {
        assert_eq!(CmpPred::SLt.eval(-1, 0), 1);
        assert_eq!(CmpPred::ULt.eval(-1, 0), 0);
        assert_eq!(CmpPred::Eq.eval(3, 3), 1);
        assert_eq!(CmpPred::Ne.eval(3, 3), 0);
        assert_eq!(CmpPred::UGe.eval(-1, 1), 1);
    }

    #[test]
    fn mnemonic_roundtrip() {
        for op in [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::SDiv,
            BinOp::SRem,
            BinOp::UDiv,
            BinOp::URem,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Shl,
            BinOp::LShr,
            BinOp::AShr,
        ] {
            assert_eq!(BinOp::from_mnemonic(op.mnemonic()), Some(op));
        }
        for p in [
            CmpPred::Eq,
            CmpPred::Ne,
            CmpPred::SLt,
            CmpPred::SLe,
            CmpPred::SGt,
            CmpPred::SGe,
            CmpPred::ULt,
            CmpPred::ULe,
            CmpPred::UGt,
            CmpPred::UGe,
        ] {
            assert_eq!(CmpPred::from_mnemonic(p.mnemonic()), Some(p));
        }
        for k in [FlushKind::Clwb, FlushKind::ClflushOpt, FlushKind::Clflush] {
            assert_eq!(FlushKind::from_mnemonic(k.mnemonic()), Some(k));
        }
        for k in [FenceKind::Sfence, FenceKind::Mfence] {
            assert_eq!(FenceKind::from_mnemonic(k.mnemonic()), Some(k));
        }
    }

    #[test]
    fn flush_ordering_semantics() {
        assert!(FlushKind::Clwb.is_weakly_ordered());
        assert!(FlushKind::ClflushOpt.is_weakly_ordered());
        assert!(!FlushKind::Clflush.is_weakly_ordered());
    }

    #[test]
    fn access_width_validation() {
        assert!(AccessWidth::new(8).is_some());
        assert!(AccessWidth::new(3).is_none());
        assert_eq!(AccessWidth::new(4).unwrap().bytes(), 4);
    }
}
