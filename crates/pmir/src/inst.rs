//! Instructions and operands.

use crate::function::{BlockId, ValueId};
use crate::module::{FuncId, GlobalId};
use crate::ops::{BinOp, CmpPred, FenceKind, FlushKind};
use crate::srcloc::SrcLoc;
use crate::types::Type;

/// An instruction operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A virtual value: a function argument or the result of an instruction.
    Value(ValueId),
    /// A 64-bit integer constant.
    Const(i64),
    /// The null pointer constant.
    Null,
}

impl Operand {
    /// The value id if this operand is a value.
    pub fn as_value(self) -> Option<ValueId> {
        match self {
            Operand::Value(v) => Some(v),
            _ => None,
        }
    }
}

impl From<ValueId> for Operand {
    fn from(v: ValueId) -> Self {
        Operand::Value(v)
    }
}

impl From<i64> for Operand {
    fn from(c: i64) -> Self {
        Operand::Const(c)
    }
}

/// The operation performed by an [`Inst`].
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Binary arithmetic on 64-bit integers.
    Bin { op: BinOp, a: Operand, b: Operand },
    /// Integer comparison producing 0 or 1.
    Cmp {
        pred: CmpPred,
        a: Operand,
        b: Operand,
    },
    /// Reserve `size` bytes of stack storage in the current frame; yields a
    /// pointer. Storage lives until the frame returns.
    Alloca { size: u64 },
    /// Allocate `size` bytes of volatile heap ("DRAM") storage.
    HeapAlloc { size: Operand },
    /// Release a heap allocation obtained from [`Op::HeapAlloc`].
    HeapFree { ptr: Operand },
    /// Map a persistent-memory pool of `size` bytes; yields a PM pointer.
    /// Pools persist across simulated crashes (identified by `pool_hint`,
    /// which lets re-execution after a crash re-attach the same pool).
    PmemMap { size: Operand, pool_hint: u64 },
    /// Pointer arithmetic: `base + offset` bytes.
    Gep { base: Operand, offset: Operand },
    /// Load a value of type `ty` from `addr`.
    Load { ty: Type, addr: Operand },
    /// Store `value` of type `ty` to `addr`.
    Store {
        ty: Type,
        addr: Operand,
        value: Operand,
    },
    /// Copy `len` bytes from `src` to `dst` (regions must not overlap).
    Memcpy {
        dst: Operand,
        src: Operand,
        len: Operand,
    },
    /// Fill `len` bytes at `dst` with the low byte of `val`.
    Memset {
        dst: Operand,
        val: Operand,
        len: Operand,
    },
    /// Flush the cache line containing `addr`.
    Flush { kind: FlushKind, addr: Operand },
    /// Memory fence.
    Fence { kind: FenceKind },
    /// Direct call.
    Call { callee: FuncId, args: Vec<Operand> },
    /// Return from the function.
    Ret { value: Option<Operand> },
    /// Unconditional branch.
    Br { target: BlockId },
    /// Conditional branch: nonzero `cond` goes to `then_bb`.
    CondBr {
        cond: Operand,
        then_bb: BlockId,
        else_bb: BlockId,
    },
    /// Take the address of a module global; yields a pointer.
    GlobalAddr { global: GlobalId },
    /// Emit `value` on the observable output channel. Program output is the
    /// sequence of printed values; the do-no-harm property tests compare it.
    Print { value: Operand },
    /// A potential crash point: durability of earlier PM updates is required
    /// here (the `I` of the paper's `X -> F(X) -> M -> I` orderings). The
    /// checker audits pending stores at each crash point; execution continues.
    CrashPoint,
    /// Abort execution with the given code (an observable trap).
    Abort { code: i64 },
}

impl Op {
    /// The operands read by this operation, in a fixed order.
    pub fn operands(&self) -> Vec<Operand> {
        match self {
            Op::Bin { a, b, .. } | Op::Cmp { a, b, .. } => vec![*a, *b],
            Op::Alloca { .. } => vec![],
            Op::HeapAlloc { size } => vec![*size],
            Op::HeapFree { ptr } => vec![*ptr],
            Op::PmemMap { size, .. } => vec![*size],
            Op::Gep { base, offset } => vec![*base, *offset],
            Op::Load { addr, .. } => vec![*addr],
            Op::Store { addr, value, .. } => vec![*addr, *value],
            Op::Memcpy { dst, src, len } => vec![*dst, *src, *len],
            Op::Memset { dst, val, len } => vec![*dst, *val, *len],
            Op::Flush { addr, .. } => vec![*addr],
            Op::Fence { .. } => vec![],
            Op::Call { args, .. } => args.clone(),
            Op::Ret { value } => value.iter().copied().collect(),
            Op::Br { .. } => vec![],
            Op::CondBr { cond, .. } => vec![*cond],
            Op::GlobalAddr { .. } => vec![],
            Op::Print { value } => vec![*value],
            Op::CrashPoint => vec![],
            Op::Abort { .. } => vec![],
        }
    }

    /// The type of the value this operation produces, or `None` if it
    /// produces nothing.
    pub fn result_type(&self) -> Option<Type> {
        match self {
            Op::Bin { .. } | Op::Cmp { .. } => Some(Type::Int(8)),
            Op::Alloca { .. }
            | Op::HeapAlloc { .. }
            | Op::PmemMap { .. }
            | Op::Gep { .. }
            | Op::GlobalAddr { .. } => Some(Type::Ptr),
            Op::Load { ty, .. } => Some(*ty),
            // Calls are resolved against the module; see `Function`.
            Op::Call { .. } => None,
            _ => None,
        }
    }

    /// Whether this operation terminates its basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Op::Ret { .. } | Op::Br { .. } | Op::CondBr { .. } | Op::Abort { .. }
        )
    }

    /// Whether this is a store-like operation that may dirty PM (a store,
    /// memcpy, or memset).
    pub fn is_pm_storeish(&self) -> bool {
        matches!(
            self,
            Op::Store { .. } | Op::Memcpy { .. } | Op::Memset { .. }
        )
    }

    /// The successor blocks of a terminator (empty for non-terminators and
    /// for `ret`/`abort`).
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Op::Br { target } => vec![*target],
            Op::CondBr {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            _ => vec![],
        }
    }
}

/// An instruction: an operation plus optional debug location and result.
#[derive(Debug, Clone, PartialEq)]
pub struct Inst {
    /// The operation.
    pub op: Op,
    /// The source location this instruction was lowered from, if known.
    pub loc: Option<SrcLoc>,
    /// The virtual value defined by this instruction, if it produces one.
    pub result: Option<ValueId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_conversions() {
        let v = ValueId(3);
        assert_eq!(Operand::from(v), Operand::Value(v));
        assert_eq!(Operand::from(7i64), Operand::Const(7));
        assert_eq!(Operand::Value(v).as_value(), Some(v));
        assert_eq!(Operand::Const(1).as_value(), None);
    }

    #[test]
    fn terminators() {
        assert!(Op::Ret { value: None }.is_terminator());
        assert!(Op::Br { target: BlockId(0) }.is_terminator());
        assert!(!Op::Fence {
            kind: FenceKind::Sfence
        }
        .is_terminator());
    }

    #[test]
    fn successors() {
        let br = Op::CondBr {
            cond: Operand::Const(1),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        };
        assert_eq!(br.successors(), vec![BlockId(1), BlockId(2)]);
        assert!(Op::Ret { value: None }.successors().is_empty());
    }

    #[test]
    fn storeish() {
        let st = Op::Store {
            ty: Type::int(8),
            addr: Operand::Null,
            value: Operand::Const(0),
        };
        assert!(st.is_pm_storeish());
        assert!(!Op::CrashPoint.is_pm_storeish());
    }
}
