//! Criterion: Andersen solver throughput over the evaluation targets'
//! modules (the dominant offline cost of the Full-AA heuristic).

use criterion::{criterion_group, criterion_main, Criterion};
use pmalias::{AliasAnalysis, PmMarking};
use std::hint::black_box;

fn bench_alias(c: &mut Criterion) {
    let redis = pmapps::redis::build(pmapps::redis::RedisBuild::PmPort).unwrap();
    let mc = pmapps::memcached::build_correct().unwrap();
    let pmdk = minipmdk::build_correct().unwrap();

    let mut g = c.benchmark_group("alias_solver");
    g.bench_function("redis_analyze", |b| {
        b.iter(|| AliasAnalysis::analyze(black_box(&redis)))
    });
    g.bench_function("memcached_analyze", |b| {
        b.iter(|| AliasAnalysis::analyze(black_box(&mc)))
    });
    g.bench_function("pmdk_analyze", |b| {
        b.iter(|| AliasAnalysis::analyze(black_box(&pmdk)))
    });

    let aa = AliasAnalysis::analyze(&redis);
    let marking = PmMarking::full(&aa);
    let ptrs: Vec<_> = aa.pointer_values().collect();
    g.bench_function("redis_score_all_pointers", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for &(f, v) in &ptrs {
                acc += marking.score(&aa, f, v);
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_alias);
criterion_main!(benches);
