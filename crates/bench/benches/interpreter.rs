//! Criterion: interpreter dispatch throughput (steps/second) on the
//! evaluation applications.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pmvm::{Vm, VmOptions};
use std::hint::black_box;

fn bench_interp(c: &mut Criterion) {
    let pclht = pmapps::pclht::build_correct().unwrap();
    let mc = pmapps::memcached::build_correct().unwrap();

    // Measure once to learn the step counts for throughput reporting.
    let steps_pclht = Vm::new(VmOptions::bench())
        .run(&pclht, pmapps::pclht::ENTRY)
        .unwrap()
        .steps;
    let steps_mc = Vm::new(VmOptions::bench())
        .run(&mc, pmapps::memcached::ENTRY)
        .unwrap()
        .steps;

    let mut g = c.benchmark_group("interpreter");
    g.throughput(Throughput::Elements(steps_pclht));
    g.bench_function("pclht_main", |b| {
        b.iter(|| {
            Vm::new(VmOptions::bench())
                .run(black_box(&pclht), pmapps::pclht::ENTRY)
                .unwrap()
        })
    });
    g.throughput(Throughput::Elements(steps_mc));
    g.bench_function("memcached_main", |b| {
        b.iter(|| {
            Vm::new(VmOptions::bench())
                .run(black_box(&mc), pmapps::memcached::ENTRY)
                .unwrap()
        })
    });
    // Tracing overhead: the same run with the pmemcheck trace enabled.
    g.throughput(Throughput::Elements(steps_mc));
    g.bench_function("memcached_main_traced", |b| {
        b.iter(|| {
            Vm::new(VmOptions::default())
                .run(black_box(&mc), pmapps::memcached::ENTRY)
                .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_interp);
criterion_main!(benches);
