//! Criterion: host-side wall-clock of one simulated YCSB batch per Redis
//! variant (how fast the Fig. 4 experiment itself runs).

use bench::redisx::{build_redis_variants, to_redis_ops};
use criterion::{criterion_group, criterion_main, Criterion};
use pmapps::redis::attach_workload;
use pmvm::{Vm, VmOptions};
use std::hint::black_box;
use ycsb::{Generator, Workload};

fn bench_ycsb(c: &mut Criterion) {
    let mut v = build_redis_variants();
    let g = Generator::new(200, 200, 1024, 1);
    let mut ops = to_redis_ops(&g.load_ops(), 1024);
    ops.extend(to_redis_ops(&g.run_ops(Workload::A), 1024));
    let e_pm = attach_workload(&mut v.pm, "bench", &ops);
    let e_full = attach_workload(&mut v.hfull, "bench", &ops);
    let e_intra = attach_workload(&mut v.hintra, "bench", &ops);

    let mut grp = c.benchmark_group("ycsb_redis_workload_a");
    grp.sample_size(20);
    for (name, module, entry) in [
        ("redis_pm", &v.pm, &e_pm),
        ("redis_h_full", &v.hfull, &e_full),
        ("redis_h_intra", &v.hintra, &e_intra),
    ] {
        grp.bench_function(name, |b| {
            b.iter(|| {
                Vm::new(VmOptions::bench())
                    .run(black_box(module), entry)
                    .unwrap()
                    .stats
                    .cycles
            })
        });
    }
    grp.finish();
}

criterion_group!(benches, bench_ycsb);
criterion_main!(benches);
