//! Criterion: durability-checker throughput over recorded traces.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pmcheck::check_trace;
use pmvm::{Vm, VmOptions};
use std::hint::black_box;

fn bench_checker(c: &mut Criterion) {
    let mc = pmapps::memcached::build_correct().unwrap();
    let trace = Vm::new(VmOptions::default())
        .run(&mc, pmapps::memcached::ENTRY)
        .unwrap()
        .trace
        .unwrap();
    let buggy = pmapps::memcached::build_buggy("mm-2").unwrap();
    let buggy_trace = Vm::new(VmOptions::default())
        .run(&buggy, pmapps::memcached::ENTRY)
        .unwrap()
        .trace
        .unwrap();

    let mut g = c.benchmark_group("checker");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("clean_trace", |b| b.iter(|| check_trace(black_box(&trace))));
    g.throughput(Throughput::Elements(buggy_trace.len() as u64));
    g.bench_function("buggy_trace", |b| {
        b.iter(|| check_trace(black_box(&buggy_trace)))
    });
    g.bench_function("trace_json_roundtrip", |b| {
        b.iter(|| {
            let json = black_box(&trace).to_json().unwrap();
            pmtrace::Trace::from_json(&json).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_checker);
criterion_main!(benches);
