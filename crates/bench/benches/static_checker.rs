//! Criterion: static persistency checking vs dynamic run-and-check on the
//! application corpus — the cost of a verdict that needs no execution.

use criterion::{criterion_group, criterion_main, Criterion};
use pmvm::VmOptions;
use std::hint::black_box;

fn bench_static_checker(c: &mut Criterion) {
    let pclht = pmapps::pclht::build_correct().unwrap();
    let mc = pmapps::memcached::build_correct().unwrap();
    let ops: Vec<pmapps::redis::RedisOp> = (1..=10)
        .map(|k| pmapps::redis::RedisOp::set(k, 64))
        .collect();
    let mut redis = pmapps::redis::build(pmapps::redis::RedisBuild::PmPort).unwrap();
    let redis_entry = pmapps::redis::attach_workload(&mut redis, "bench", &ops);

    let apps: [(&str, &pmir::Module, &str); 3] = [
        ("pclht", &pclht, pmapps::pclht::ENTRY),
        ("memcached", &mc, pmapps::memcached::ENTRY),
        ("redis", &redis, &redis_entry),
    ];

    let mut g = c.benchmark_group("static_checker");
    for (name, m, entry) in apps {
        g.bench_function(format!("static/{name}"), |b| {
            b.iter(|| pmstatic::check_module(black_box(m), black_box(entry)).unwrap())
        });
        g.bench_function(format!("dynamic/{name}"), |b| {
            b.iter(|| {
                pmcheck::run_and_check(black_box(m), black_box(entry), VmOptions::default())
                    .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_static_checker);
criterion_main!(benches);
