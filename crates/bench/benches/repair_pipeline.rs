//! Criterion: the full detect→fix→verify pipeline per corpus target (the
//! Fig. 5 "offline overhead" as a steady-state measurement).

use criterion::{criterion_group, criterion_main, Criterion};
use hippocrates::{Hippocrates, RepairOptions};
use std::hint::black_box;

fn bench_repair(c: &mut Criterion) {
    let mut g = c.benchmark_group("repair_pipeline");
    g.sample_size(20);
    g.bench_function("pmdk_452_intraproc", |b| {
        b.iter(|| {
            let mut m = minipmdk::build_buggy("pmdk-452").unwrap();
            let outcome = Hippocrates::new(RepairOptions::default())
                .repair_until_clean(&mut m, &minipmdk::entry_for("pmdk-452"))
                .unwrap();
            black_box(outcome.fixes.len())
        })
    });
    g.bench_function("pmdk_447_interproc", |b| {
        b.iter(|| {
            let mut m = minipmdk::build_buggy("pmdk-447").unwrap();
            let outcome = Hippocrates::new(RepairOptions::default())
                .repair_until_clean(&mut m, &minipmdk::entry_for("pmdk-447"))
                .unwrap();
            black_box(outcome.fixes.len())
        })
    });
    g.bench_function("pclht_both_bugs", |b| {
        b.iter(|| {
            let mut m = minipmdk::library_compiler()
                .source("pclht.pmc", pmapps::pclht::SRC)
                .elide_tags(pmapps::pclht::BUG_IDS)
                .compile()
                .unwrap();
            let outcome = Hippocrates::new(RepairOptions::default())
                .repair_until_clean(&mut m, pmapps::pclht::ENTRY)
                .unwrap();
            black_box(outcome.fixes.len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_repair);
criterion_main!(benches);
