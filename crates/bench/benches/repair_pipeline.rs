//! Criterion: the full detect→fix→verify pipeline per corpus target (the
//! Fig. 5 "offline overhead" as a steady-state measurement), plus the
//! observability-layer cost check: the armed-but-disabled `pmobs` handle
//! (instrumentation threaded through every stage, no registry attached)
//! must stay within noise — ≤5 % — of the pipeline, and even a fully
//! enabled registry should be cheap.

use criterion::{criterion_group, criterion_main, Criterion};
use hippocrates::{Hippocrates, RepairOptions};
use std::hint::black_box;
use std::time::Instant;

fn bench_repair(c: &mut Criterion) {
    let mut g = c.benchmark_group("repair_pipeline");
    g.sample_size(20);
    g.bench_function("pmdk_452_intraproc", |b| {
        b.iter(|| {
            let mut m = minipmdk::build_buggy("pmdk-452").unwrap();
            let outcome = Hippocrates::new(RepairOptions::default())
                .repair_until_clean(&mut m, &minipmdk::entry_for("pmdk-452"))
                .unwrap();
            black_box(outcome.fixes.len())
        })
    });
    g.bench_function("pmdk_447_interproc", |b| {
        b.iter(|| {
            let mut m = minipmdk::build_buggy("pmdk-447").unwrap();
            let outcome = Hippocrates::new(RepairOptions::default())
                .repair_until_clean(&mut m, &minipmdk::entry_for("pmdk-447"))
                .unwrap();
            black_box(outcome.fixes.len())
        })
    });
    g.bench_function("pclht_both_bugs", |b| {
        b.iter(|| {
            let mut m = minipmdk::library_compiler()
                .source("pclht.pmc", pmapps::pclht::SRC)
                .elide_tags(pmapps::pclht::BUG_IDS)
                .compile()
                .unwrap();
            let outcome = Hippocrates::new(RepairOptions::default())
                .repair_until_clean(&mut m, pmapps::pclht::ENTRY)
                .unwrap();
            black_box(outcome.fixes.len())
        })
    });
    g.finish();
}

/// One pmdk-452 repair under the given options; returns wall seconds.
fn one_repair(opts: RepairOptions) -> f64 {
    let mut m = minipmdk::build_buggy("pmdk-452").unwrap();
    let t0 = Instant::now();
    let outcome = Hippocrates::new(opts)
        .repair_until_clean(&mut m, &minipmdk::entry_for("pmdk-452"))
        .unwrap();
    black_box(outcome.fixes.len());
    t0.elapsed().as_secs_f64()
}

fn bench_obs_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs_overhead");
    g.sample_size(20);
    // Armed-but-disabled: the default `RepairOptions` — every stage
    // carries the obs handle, each record site is one `Option` branch.
    g.bench_function("pmdk_452_obs_disabled", |b| {
        b.iter(|| black_box(one_repair(RepairOptions::default())))
    });
    // Fully enabled: a live registry behind a mutex, spans and counters
    // recorded at every stage.
    g.bench_function("pmdk_452_obs_enabled", |b| {
        b.iter(|| {
            black_box(one_repair(RepairOptions {
                obs: pmobs::Obs::enabled(),
                ..RepairOptions::default()
            }))
        })
    });
    g.finish();

    // Paired interleaved measurement of enabled-over-disabled, so the two
    // arms see the same machine state. The armed-but-disabled ≤5 % budget
    // against the *pre-instrumentation* pipeline is pinned by the CI bench
    // gate's wall-time baselines; this ratio bounds it from above, since
    // disabled does strictly less work than enabled.
    let mut disabled = vec![];
    let mut enabled = vec![];
    for _ in 0..11 {
        disabled.push(one_repair(RepairOptions::default()));
        enabled.push(one_repair(RepairOptions {
            obs: pmobs::Obs::enabled(),
            ..RepairOptions::default()
        }));
    }
    disabled.sort_by(|a, b| a.total_cmp(b));
    enabled.sort_by(|a, b| a.total_cmp(b));
    let ratio = enabled[enabled.len() / 2] / disabled[disabled.len() / 2];
    println!("obs_overhead/enabled_over_disabled_median          {ratio:>12.3} x");
}

criterion_group!(benches, bench_repair, bench_obs_overhead);
criterion_main!(benches);
