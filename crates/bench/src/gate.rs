//! The bench-regression gate: compares fresh `BENCH_*.json` artifacts
//! (`hippo.metrics.v1` snapshots) against checked-in baselines under
//! `crates/bench/baselines/`.
//!
//! Three classes of gauge are gated; everything else is informational:
//!
//! * **wall metrics** — names ending in `_ms`. Fresh must stay within
//!   [`WALL_TOLERANCE`] of the baseline: a >25 % wall-time regression
//!   fails the gate. Baselines are written with [`REBASE_HEADROOM`] so a
//!   modestly slower CI machine does not trip it.
//! * **floor metrics** — names ending in `pass_rate`, `healed_clean`, or
//!   the explicit `_floor` suffix (used for deterministic simulated-clock
//!   ratios like the optimizer's per-workload speedups). Any drop below
//!   the baseline fails: correctness rates and proven wins never regress.
//! * **throughput metrics** — names ending in `.states_per_sec` or
//!   `.j4_over_j1`. Floor semantics (fresh must not drop below the
//!   baseline), but baselines are written at the measured rate divided by
//!   [`THROUGHPUT_REBASE_HEADROOM`], so the fast-tier explore win survives
//!   machine variance while a real regression fails.
//!
//! [`doctor`] corrupts a baseline so the gate is *guaranteed* to fail on
//! any real run — the inverted self-test `scripts/bench_gate.sh` uses to
//! prove the gate can actually reject.

use pmobs::Snapshot;
use std::collections::BTreeMap;

/// The artifacts with checked-in baselines.
pub const GATED_FILES: &[&str] = &[
    "BENCH_explore.json",
    "BENCH_fault.json",
    "BENCH_tx.json",
    "BENCH_opt.json",
    "BENCH_serve.json",
];

/// Fresh wall metrics may exceed the baseline by at most this factor.
pub const WALL_TOLERANCE: f64 = 1.25;

/// Absolute slack added on top of the ratio: sub-second wall metrics jitter
/// by far more than 25 % run to run, so the limit is
/// `base * WALL_TOLERANCE + WALL_SLACK_MS`. Multi-second regressions are
/// what the gate exists to catch; quarter-second noise is not.
pub const WALL_SLACK_MS: f64 = 250.0;

/// Headroom applied to wall metrics when (re)writing baselines.
pub const REBASE_HEADROOM: f64 = 1.6;

/// Headroom applied to throughput metrics when (re)writing baselines: the
/// checked-in floor is the measured rate divided by this, so a CI machine
/// half as fast as the rebase machine still passes while a real tier
/// regression (the 10x explore win quietly rotting away) fails.
pub const THROUGHPUT_REBASE_HEADROOM: f64 = 2.0;

/// Whether `name` is a gated wall-time gauge. Only the `bench.` namespace
/// is gated: pipeline-internal gauges (e.g. `repair.reverify_ms`) ride
/// along in the artifact for humans but are sub-millisecond noise no
/// baseline should pin.
pub fn is_wall_metric(name: &str) -> bool {
    name.starts_with("bench.") && name.ends_with("_ms")
}

/// Whether `name` is a gated no-drop gauge (same namespace rule). The
/// explicit `_floor` suffix opts a gauge in by name; `pass_rate` and
/// `healed_clean` are grandfathered from before the suffix existed.
pub fn is_floor_metric(name: &str) -> bool {
    name.starts_with("bench.")
        && (name.ends_with("pass_rate")
            || name.ends_with("healed_clean")
            || name.ends_with("_floor"))
}

/// Whether `name` is a gated throughput gauge (same namespace rule):
/// states/sec rates and the `j4_over_j1` parallel-speedup ratio. Like floor
/// metrics the fresh value must not drop below the baseline, but baselines
/// are written with [`THROUGHPUT_REBASE_HEADROOM`] (divide, not multiply —
/// higher is better) instead of being pinned exactly.
pub fn is_throughput_metric(name: &str) -> bool {
    name.starts_with("bench.")
        && (name.ends_with(".states_per_sec") || name.ends_with(".j4_over_j1"))
}

/// The outcome of gating one artifact.
#[derive(Debug, Default)]
pub struct GateReport {
    /// Hard failures: the gate must reject.
    pub failures: Vec<String>,
    /// Informational lines (within-tolerance walls, counter drift).
    pub infos: Vec<String>,
}

impl GateReport {
    /// No failures recorded.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Gates `fresh` against `base` for the artifact `file`.
pub fn compare(file: &str, base: &Snapshot, fresh: &Snapshot) -> GateReport {
    let mut r = GateReport::default();
    for (name, &b) in &base.gauges {
        let gated = is_wall_metric(name) || is_floor_metric(name) || is_throughput_metric(name);
        let Some(&f) = fresh.gauges.get(name) else {
            if gated {
                r.failures.push(format!(
                    "{file}: gated gauge `{name}` missing from fresh run"
                ));
            }
            continue;
        };
        if is_wall_metric(name) {
            let limit = b * WALL_TOLERANCE + WALL_SLACK_MS;
            if f > limit {
                r.failures.push(format!(
                    "{file}: `{name}` regressed: {f:.1} ms vs baseline {b:.1} ms \
                     (limit {limit:.1} ms, +{:.0}%)",
                    (f / b - 1.0) * 100.0
                ));
            } else {
                r.infos.push(format!(
                    "{file}: `{name}` {f:.1} ms (limit {limit:.1} ms) ok"
                ));
            }
        } else if is_floor_metric(name) {
            if f + 1e-9 < b {
                r.failures
                    .push(format!("{file}: `{name}` dropped: {f} vs baseline {b}"));
            } else {
                r.infos.push(format!("{file}: `{name}` {f} (floor {b}) ok"));
            }
        } else if is_throughput_metric(name) {
            if f + 1e-9 < b {
                r.failures.push(format!(
                    "{file}: `{name}` below throughput floor: {f:.1} vs {b:.1} \
                     (-{:.0}%)",
                    (1.0 - f / b) * 100.0
                ));
            } else {
                r.infos
                    .push(format!("{file}: `{name}` {f:.1} (floor {b:.1}) ok"));
            }
        }
    }
    // Counter drift never fails the gate, but a changed headline count is
    // worth a line in the log.
    for (name, &b) in &base.counters {
        match fresh.counters.get(name) {
            Some(&f) if f != b => r.infos.push(format!("{file}: counter `{name}` {b} -> {f}")),
            None => r
                .infos
                .push(format!("{file}: counter `{name}` missing from fresh run")),
            _ => {}
        }
    }
    r
}

/// Corrupts a baseline for the inverted self-test, machine-independently:
/// wall metrics shrink 1000x (any real run now exceeds the tolerance) and
/// floor metrics are pushed above any achievable rate (any real rate is
/// now a drop).
pub fn doctor(base: &mut Snapshot) {
    for (name, v) in base.gauges.iter_mut() {
        if is_wall_metric(name) {
            *v /= 1000.0;
        } else if is_floor_metric(name) {
            *v = v.mul_add(2.0, 1.0);
        } else if is_throughput_metric(name) {
            // No machine is 1000x faster than the rebase machine.
            *v *= 1000.0;
        }
    }
}

/// Converts a fresh snapshot into a checked-in baseline: spans and
/// histograms are stripped (run- and machine-specific noise that would
/// churn every rebase diff) and wall metrics get [`REBASE_HEADROOM`].
pub fn rebase(fresh: &Snapshot) -> Snapshot {
    let mut base = Snapshot {
        spans: vec![],
        counters: fresh.counters.clone(),
        gauges: fresh.gauges.clone(),
        histograms: BTreeMap::new(),
    };
    for (name, v) in base.gauges.iter_mut() {
        if is_wall_metric(name) {
            *v *= REBASE_HEADROOM;
        } else if is_throughput_metric(name) {
            *v /= THROUGHPUT_REBASE_HEADROOM;
        }
    }
    base
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(gauges: &[(&str, f64)], counters: &[(&str, u64)]) -> Snapshot {
        Snapshot {
            gauges: gauges.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            counters: counters.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            ..Snapshot::default()
        }
    }

    #[test]
    fn classifies_metric_names() {
        assert!(is_wall_metric("bench.wall_ms"));
        assert!(is_wall_metric("bench.explore.pclht.j4.wall_ms"));
        assert!(!is_wall_metric("bench.fault.pass_rate"));
        assert!(is_floor_metric("bench.fault.pass_rate"));
        assert!(is_floor_metric("bench.explore.healed_clean"));
        assert!(is_floor_metric("bench.opt.Load.speedup_floor"));
        assert!(!is_floor_metric("bench.wall_ms"));
        assert!(!is_floor_metric("bench.opt.Load.naive.ops_per_sec"));
        assert!(is_throughput_metric(
            "bench.explore.pclht.j1.states_per_sec"
        ));
        assert!(is_throughput_metric("bench.explore.pclht.j4_over_j1"));
        // `ops_per_sec` predates the class and stays informational.
        assert!(!is_throughput_metric("bench.opt.Load.naive.ops_per_sec"));
        // Pipeline-internal gauges outside `bench.` are never gated.
        assert!(!is_wall_metric("repair.reverify_ms"));
        assert!(!is_floor_metric("check.pass_rate"));
        assert!(!is_throughput_metric("explore.states_per_sec"));
    }

    #[test]
    fn wall_regressions_beyond_tolerance_fail() {
        let base = snap(&[("bench.wall_ms", 10_000.0)], &[]);
        // Within tolerance: limit is 10000 * 1.25 + 250 = 12750 ms.
        assert!(compare("f", &base, &snap(&[("bench.wall_ms", 12_700.0)], &[])).passed());
        // Beyond tolerance.
        let r = compare("f", &base, &snap(&[("bench.wall_ms", 12_800.0)], &[]));
        assert!(!r.passed());
        assert!(r.failures[0].contains("regressed"), "{:?}", r.failures);
        // A faster run always passes.
        assert!(compare("f", &base, &snap(&[("bench.wall_ms", 10.0)], &[])).passed());
        // Sub-second metrics ride inside the absolute slack: 2 ms vs a
        // 1 ms baseline is noise, not a 2x regression.
        let tiny = snap(&[("bench.explore.demo.j1.wall_ms", 1.0)], &[]);
        assert!(compare(
            "f",
            &tiny,
            &snap(&[("bench.explore.demo.j1.wall_ms", 2.0)], &[])
        )
        .passed());
    }

    #[test]
    fn floor_drops_fail_and_missing_gated_gauges_fail() {
        let base = snap(&[("bench.fault.pass_rate", 1.0)], &[]);
        assert!(compare("f", &base, &snap(&[("bench.fault.pass_rate", 1.0)], &[])).passed());
        assert!(!compare("f", &base, &snap(&[("bench.fault.pass_rate", 0.9)], &[])).passed());
        let r = compare("f", &base, &snap(&[], &[]));
        assert!(!r.passed());
        assert!(r.failures[0].contains("missing"), "{:?}", r.failures);
    }

    #[test]
    fn counters_and_ungated_gauges_are_informational() {
        let base = snap(
            &[("bench.opt.Load.naive.ops_per_sec", 5000.0)],
            &[("bench.candidates", 128)],
        );
        let fresh = snap(
            &[("bench.opt.Load.naive.ops_per_sec", 1.0)],
            &[("bench.candidates", 64)],
        );
        let r = compare("f", &base, &fresh);
        assert!(r.passed(), "{:?}", r.failures);
        assert!(r.infos.iter().any(|l| l.contains("bench.candidates")));
    }

    #[test]
    fn throughput_floor_gates_rates_and_speedups() {
        let base = snap(
            &[
                ("bench.explore.pclht.j1.states_per_sec", 10_000.0),
                ("bench.explore.pclht.j4_over_j1", 1.5),
            ],
            &[],
        );
        // At or above the floor passes.
        let ok = snap(
            &[
                ("bench.explore.pclht.j1.states_per_sec", 10_000.0),
                ("bench.explore.pclht.j4_over_j1", 2.0),
            ],
            &[],
        );
        assert!(compare("f", &base, &ok).passed());
        // A rate below the floor fails — the explore win cannot rot away.
        let slow = snap(
            &[
                ("bench.explore.pclht.j1.states_per_sec", 9_000.0),
                ("bench.explore.pclht.j4_over_j1", 1.5),
            ],
            &[],
        );
        let r = compare("f", &base, &slow);
        assert!(!r.passed());
        assert!(
            r.failures[0].contains("throughput floor"),
            "{:?}",
            r.failures
        );
        // A parallel regression (j4 no faster than j1) fails the same way.
        let serial = snap(
            &[
                ("bench.explore.pclht.j1.states_per_sec", 10_000.0),
                ("bench.explore.pclht.j4_over_j1", 0.9),
            ],
            &[],
        );
        assert!(!compare("f", &base, &serial).passed());
        // A missing throughput gauge is a hard failure, not silence.
        let r = compare("f", &base, &snap(&[], &[]));
        assert_eq!(r.failures.len(), 2, "{:?}", r.failures);
    }

    #[test]
    fn doctored_baseline_rejects_the_run_that_produced_it() {
        let fresh = snap(
            &[
                ("bench.wall_ms", 800.0),
                ("bench.fault.pass_rate", 1.0),
                ("bench.explore.pclht.j1.states_per_sec", 20_000.0),
            ],
            &[],
        );
        let mut base = rebase(&fresh);
        // Sanity: an honest rebase admits its own run.
        assert!(compare("f", &base, &fresh).passed());
        doctor(&mut base);
        let r = compare("f", &base, &fresh);
        // The wall, floor, and throughput metrics must all now fail.
        assert_eq!(r.failures.len(), 3, "{:?}", r.failures);
    }

    #[test]
    fn rebase_strips_noise_and_adds_headroom() {
        let mut fresh = snap(
            &[
                ("bench.wall_ms", 100.0),
                ("bench.fault.pass_rate", 1.0),
                ("bench.explore.pclht.j1.states_per_sec", 20_000.0),
            ],
            &[("bench.candidates", 128)],
        );
        fresh.histograms.insert("h".into(), pmobs::Hist::default());
        fresh.spans.push(pmobs::SpanRec {
            id: 0,
            parent: None,
            name: "bench.run".into(),
            start_us: 0,
            dur_us: 1,
        });
        let base = rebase(&fresh);
        assert!(base.spans.is_empty() && base.histograms.is_empty());
        assert_eq!(base.gauges["bench.wall_ms"], 160.0);
        assert_eq!(base.gauges["bench.fault.pass_rate"], 1.0);
        // Throughput floors get headroom by division: half the measured rate.
        assert_eq!(
            base.gauges["bench.explore.pclht.j1.states_per_sec"],
            10_000.0
        );
        assert_eq!(base.counters["bench.candidates"], 128);
    }
}
