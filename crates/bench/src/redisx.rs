//! The Redis case-study driver (Fig. 4, §6.3): builds the three server
//! variants and measures YCSB phases on the simulated clock.

use hippocrates::{Hippocrates, RepairOptions, RepairOutcome};
use pmapps::redis::{attach_workload, build, RedisBuild, RedisOp};
use pmir::Module;
use pmvm::{Vm, VmOptions};
use ycsb::{KvOp, OpKind};

/// The three Fig. 4 variants plus their repair outcomes.
pub struct RedisVariants {
    /// Redis-pm: the developer port (manual flushes).
    pub pm: Module,
    /// RedisH-full: flush-free Redis repaired with the full heuristic.
    pub hfull: Module,
    /// RedisH-intra: flush-free Redis repaired intraprocedurally only.
    pub hintra: Module,
    /// Repair outcome for RedisH-full (fix mix, hoist levels).
    pub hfull_outcome: RepairOutcome,
    /// Repair outcome for RedisH-intra.
    pub hintra_outcome: RepairOutcome,
}

/// The calibration workload used to drive pmemcheck during repair: it
/// covers every server code path (fresh set, in-place overwrite, get,
/// delete, scan, read-modify-write).
pub fn calibration_ops() -> Vec<RedisOp> {
    let mut ops = vec![];
    for k in 1..=8 {
        ops.push(RedisOp::set(k, 64));
    }
    ops.push(RedisOp::set(1, 64)); // overwrite in place
    ops.push(RedisOp::set(2, 64));
    ops.push(RedisOp::get(1));
    ops.push(RedisOp::get(99)); // miss
    ops.push(RedisOp::del(3));
    ops.push(RedisOp::del(99)); // miss
    ops.push(RedisOp::scan(1, 8));
    ops.push(RedisOp::rmw(4, 64));
    ops
}

/// Builds Redis-pm, RedisH-full, and RedisH-intra exactly as §6.3
/// prescribes: take the developer port, remove all flushes (keeping
/// fences), run the bug finder, and let Hippocrates regenerate the
/// persistence — with and without the hoisting heuristic.
///
/// # Panics
///
/// Panics if any build or repair fails (the corpus tests guarantee they
/// succeed).
pub fn build_redis_variants() -> RedisVariants {
    let pm = build(RedisBuild::PmPort).expect("pm port builds");

    let mut hfull = build(RedisBuild::FlushFree).expect("flush-free builds");
    let entry = attach_workload(&mut hfull, "calibration", &calibration_ops());
    let hfull_outcome = Hippocrates::new(RepairOptions::default())
        .repair_until_clean(&mut hfull, &entry)
        .expect("full repair succeeds");
    assert!(hfull_outcome.clean);

    let mut hintra = build(RedisBuild::FlushFree).expect("flush-free builds");
    let entry = attach_workload(&mut hintra, "calibration", &calibration_ops());
    let hintra_outcome = Hippocrates::new(RepairOptions::intraprocedural_only())
        .repair_until_clean(&mut hintra, &entry)
        .expect("intra repair succeeds");
    assert!(hintra_outcome.clean);

    RedisVariants {
        pm,
        hfull,
        hintra,
        hfull_outcome,
        hintra_outcome,
    }
}

/// Converts YCSB operations to the Redis op encoding with a fixed value
/// length.
pub fn to_redis_ops(ops: &[KvOp], value_len: i64) -> Vec<RedisOp> {
    ops.iter()
        .map(|op| match op.kind {
            OpKind::Insert | OpKind::Update => RedisOp::set(op.key as i64, value_len),
            OpKind::Read => RedisOp::get(op.key as i64),
            OpKind::Scan(n) => RedisOp::scan(op.key as i64, n as i64),
            OpKind::ReadModifyWrite => RedisOp::rmw(op.key as i64, value_len),
        })
        .collect()
}

/// One measured phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadResult {
    /// Simulated cycles of the load phase alone.
    pub load_cycles: u64,
    /// Simulated cycles of the run phase (total minus load).
    pub run_cycles: u64,
    /// The observable output of the combined run (for cross-variant
    /// equivalence checks).
    pub output: i64,
}

/// Measures `load` followed by `run` on `module`: two executions (load
/// alone, then load+run in one process) give exact per-phase cycles on the
/// deterministic simulator.
///
/// # Panics
///
/// Panics if execution traps.
pub fn measure_workload(
    module: &mut Module,
    tag: &str,
    load: &[RedisOp],
    run: &[RedisOp],
) -> WorkloadResult {
    let entry_load = attach_workload(module, &format!("{tag}_load"), load);
    let mut combined: Vec<RedisOp> = load.to_vec();
    combined.extend_from_slice(run);
    let entry_full = attach_workload(module, &format!("{tag}_all"), &combined);

    let opts = VmOptions::bench();
    let r_load = Vm::new(opts.clone())
        .run(module, &entry_load)
        .expect("load runs");
    let r_full = Vm::new(opts).run(module, &entry_full).expect("run runs");
    WorkloadResult {
        load_cycles: r_load.stats.cycles,
        run_cycles: r_full.stats.cycles.saturating_sub(r_load.stats.cycles),
        output: r_full.output.first().copied().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_build_and_behave_identically() {
        let mut v = build_redis_variants();
        let g = ycsb::Generator::new(50, 50, 64, 1);
        let load = to_redis_ops(&g.load_ops(), 64);
        let run = to_redis_ops(&g.run_ops(ycsb::Workload::A), 64);
        let pm = measure_workload(&mut v.pm, "t", &load, &run);
        let full = measure_workload(&mut v.hfull, "t", &load, &run);
        let intra = measure_workload(&mut v.hintra, "t", &load, &run);
        // Do no harm: identical observable outputs across variants.
        assert_eq!(pm.output, full.output);
        assert_eq!(pm.output, intra.output);
        // And the performance ordering of Fig. 4.
        assert!(
            intra.run_cycles > full.run_cycles,
            "intra {} vs full {}",
            intra.run_cycles,
            full.run_cycles
        );
    }

    #[test]
    fn hfull_uses_interprocedural_fixes() {
        let v = build_redis_variants();
        assert!(v.hfull_outcome.interprocedural_count() > 0);
        assert_eq!(v.hintra_outcome.interprocedural_count(), 0);
        assert!(
            v.hfull_outcome.fixes.len() >= 10,
            "fix count: {}",
            v.hfull_outcome.fixes.len()
        );
    }
}
