//! Small statistics and process-measurement helpers.

/// Mean and 95 % confidence half-width of a sample (normal approximation,
/// as the paper's error bars).
pub fn mean_ci95(samples: &[f64]) -> (f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0);
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    if samples.len() < 2 {
        return (mean, 0.0);
    }
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
    let ci = 1.96 * (var / n).sqrt();
    (mean, ci)
}

/// The process's peak resident set ("VmHWM") in KiB, from
/// `/proc/self/status`; `None` off-Linux.
pub fn vm_hwm_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest.trim().trim_end_matches(" kB").trim().parse().ok();
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_ci() {
        let (m, ci) = mean_ci95(&[10.0, 10.0, 10.0]);
        assert_eq!(m, 10.0);
        assert_eq!(ci, 0.0);
        let (m, ci) = mean_ci95(&[9.0, 11.0]);
        assert_eq!(m, 10.0);
        assert!(ci > 0.0);
        assert_eq!(mean_ci95(&[]), (0.0, 0.0));
        assert_eq!(mean_ci95(&[5.0]), (5.0, 0.0));
    }

    #[test]
    fn hwm_readable_on_linux() {
        if cfg!(target_os = "linux") {
            assert!(vm_hwm_kb().unwrap_or(0) > 0);
        }
    }
}
