//! `bench` — harnesses that regenerate every table and figure of the paper.
//!
//! Each binary prints one artifact:
//!
//! | Binary              | Paper artifact |
//! |---------------------|----------------|
//! | `fig1_bug_study`    | Fig. 1 — the 26-issue bug study |
//! | `fig3_accuracy`     | Fig. 3 — Hippocrates vs. developer fixes |
//! | `effectiveness`     | §6.1 — all 23 corpus bugs detected → fixed → re-verified clean |
//! | `fig4_redis_ycsb`   | Fig. 4 — YCSB throughput of Redis-pm / RedisH-intra / RedisH-full |
//! | `fig5_overhead`     | Fig. 5 — offline overhead (KLOC, time, memory) |
//! | `code_size`         | §6.4 — IR growth of the repaired Redis |
//! | `ablation_reuse`    | §6.4 — subprogram reuse vs. fresh clones |
//! | `ablation_cost_model` | DESIGN.md — fence/flush latency sensitivity of Fig. 4 |
//! | `explore_bench`     | `BENCH_explore.json` — exploration states/sec + coverage vs. crashpoint sampling |
//! | `fault_bench`       | `BENCH_fault.json` — fault-archetype pass rate + injection-layer overhead |
//! | `tx_bench`          | `BENCH_tx.json` — repair-transaction journal/replay/rollback cost |
//! | `opt_bench`         | `BENCH_opt.json` — repaired-then-optimized Redis beats naively-repaired on YCSB |
//! | `bench_gate`        | CI regression gate over the checked-in `crates/bench/baselines/` |
//!
//! Every binary emits its headline numbers as a `hippo.metrics.v1`
//! snapshot (`BENCH_*.json`), honors the common `--out <path>` flag
//! (default: the workspace root, wherever the binary is launched from),
//! and the gate compares the gated artifacts against their baselines —
//! see [`out`] and [`gate`].
//!
//! Criterion micro-benchmarks live under `benches/`.

pub mod gate;
pub mod out;
pub mod redisx;
pub mod stats;
pub mod table;

pub use out::{out_path, positional_args, workspace_root, write_metrics};
pub use redisx::{build_redis_variants, measure_workload, RedisVariants, WorkloadResult};
pub use stats::{mean_ci95, vm_hwm_kb};
pub use table::Table;

/// The simulated CPU frequency used to convert cycles to wall-clock
/// throughput: the paper's testbed is an Intel Xeon Gold 6230 @ 2.10 GHz.
pub const SIM_HZ: f64 = 2.1e9;

/// Converts `(ops, cycles)` to operations per simulated second.
pub fn throughput(ops: u64, cycles: u64) -> f64 {
    if cycles == 0 {
        return 0.0;
    }
    ops as f64 / (cycles as f64 / SIM_HZ)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_math() {
        // 1000 ops in 2.1e6 cycles = 1 ms -> 1M ops/s.
        let t = throughput(1000, 2_100_000);
        assert!((t - 1_000_000.0).abs() < 1.0);
        assert_eq!(throughput(10, 0), 0.0);
    }
}
