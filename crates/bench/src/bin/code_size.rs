//! Regenerates the **§6.4 code-bloat** measurement: how much IR the
//! persistent-subprogram transformation adds to the flush-free Redis
//! (paper: +105 lines of LLVM IR, +0.013 %, binary +0.05 %).

use bench::redisx::calibration_ops;
use bench::Table;
use hippocrates::{Hippocrates, RepairOptions};
use pmapps::redis::{attach_workload, build, RedisBuild};
use pmir::ModuleMetrics;
use pmobs::Obs;

fn main() {
    let obs = Obs::enabled();
    let run_span = obs.span("bench.code_size");
    println!("§6.4 — IR growth of the Hippocrates-repaired Redis\n");
    let mut m = build(RedisBuild::FlushFree).expect("flush-free builds");
    let entry = attach_workload(&mut m, "cal", &calibration_ops());
    let before = ModuleMetrics::measure(&m);
    let outcome = Hippocrates::new(RepairOptions {
        obs: obs.clone(),
        ..RepairOptions::default()
    })
    .repair_until_clean(&mut m, &entry)
    .expect("repair succeeds");
    assert!(outcome.clean);
    let after = ModuleMetrics::measure(&m);

    let mut t = Table::new(["Metric", "Before", "After", "Delta"]);
    t.row([
        "IR lines".to_string(),
        before.ir_lines.to_string(),
        after.ir_lines.to_string(),
        format!(
            "+{} (+{:.3}%)",
            after.ir_lines - before.ir_lines,
            before.ir_growth_percent(&after)
        ),
    ]);
    t.row([
        "Functions".to_string(),
        before.functions.to_string(),
        after.functions.to_string(),
        format!(
            "+{} (persistent clones)",
            after.functions - before.functions
        ),
    ]);
    t.row([
        "Flush instructions".to_string(),
        before.flushes.to_string(),
        after.flushes.to_string(),
        format!("+{}", after.flushes - before.flushes),
    ]);
    t.row([
        "Fence instructions".to_string(),
        before.fences.to_string(),
        after.fences.to_string(),
        format!("+{}", after.fences - before.fences),
    ]);
    println!("{t}");
    println!(
        "fixes: {} total, {} interprocedural; clones created: {}",
        outcome.fixes.len(),
        outcome.interprocedural_count(),
        outcome.clones_created
    );
    println!("paper: +105 IR lines (+0.013%) on full Redis; the mini-Redis is ~100x smaller, so the relative growth is correspondingly larger");
    obs.add("bench.code_size.ir_lines_before", before.ir_lines as u64);
    obs.add("bench.code_size.ir_lines_after", after.ir_lines as u64);
    obs.add(
        "bench.code_size.flushes_added",
        (after.flushes - before.flushes) as u64,
    );
    obs.add(
        "bench.code_size.fences_added",
        (after.fences - before.fences) as u64,
    );
    obs.add(
        "bench.code_size.clones_created",
        outcome.clones_created as u64,
    );
    obs.gauge(
        "bench.code_size.ir_growth_percent",
        before.ir_growth_percent(&after),
    );
    drop(run_span);
    bench::write_metrics("BENCH_code_size.json", &obs);
}
