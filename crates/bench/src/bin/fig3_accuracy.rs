//! Regenerates **Fig. 3**: the qualitative comparison between Hippocrates's
//! fixes and the PMDK developers' fixes for the 11 reproduced issues
//! (§6.2).
//!
//! For each issue the harness (1) builds the buggy variant, (2) repairs it
//! with Hippocrates, (3) classifies the fix shape, (4) confirms both the
//! Hippocrates-fixed and developer-fixed builds are pmemcheck-clean and
//! behave identically, and (5) compares against the recorded developer fix.

use bench::Table;
use bugdb::{corpus, ExpectedFix, Target};
use hippocrates::{FixKind, Hippocrates, RepairOptions};
use pmcheck::run_and_check;
use pmvm::{Vm, VmOptions};

fn classify(fixes: &[hippocrates::AppliedFix]) -> &'static str {
    if fixes.iter().any(|f| f.kind.is_interprocedural()) {
        "Interprocedural flush+fence"
    } else if fixes.iter().all(|f| matches!(f.kind, FixKind::IntraFlush)) {
        "Intraprocedural flush (clwb)"
    } else {
        "Intraprocedural flush/fence"
    }
}

fn main() {
    let obs = pmobs::Obs::enabled();
    let run_span = obs.span("bench.fig3");
    println!("Fig. 3 — Hippocrates fixes vs. PMDK developer fixes (11 reproduced issues)\n");
    let mut t = Table::new([
        "Issue",
        "Hippocrates fix",
        "Developer fix",
        "Qualitative comparison",
        "Matches paper",
    ]);
    let mut matches = 0;
    let mut total = 0;
    for bug in corpus().iter().filter(|b| b.target == Target::Pmdk) {
        total += 1;
        let _issue_span = obs.span("bench.fig3.issue");
        let entry = minipmdk::entry_for(bug.id);
        let mut m = minipmdk::build_buggy(bug.id).expect("corpus builds");
        let outcome = Hippocrates::new(RepairOptions::default())
            .repair_until_clean(&mut m, &entry)
            .expect("repair succeeds");
        assert!(outcome.clean, "{}: not clean after repair", bug.id);

        // Cross-validate: the developer fix is also clean, and both builds
        // produce the same observable output.
        let dev = minipmdk::build_developer_fixed(bug.id).expect("dev build");
        let dev_checked = run_and_check(&dev, &entry, VmOptions::default()).unwrap();
        assert!(dev_checked.report.is_clean(), "{}: dev fix unclean", bug.id);
        let out_h = Vm::new(VmOptions::default())
            .run(&m, &entry)
            .unwrap()
            .output;
        let out_d = Vm::new(VmOptions::default())
            .run(&dev, &entry)
            .unwrap()
            .output;
        assert_eq!(out_h, out_d, "{}: fixed builds diverge", bug.id);

        let got = classify(&outcome.fixes);
        let expected = match bug.expected_fix.expect("pmdk bug has expectation") {
            ExpectedFix::IntraproceduralFlush => "Intraprocedural flush (clwb)",
            ExpectedFix::InterproceduralFlushFence => "Interprocedural flush+fence",
        };
        let ok = got == expected;
        if ok {
            matches += 1;
        }
        t.row([
            bug.id,
            got,
            bug.developer_fix.unwrap_or("-"),
            bug.comparison.unwrap_or("-"),
            if ok { "yes" } else { "NO" },
        ]);
    }
    println!("{t}");
    println!(
        "{matches}/{total} fix shapes match the paper's Fig. 3 \
         (8 functionally identical interprocedural, 3 equivalent intraprocedural)"
    );
    assert_eq!(matches, total, "fix-shape mismatch against Fig. 3");
    obs.add("bench.fig3.issues", total as u64);
    obs.add("bench.fig3.matches", matches as u64);
    obs.gauge("bench.fig3.match_rate", matches as f64 / total as f64);
    drop(run_span);
    bench::write_metrics("BENCH_fig3_accuracy.json", &obs);
}
