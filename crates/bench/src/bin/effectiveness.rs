//! Regenerates **§6.1 (effectiveness)**: all 23 corpus bugs are found by
//! the bug finder, repaired by Hippocrates, and re-verified clean; and the
//! Full-AA and Trace-AA heuristics produce identical fixes and identical
//! end binaries.

use bench::Table;
use bugdb::{corpus, Target};
use hippocrates::{Hippocrates, MarkingMode, RepairOptions};
use pmir::Module;

fn build(id: &str, target: Target) -> (Module, String) {
    match target {
        Target::Pmdk => (
            minipmdk::build_buggy(id).expect("pmdk corpus builds"),
            minipmdk::entry_for(id),
        ),
        Target::Pclht => (
            pmapps::pclht::build_buggy(id).expect("pclht builds"),
            pmapps::pclht::ENTRY.to_string(),
        ),
        Target::Memcached => (
            pmapps::memcached::build_buggy(id).expect("memcached builds"),
            pmapps::memcached::ENTRY.to_string(),
        ),
    }
}

fn main() {
    let obs = pmobs::Obs::enabled();
    let run_span = obs.span("bench.effectiveness");
    let t_all = std::time::Instant::now();
    println!("§6.1 — Effectiveness: detect -> repair -> re-verify for all 23 corpus bugs\n");
    let mut t = Table::new([
        "Bug",
        "Target",
        "Reported",
        "Fixes",
        "Interproc",
        "Clean after repair",
        "Full-AA == Trace-AA",
    ]);
    let mut all_clean = true;
    let mut all_identical = true;
    for bug in corpus() {
        let _bug_span = obs.span("bench.effectiveness.bug");
        let (mut m, entry) = build(bug.id, bug.target);
        let pre = pmcheck::run_and_check(&m, &entry, pmvm::VmOptions::default())
            .expect("buggy build runs");
        let reported = pre.report.deduped_bugs().len();
        assert!(reported > 0, "{}: not detected", bug.id);

        let t_bug = std::time::Instant::now();
        let outcome = Hippocrates::new(RepairOptions::default())
            .repair_until_clean(&mut m, &entry)
            .expect("repair succeeds");
        obs.observe(
            "bench.effectiveness.repair_ms",
            t_bug.elapsed().as_secs_f64() * 1e3,
        );
        obs.add("bench.effectiveness.bugs", 1);
        obs.add("bench.effectiveness.reported_total", reported as u64);
        obs.add(
            "bench.effectiveness.fixes_total",
            outcome.fixes.len() as u64,
        );
        obs.add(
            "bench.effectiveness.interproc_total",
            outcome.interprocedural_count() as u64,
        );
        all_clean &= outcome.clean;

        // Trace-AA comparison on a fresh copy.
        let (mut m2, _) = build(bug.id, bug.target);
        let outcome2 = Hippocrates::new(RepairOptions {
            marking: MarkingMode::TraceAa,
            ..RepairOptions::default()
        })
        .repair_until_clean(&mut m2, &entry)
        .expect("trace-AA repair succeeds");
        let identical = pmir::display::print_module(&m) == pmir::display::print_module(&m2)
            && outcome.fixes.len() == outcome2.fixes.len();
        all_identical &= identical;

        t.row([
            bug.id.to_string(),
            bug.target.label().to_string(),
            reported.to_string(),
            outcome.fixes.len().to_string(),
            outcome.interprocedural_count().to_string(),
            if outcome.clean {
                "yes".into()
            } else {
                "NO".to_string()
            },
            if identical {
                "yes".into()
            } else {
                "NO".to_string()
            },
        ]);
    }
    println!("{t}");
    println!(
        "paper: Hippocrates automatically repairs all 23 bugs; both heuristics \
         produce identical end binaries"
    );
    assert!(all_clean, "some repair left bugs behind");
    assert!(all_identical, "Full-AA and Trace-AA diverged");
    println!("reproduced: all 23 repaired and re-verified clean; heuristics identical");
    obs.gauge(
        "bench.effectiveness.pass_rate",
        if all_clean && all_identical { 1.0 } else { 0.0 },
    );
    obs.gauge("bench.wall_ms", t_all.elapsed().as_secs_f64() * 1e3);
    drop(run_span);
    bench::write_metrics("BENCH_effectiveness.json", &obs);
}
