//! Repair-transaction benchmark: the cost of the snapshot/commit/rollback
//! machinery and the write-ahead journal, emitted as `BENCH_tx.json` — a
//! `hippo.metrics.v1` snapshot the CI bench-regression gate (`bench_gate`)
//! compares against its checked-in baseline.
//!
//! Four walls and two floors:
//!
//! * `bench.tx.plain_ms` — repair without a journal: the baseline cost of
//!   the transactional rounds alone (snapshot + commit-criterion check).
//! * `bench.tx.journaled_ms` — the same repair with write-ahead journaling
//!   (each committed round serialized + fsynced). The journal should cost
//!   little on top of the plain run.
//! * `bench.tx.resume_ms` — resuming the finished journal on a fresh copy
//!   of the input: pure replay plus one clean verification pass.
//! * `bench.tx.rollback_ms` — repair with every commit vetoed
//!   (`FaultSite::TxCommit`/`Always`): rounds apply, fail the commit, roll
//!   back byte-identically, and quarantine until the loop gives up.
//! * `bench.tx.pass_rate` (floor) — fraction of iterations where the
//!   journaled module is byte-identical to the plain one, the resumed
//!   module is byte-identical to both, the replayed-round count matches
//!   the committed count, and the vetoed run touched nothing.
//! * `bench.tx.healed_clean` (floor) — fraction of repairs converging
//!   clean.

use hippocrates::{Hippocrates, RepairError, RepairOptions};
use pmfault::{FaultKind, FaultPlan, FaultSite, Trigger};
use pmobs::Obs;
use std::time::Instant;

const ITERS: u32 = 6;

/// A publish-pattern workload dense in durability bugs: four records, each
/// a data line and a flag line, none of them persisted.
const WORKLOAD_SRC: &str = r#"
    fn main() {
        var p: ptr = pmem_map(0, 8192);
        var k: int = 0;
        while (k < 4) {
            store8(p + k * 128, 0, k * 3 + 1);
            store8(p + k * 128, 64, 1);
            k = k + 1;
        }
        print(load8(p, 0));
    }
"#;

fn module() -> pmir::Module {
    pmlang::compile_one("tx_bench.pmc", WORKLOAD_SRC).expect("workload compiles")
}

fn main() {
    let obs = Obs::enabled();
    let t_all = Instant::now();
    println!("Repair-transaction benchmark — journal, replay, and rollback cost\n");

    let dir = std::env::temp_dir().join(format!("hippo-tx-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");

    let veto_plan = FaultPlan::single(FaultSite::TxCommit, Trigger::Always, FaultKind::CommitVeto);
    let (mut plain_ms, mut journaled_ms, mut resume_ms, mut rollback_ms) = (0.0, 0.0, 0.0, 0.0);
    let (mut passed, mut clean_runs) = (0u64, 0u64);
    let (mut committed, mut replayed, mut quarantined) = (0u64, 0u64, 0u64);

    for iter in 0..ITERS {
        let journal = dir.join(format!("i{iter}.journal"));
        std::fs::remove_file(&journal).ok();
        let mut ok = true;

        // Plain: transactional rounds without a journal.
        let mut plain_m = module();
        let t0 = Instant::now();
        let plain = Hippocrates::new(RepairOptions {
            obs: obs.clone(),
            ..RepairOptions::default()
        })
        .repair_until_clean(&mut plain_m, "main")
        .expect("plain repair converges");
        plain_ms += t0.elapsed().as_secs_f64() * 1e3;
        let plain_text = pmir::display::print_module(&plain_m);
        clean_runs += u64::from(plain.clean);

        // Journaled: every committed round is serialized and fsynced.
        let mut j_m = module();
        let t0 = Instant::now();
        let journaled = Hippocrates::new(RepairOptions {
            journal_path: Some(journal.clone()),
            obs: obs.clone(),
            ..RepairOptions::default()
        })
        .repair_until_clean(&mut j_m, "main")
        .expect("journaled repair converges");
        journaled_ms += t0.elapsed().as_secs_f64() * 1e3;
        committed += u64::from(journaled.committed_rounds);
        ok &= pmir::display::print_module(&j_m) == plain_text;
        ok &= journaled.committed_rounds >= 1;

        // Resume: replay the finished journal on a fresh copy of the input.
        let mut r_m = module();
        let t0 = Instant::now();
        let resumed = Hippocrates::new(RepairOptions {
            journal_path: Some(journal.clone()),
            resume: true,
            obs: obs.clone(),
            ..RepairOptions::default()
        })
        .repair_until_clean(&mut r_m, "main")
        .expect("resume converges");
        resume_ms += t0.elapsed().as_secs_f64() * 1e3;
        replayed += u64::from(resumed.replayed_rounds);
        ok &= pmir::display::print_module(&r_m) == plain_text;
        ok &= resumed.replayed_rounds == journaled.committed_rounds;

        // Rollback: every commit vetoed — rounds roll back and quarantine.
        let mut v_m = module();
        let before = pmir::display::print_module(&v_m);
        let t0 = Instant::now();
        let vetoed = Hippocrates::new(RepairOptions {
            fault: Some(veto_plan.clone()),
            source_retries: 0,
            obs: obs.clone(),
            ..RepairOptions::default()
        })
        .repair_until_clean(&mut v_m, "main");
        rollback_ms += t0.elapsed().as_secs_f64() * 1e3;
        match vetoed {
            Err(ref e @ (RepairError::NoProgress { .. } | RepairError::IterationBudget { .. })) => {
                let partial = e.partial_outcome().expect("veto carries a partial outcome");
                quarantined += partial.quarantined.len() as u64;
                ok &= partial.committed_rounds == 0;
                ok &= !partial.quarantined.is_empty();
            }
            other => {
                println!("  iter {iter}: vetoed run ended unexpectedly: {other:?}");
                ok = false;
            }
        }
        ok &= pmir::display::print_module(&v_m) == before;

        passed += u64::from(ok);
        std::fs::remove_file(&journal).ok();
    }
    std::fs::remove_dir_all(&dir).ok();

    let per = |total: f64| total / f64::from(ITERS);
    println!(
        "  plain     {:>8.2} ms/repair\n  journaled {:>8.2} ms/repair\n  \
         resume    {:>8.2} ms/replay\n  rollback  {:>8.2} ms/vetoed-run",
        per(plain_ms),
        per(journaled_ms),
        per(resume_ms),
        per(rollback_ms)
    );
    let pass_rate = passed as f64 / f64::from(ITERS);
    let healed_clean = clean_runs as f64 / f64::from(ITERS);
    println!(
        "  pass rate {pass_rate:.2}, healed clean {healed_clean:.2}, \
         {committed} committed / {replayed} replayed / {quarantined} quarantined\n"
    );

    obs.gauge("bench.tx.plain_ms", plain_ms);
    obs.gauge("bench.tx.journaled_ms", journaled_ms);
    obs.gauge("bench.tx.resume_ms", resume_ms);
    obs.gauge("bench.tx.rollback_ms", rollback_ms);
    obs.gauge("bench.tx.pass_rate", pass_rate);
    obs.gauge("bench.tx.healed_clean", healed_clean);
    obs.add("bench.tx.committed_rounds", committed);
    obs.add("bench.tx.replayed_rounds", replayed);
    obs.add("bench.tx.quarantined_total", quarantined);
    obs.gauge("bench.wall_ms", t_all.elapsed().as_secs_f64() * 1e3);
    assert!(
        (pass_rate - 1.0).abs() < f64::EPSILON,
        "every transaction iteration must uphold byte-identity"
    );
    bench::write_metrics("BENCH_tx.json", &obs);
}
