//! Regenerates **Fig. 5** (§6.4): Hippocrates's offline overhead — target
//! size (kilo-lines of IR, the KLOC analog), repair wall-clock time, and
//! peak process memory — for the four evaluation targets with *all* of
//! their bugs seeded at once.

use bench::{vm_hwm_kb, Table};
use hippocrates::{Hippocrates, RepairOptions};
use pmapps::redis::{attach_workload, build, RedisBuild};
use pmir::ModuleMetrics;
use std::time::Instant;

fn main() {
    let obs = pmobs::Obs::enabled();
    let run_span = obs.span("bench.fig5");
    println!("Fig. 5 — Offline overhead of Hippocrates (all bugs per target at once)\n");
    let mut t = Table::new([
        "",
        "PMDK (unit tests)",
        "P-CLHT (RECIPE)",
        "memcached-pm",
        "Redis-pmem",
    ]);

    let mut kloc = vec![];
    let mut time = vec![];
    let mut mem = vec![];

    // PMDK: every issue seeded, checked through the run-everything entry.
    let mut pmdk = minipmdk::library_compiler()
        .source("unit_tests.pmc", minipmdk::UNIT_TESTS_SRC)
        .elide_tags(minipmdk::PMDK_BUG_IDS)
        .compile()
        .expect("pmdk all-bugs build");
    run_target(
        &obs,
        "pmdk",
        &mut pmdk,
        "pmdk_check_all",
        &mut kloc,
        &mut time,
        &mut mem,
    );

    // P-CLHT: both bugs.
    let mut pclht = minipmdk::library_compiler()
        .source("pclht.pmc", pmapps::pclht::SRC)
        .elide_tags(pmapps::pclht::BUG_IDS)
        .compile()
        .expect("pclht all-bugs build");
    run_target(
        &obs,
        "pclht",
        &mut pclht,
        pmapps::pclht::ENTRY,
        &mut kloc,
        &mut time,
        &mut mem,
    );

    // memcached: all ten.
    let mut mc = minipmdk::library_compiler()
        .source("memcached.pmc", pmapps::memcached::SRC)
        .elide_tags(pmapps::memcached::BUG_IDS)
        .compile()
        .expect("memcached all-bugs build");
    run_target(
        &obs,
        "memcached",
        &mut mc,
        pmapps::memcached::ENTRY,
        &mut kloc,
        &mut time,
        &mut mem,
    );

    // Redis: the flush-free build under the calibration workload.
    let mut redis = build(RedisBuild::FlushFree).expect("flush-free builds");
    let entry = attach_workload(&mut redis, "cal", &bench::redisx::calibration_ops());
    run_target(
        &obs, "redis", &mut redis, &entry, &mut kloc, &mut time, &mut mem,
    );

    t.row(
        std::iter::once("IR KLOC".to_string())
            .chain(kloc.iter().cloned())
            .collect::<Vec<_>>(),
    );
    t.row(
        std::iter::once("Time".to_string())
            .chain(time.iter().cloned())
            .collect::<Vec<_>>(),
    );
    t.row(
        std::iter::once("Memory (peak RSS)".to_string())
            .chain(mem.iter().cloned())
            .collect::<Vec<_>>(),
    );
    println!("{t}");
    println!(
        "paper: at most ~5 minutes and <1 GB for the largest target — low \
         enough to sit in a developer workflow"
    );
    drop(run_span);
    bench::write_metrics("BENCH_fig5_overhead.json", &obs);
}

fn run_target(
    obs: &pmobs::Obs,
    name: &str,
    m: &mut pmir::Module,
    entry: &str,
    kloc: &mut Vec<String>,
    time: &mut Vec<String>,
    mem: &mut Vec<String>,
) {
    let _span = obs.span(&format!("bench.fig5.{name}"));
    let lines = ModuleMetrics::measure(m).ir_lines;
    kloc.push(format!("{:.1}", lines as f64 / 1000.0));
    let before_mem = vm_hwm_kb().unwrap_or(0);
    let start = Instant::now();
    let outcome = Hippocrates::new(RepairOptions::default())
        .repair_until_clean(m, entry)
        .expect("repair succeeds");
    let elapsed = start.elapsed();
    assert!(outcome.clean);
    time.push(format!("{:.2?}", elapsed));
    let after_mem = vm_hwm_kb().unwrap_or(0);
    mem.push(format!("{} MB", after_mem.max(before_mem) / 1024));
    obs.gauge(&format!("bench.fig5.{name}.kloc"), lines as f64 / 1000.0);
    obs.gauge(
        &format!("bench.fig5.{name}.repair_ms"),
        elapsed.as_secs_f64() * 1e3,
    );
    obs.gauge(
        &format!("bench.fig5.{name}.peak_rss_mb"),
        (after_mem.max(before_mem) / 1024) as f64,
    );
}
