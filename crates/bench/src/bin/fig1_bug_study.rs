//! Regenerates **Fig. 1**: the 26 PMDK bugs of the study (§3.1), with the
//! bottom "Average" row recomputed from the group data.

use bench::Table;
use bugdb::{study_rows, study_summary};
use pmobs::Obs;

fn main() {
    let obs = Obs::enabled();
    let run_span = obs.span("bench.fig1");
    println!("Fig. 1 — The 26 PMDK bugs found with pmemcheck and fixed by developers\n");
    let mut t = Table::new([
        "Issue #s",
        "Avg commits",
        "Avg days open->close",
        "Max days",
        "Kind",
    ]);
    for g in study_rows() {
        let issues = g
            .issues
            .iter()
            .map(u32::to_string)
            .collect::<Vec<_>>()
            .join(", ");
        let dash = |v: Option<u32>| v.map(|x| x.to_string()).unwrap_or_else(|| "-".into());
        t.row([
            issues,
            dash(g.avg_commits),
            dash(g.avg_days),
            dash(g.max_days),
            g.kind.to_string(),
        ]);
    }
    let s = study_summary();
    t.row([
        format!("Average (n={})", s.total_issues),
        s.avg_commits.to_string(),
        s.avg_days.to_string(),
        s.max_days.to_string(),
        String::new(),
    ]);
    println!("{t}");
    println!(
        "paper: average 13 commits, 28 days, max 66 — reproduced: {} commits, {} days, max {}",
        s.avg_commits, s.avg_days, s.max_days
    );
    obs.add("bench.fig1.total_issues", s.total_issues as u64);
    obs.gauge("bench.fig1.avg_commits", f64::from(s.avg_commits));
    obs.gauge("bench.fig1.avg_days", f64::from(s.avg_days));
    obs.gauge("bench.fig1.max_days", f64::from(s.max_days));
    drop(run_span);
    bench::write_metrics("BENCH_fig1_bug_study.json", &obs);
}
