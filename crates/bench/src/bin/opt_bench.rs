//! The "inverse Hippocrates" benchmark: proves that repairing the
//! flush-free Redis and then running the `pmredund` optimizer strictly
//! beats the naively-repaired server on every YCSB phase, and locks the
//! win in as `BENCH_opt.json` — a `hippo.metrics.v1` snapshot the CI
//! bench-regression gate (`bench_gate`) compares against its checked-in
//! baseline.
//!
//! The mechanism: the repair engine only ever *inserts* flushes and
//! fences, so the healed server carries barriers the developer's original
//! fences already cover — back-to-back fences and re-flushes of durable
//! lines. The optimizer removes exactly the ones it can prove (and
//! dynamically re-verify) harmless.
//!
//! Gated gauges (all deterministic on the simulated clock, so the floors
//! are machine-independent):
//!
//! * `bench.opt.{workload}.speedup_floor` — end-to-end session speedup of
//!   repaired-then-optimized over naively-repaired, per YCSB phase
//!   (Load + A–F). Must never drop below baseline; the bench itself
//!   asserts it stays strictly above 1.0.
//! * `bench.opt.healed_clean` — 1.0 iff the repair converged clean and
//!   the optimized module still verifies clean on the calibration
//!   workload.
//!
//! Usage: `opt_bench [records] [ops]` (defaults 300 300 — the gate
//! baseline is generated with the defaults; pass larger numbers for a
//! full-scale run, but don't gate those).

use bench::redisx::{calibration_ops, to_redis_ops};
use bench::{build_redis_variants, measure_workload, throughput, Table};
use pmapps::redis::attach_workload;
use ycsb::{Generator, Workload};

const VALUE_LEN: i64 = 256;

/// Rounds a floor gauge down to 3 decimals: the JSON round-trip through
/// the baseline file must never push a deterministic value above the
/// fresh run by a rounding hair.
fn quantize_floor(x: f64) -> f64 {
    (x * 1000.0).floor() / 1000.0
}

fn main() {
    let obs = pmobs::Obs::enabled();
    let run_span = obs.span("bench.opt");
    let t_all = std::time::Instant::now();
    let args: Vec<u64> = bench::positional_args()
        .into_iter()
        .map(|a| a.parse().expect("numeric argument"))
        .collect();
    let records = args.first().copied().unwrap_or(300);
    let ops = args.get(1).copied().unwrap_or(300);
    obs.add("bench.opt.records", records);
    obs.add("bench.opt.ops", ops);

    println!(
        "Inverse-Hippocrates benchmark — repaired vs. repaired-then-optimized Redis \
         ({records} records, {ops} ops, {VALUE_LEN}-byte values)\n"
    );
    eprintln!("building variants and repairing the flush-free Redis…");
    let v = build_redis_variants();
    assert!(v.hfull_outcome.clean, "repair must converge clean");
    let naive = v.hfull;

    // Repaired-then-optimized: same healed module, then the pmredund pass
    // verified against the calibration workload (the same harness the
    // repair itself was verified against).
    let mut opt = naive.clone();
    let cal = attach_workload(&mut opt, "opt_cal", &calibration_ops());
    let opts = pmredund::OptimizeOptions {
        entry: cal.clone(),
        obs: obs.clone(),
        ..pmredund::OptimizeOptions::default()
    };
    eprintln!("optimizing the repaired module…");
    let out = pmredund::optimize_module(&mut opt, &opts).expect("optimizer runs");
    println!("optimizer: {out}");
    assert!(
        out.flushes_removed() + out.fences_sunk() > 0,
        "the healed Redis must carry at least one provably redundant barrier"
    );
    for a in &out.applied {
        assert!(
            !a.finding.witness.claim.is_empty(),
            "applied optimization without a witness: {}",
            a.finding
        );
    }
    obs.add("bench.opt.flushes_removed", out.flushes_removed() as u64);
    obs.add("bench.opt.fences_sunk", out.fences_sunk() as u64);
    obs.add("bench.opt.quarantined", out.quarantined.len() as u64);
    obs.gauge("bench.opt.est_cycles_saved", out.est_cycles_saved as f64);

    // The optimized module must still verify clean on the calibration
    // workload (the optimizer guarantees this round by round; re-prove it
    // end to end here).
    let checked = pmcheck::run_and_check(&opt, &cal, pmvm::VmOptions::default())
        .expect("optimized module runs");
    let healed_clean: f64 = if checked.report.is_clean() { 1.0 } else { 0.0 };

    let mut naive = naive;
    let labels: Vec<String> = std::iter::once("Load".to_string())
        .chain(Workload::ALL.iter().map(|w| w.label().to_string()))
        .collect();
    let g = Generator::new(records, ops, VALUE_LEN as u64, 42);
    let load = to_redis_ops(&g.load_ops(), VALUE_LEN);

    let mut t = Table::new([
        "Workload",
        "repaired (ops/s)",
        "repaired+opt (ops/s)",
        "speedup",
    ]);
    let mut min_speedup = f64::INFINITY;
    for (wi, label) in labels.iter().enumerate() {
        let run = if wi == 0 {
            vec![]
        } else {
            to_redis_ops(&g.run_ops(Workload::ALL[wi - 1]), VALUE_LEN)
        };
        let rn = measure_workload(&mut naive, &format!("n_{label}"), &load, &run);
        let ro = measure_workload(&mut opt, &format!("o_{label}"), &load, &run);
        assert_eq!(
            rn.output, ro.output,
            "optimized output diverged on {label} (do-no-harm violation)"
        );
        // End-to-end session cost: load alone for the Load phase, load+run
        // for the YCSB workloads (so even the read-only workload C pays —
        // and recoups — the persistence cost of populating the store).
        let (count, cn, co) = if wi == 0 {
            (records, rn.load_cycles, ro.load_cycles)
        } else {
            (
                records + ops,
                rn.load_cycles + rn.run_cycles,
                ro.load_cycles + ro.run_cycles,
            )
        };
        assert!(
            co < cn,
            "{label}: optimized module must be strictly cheaper ({co} vs {cn} cycles)"
        );
        let (tn, to) = (throughput(count, cn), throughput(count, co));
        let speedup = cn as f64 / co as f64;
        min_speedup = min_speedup.min(speedup);
        obs.gauge(&format!("bench.opt.{label}.naive.ops_per_sec"), tn);
        obs.gauge(&format!("bench.opt.{label}.opt.ops_per_sec"), to);
        obs.gauge(
            &format!("bench.opt.{label}.speedup_floor"),
            quantize_floor(speedup),
        );
        t.row([
            label.clone(),
            format!("{tn:.0}"),
            format!("{to:.0}"),
            format!("{speedup:.3}x"),
        ]);
        eprint!(".");
    }
    eprintln!();
    println!("{t}");
    println!(
        "repaired-then-optimized beats naively-repaired on every phase \
         (min speedup {min_speedup:.3}x), output byte-identical throughout"
    );

    assert!(
        (healed_clean - 1.0).abs() < f64::EPSILON,
        "the optimized module must verify clean on the calibration workload"
    );
    obs.gauge("bench.opt.healed_clean", healed_clean);
    obs.gauge("bench.wall_ms", t_all.elapsed().as_secs_f64() * 1e3);
    drop(run_span);
    bench::write_metrics("BENCH_opt.json", &obs);
}
