//! Fault-injection campaign benchmark: pass rate of the hardened repair
//! pipeline across every fault archetype, and the cost of the injection
//! layer on the exploration hot path, emitted as `BENCH_fault.json` — a
//! `hippo.metrics.v1` snapshot the CI bench-regression gate (`bench_gate`)
//! compares against its checked-in baseline.
//!
//! Two artifacts:
//!
//! 1. **Campaign** — one repair run per fault archetype (`FaultPlan::
//!    from_seed(0..N_ARCHETYPES)`). A seed passes when the run neither
//!    panics nor hangs, every injected fault leaves a structured
//!    diagnostic or degradation, and a clean repair reproduces the
//!    fault-free repair's output. The pass rate (`bench.fault.pass_rate`,
//!    a gated no-drop metric) must be 1.0.
//! 2. **Overhead** — states/sec exploring the healed ordering demo and
//!    the correct P-CLHT with the fault layer absent (`fault: None`)
//!    and with a plan armed whose trigger never fires. Both rows should
//!    sit within noise of each other and of `BENCH_explore.json`: a
//!    disarmed or idle injector is one branch on the hot path.

use hippocrates::{BugSource, Hippocrates, RepairOptions};
use pmexplore::{run_and_explore, ExploreOptions};
use pmfault::{FaultKind, FaultPlan, FaultSite, Trigger, N_ARCHETYPES};
use pmobs::Obs;
use pmvm::{Vm, VmOptions};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

const DEMO_SRC: &str = include_str!("../../../../examples/ordering_demo.pmc");
const BUDGET: usize = 128;
const SEED: u64 = 0;

/// The same workload family `hippoctl faultcampaign` uses: enough PM
/// stores, flushes, and loads that every per-archetype trigger offset
/// has a site to land on, one genuine durability bug for the repair to
/// fix, and a loop long enough that tightened fuel always bites.
const WORKLOAD_SRC: &str = r#"
    fn main() {
        var p: ptr = pmem_map(3, 4096);
        store8(p, 0, 1);
        clwb(p);
        sfence();
        store8(p, 64, 2);
        clwb(p + 64);
        sfence();
        store8(p, 128, 3);
        clwb(p + 128);
        store8(p, 192, 4);
        var i: int = 0;
        while (i < 16) { i = i + 1; }
        print(load8(p, 0) + load8(p, 64));
        print(load8(p, 128) + load8(p, 192));
    }
    fn recover() -> int {
        var p: ptr = pmem_map(3, 4096);
        if (load8(p, 0) > 9) { return 1; }
        return 0;
    }
"#;

struct CampaignRow {
    plan: String,
    passed: bool,
    fixes: usize,
    degradations: usize,
    diagnostics: usize,
    millis: f64,
    note: String,
}

/// One campaign seed under the same contract as `hippoctl faultcampaign`:
/// never panic, always leave a structured trail, never change the repaired
/// program's output. The faulted run records into `obs`, so the artifact
/// aggregates `fault.fired.*` counters across the whole campaign.
fn campaign_row(obs: &Obs, seed: u64) -> CampaignRow {
    let plan = FaultPlan::from_seed(seed);
    let describe = plan.describe();
    // Transport and shard faults fire inside the daemon (connection
    // boundary / campaign scheduler), not inside the repair pipeline: run
    // those seeds through the shared in-process daemon campaigns (same
    // contract as `hippoctl faultcampaign`).
    if plan.targets_net() || plan.targets_shard() {
        let t0 = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if plan.targets_net() {
                hippod::netfault::campaign_seed(seed, "campaign.pmc", WORKLOAD_SRC, obs)
            } else {
                hippod::chaos::campaign_seed(seed, "campaign.pmc", WORKLOAD_SRC, obs)
            }
        }));
        let millis = t0.elapsed().as_secs_f64() * 1e3;
        let (passed, note) = match outcome {
            Ok(Ok(line)) => (true, line),
            Ok(Err(why)) => (false, why),
            Err(_) => (false, "daemon campaign panicked".to_string()),
        };
        return CampaignRow {
            plan: describe,
            passed,
            fixes: 0,
            degradations: 0,
            diagnostics: 0,
            millis,
            note,
        };
    }
    let bug_source =
        if plan.targets(FaultSite::ExploreWorker) || plan.targets(FaultSite::ExploreOracle) {
            BugSource::Exploration
        } else {
            BugSource::Both
        };

    let row = |passed: bool, fixes, degradations, diagnostics, millis, note: String| CampaignRow {
        plan: describe.clone(),
        passed,
        fixes,
        degradations,
        diagnostics,
        millis,
        note,
    };

    let module = || pmlang::compile_one("campaign.pmc", WORKLOAD_SRC).expect("workload compiles");
    let baseline = {
        let mut m = module();
        Hippocrates::new(RepairOptions {
            bug_source: BugSource::Both,
            ..RepairOptions::default()
        })
        .repair_until_clean(&mut m, "main")
        .expect("fault-free repair converges");
        Vm::new(VmOptions::default())
            .run(&m, "main")
            .expect("fault-free healed run")
            .output
    };

    let t0 = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut m = module();
        let r = Hippocrates::new(RepairOptions {
            bug_source,
            fault: Some(plan.clone()),
            watchdog_ms: Some(50),
            source_retries: 1,
            explore_budget: BUDGET,
            explore_seed: seed,
            explore_jobs: 2,
            obs: obs.clone(),
            ..RepairOptions::default()
        })
        .repair_until_clean(&mut m, "main");
        (r, m)
    }));
    let millis = t0.elapsed().as_secs_f64() * 1e3;

    let (result, healed) = match outcome {
        Ok(pair) => pair,
        Err(_) => {
            return row(false, 0, 0, 0, millis, "pipeline panicked".into());
        }
    };
    let out = match result {
        Ok(out) => out,
        Err(e) => {
            return row(
                false,
                0,
                0,
                0,
                millis,
                format!("no degraded path survived: {e}"),
            );
        }
    };
    if !out.clean {
        return row(
            false,
            out.fixes.len(),
            out.degraded.len(),
            out.diagnostics.len(),
            millis,
            "repair did not converge".into(),
        );
    }
    if out.degraded.is_empty() && out.diagnostics.is_empty() {
        return row(
            false,
            out.fixes.len(),
            0,
            0,
            millis,
            "injected fault left no structured trail".into(),
        );
    }
    let after = Vm::new(VmOptions::default())
        .run(&healed, "main")
        .expect("healed run");
    if after.output != baseline {
        return row(
            false,
            out.fixes.len(),
            out.degraded.len(),
            out.diagnostics.len(),
            millis,
            "repaired output diverged from the fault-free repair".into(),
        );
    }
    row(
        true,
        out.fixes.len(),
        out.degraded.len(),
        out.diagnostics.len(),
        millis,
        String::new(),
    )
}

fn explore_opts(obs: &Obs, fault: Option<FaultPlan>, jobs: usize) -> ExploreOptions {
    ExploreOptions {
        budget: BUDGET,
        seed: SEED,
        jobs,
        fault,
        obs: obs.clone(),
        ..ExploreOptions::default()
    }
}

/// Explores once, records the `bench.fault.<target>.<layer>.*` metrics,
/// and returns the wall seconds.
fn overhead_row(
    obs: &Obs,
    target: &str,
    fault_layer: &str,
    m: &pmir::Module,
    entry: &str,
    jobs: usize,
    fault: Option<FaultPlan>,
) -> f64 {
    let _span = obs.span(&format!("bench.overhead.{target}.{fault_layer}"));
    let t0 = Instant::now();
    let x = run_and_explore(m, entry, &explore_opts(obs, fault, jobs)).expect("exploration runs");
    let secs = t0.elapsed().as_secs_f64();
    let candidates = x.report.stats.candidates;
    let states_per_sec = if secs > 0.0 {
        candidates as f64 / secs
    } else {
        0.0
    };
    let key = format!("bench.fault.{target}.{fault_layer}");
    obs.add(&format!("{key}.candidates"), candidates as u64);
    obs.gauge(&format!("{key}.wall_ms"), secs * 1e3);
    obs.gauge(&format!("{key}.states_per_sec"), states_per_sec);
    println!(
        "  {target:<16} {fault_layer:<9} jobs={jobs}  {candidates:>4} states in {secs:.3}s  \
         ->  {states_per_sec:.0} states/s"
    );
    secs
}

fn main() {
    let obs = Obs::enabled();
    let t_all = Instant::now();
    println!("Fault-injection campaign — archetype pass rate and injection-layer overhead\n");

    // --- Campaign: every archetype, hardened-pipeline contract. ------------
    let campaign_span = obs.span("bench.campaign");
    let mut passed = 0u64;
    for seed in 0..N_ARCHETYPES {
        let _seed_span = obs.span("bench.campaign.seed");
        let r = campaign_row(&obs, seed);
        println!(
            "  seed {seed}: [{}] {}  ({:.0} ms, {} fix(es), {} degradation(s), {} diagnostic(s)){}",
            r.plan,
            if r.passed { "ok" } else { "FAILED" },
            r.millis,
            r.fixes,
            r.degradations,
            r.diagnostics,
            if r.note.is_empty() {
                String::new()
            } else {
                format!(" — {}", r.note)
            },
        );
        passed += u64::from(r.passed);
        obs.observe("bench.fault.campaign_ms", r.millis);
        obs.add("bench.fault.fixes_total", r.fixes as u64);
        obs.add("bench.fault.degradations_total", r.degradations as u64);
        obs.add("bench.fault.diagnostics_total", r.diagnostics as u64);
    }
    drop(campaign_span);
    let pass_rate = passed as f64 / N_ARCHETYPES as f64;
    println!("campaign: {passed}/{N_ARCHETYPES} archetype(s) passed\n");
    obs.add("bench.fault.archetypes", N_ARCHETYPES);
    obs.add("bench.fault.passed", passed);
    obs.gauge("bench.fault.pass_rate", pass_rate);
    assert_eq!(
        passed, N_ARCHETYPES,
        "every fault archetype must be survived"
    );

    // --- Overhead: disabled vs. armed-but-idle injection layer. ------------
    // The idle plan targets a real site with a trigger that never fires, so
    // the whole per-candidate injection path runs without ever injecting.
    let idle_plan = FaultPlan::single(
        FaultSite::ExploreWorker,
        Trigger::Nth(u64::MAX),
        FaultKind::WorkerPanic,
    );
    let mut demo = pmlang::compile_one("ordering_demo.pmc", DEMO_SRC).expect("demo compiles");
    Hippocrates::new(RepairOptions {
        bug_source: BugSource::Exploration,
        explore_budget: BUDGET,
        explore_seed: SEED,
        ..RepairOptions::default()
    })
    .repair_until_clean(&mut demo, "main")
    .expect("demo heals");
    let pclht = pmapps::pclht::build_correct().expect("pclht builds");

    println!("overhead (budget {BUDGET}, seed {SEED}):");
    let mut disabled = 0.0;
    let mut idle = 0.0;
    disabled += overhead_row(&obs, "ordering_demo", "disabled", &demo, "main", 1, None);
    idle += overhead_row(
        &obs,
        "ordering_demo",
        "armed_idle",
        &demo,
        "main",
        1,
        Some(idle_plan.clone()),
    );
    disabled += overhead_row(
        &obs,
        "pclht",
        "disabled",
        &pclht,
        pmapps::pclht::ENTRY,
        1,
        None,
    );
    idle += overhead_row(
        &obs,
        "pclht",
        "armed_idle",
        &pclht,
        pmapps::pclht::ENTRY,
        1,
        Some(idle_plan),
    );
    // Summarize the slowdown of the armed-but-idle layer (expected ~1.0,
    // recorded rather than gated: CI machines are noisy).
    let armed_idle_over_disabled = if disabled > 0.0 { idle / disabled } else { 1.0 };
    println!("armed-idle / disabled wall-clock ratio: {armed_idle_over_disabled:.3}\n");
    obs.gauge(
        "bench.fault.armed_idle_over_disabled",
        armed_idle_over_disabled,
    );

    obs.gauge("bench.wall_ms", t_all.elapsed().as_secs_f64() * 1e3);
    bench::write_metrics("BENCH_fault.json", &obs);
}
