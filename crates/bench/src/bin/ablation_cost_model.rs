//! Ablation (DESIGN.md): sensitivity of the Fig. 4 RedisH-intra gap to the
//! cost model's write-back latencies. The qualitative result — hoisted
//! fixes beat intraprocedural ones wherever flushing volatile data costs
//! anything — must hold across the sweep.

use bench::redisx::{build_redis_variants, to_redis_ops};
use bench::Table;
use pmapps::redis::attach_workload;
use pmem_sim::CostModel;
use pmvm::{Vm, VmOptions};
use ycsb::{Generator, Workload};

fn main() {
    let obs = pmobs::Obs::enabled();
    let run_span = obs.span("bench.ablation_cost_model");
    println!("Ablation — Fig. 4 gap vs. write-back latency (workload A)\n");
    let mut v = build_redis_variants();
    let g = Generator::new(300, 300, 1024, 7);
    let load = to_redis_ops(&g.load_ops(), 1024);
    let mut combined = load.clone();
    combined.extend(to_redis_ops(&g.run_ops(Workload::A), 1024));

    let e_full = attach_workload(&mut v.hfull, "abl", &combined);
    let e_intra = attach_workload(&mut v.hintra, "abl", &combined);

    let mut t = Table::new([
        "pm_writeback",
        "dram_writeback",
        "RedisH-full cycles",
        "RedisH-intra cycles",
        "intra/full",
    ]);
    for (pm_wb, dram_wb) in [(150, 75), (300, 150), (600, 300), (300, 50), (1000, 500)] {
        let cost = CostModel {
            pm_writeback: pm_wb,
            dram_writeback: dram_wb,
            ..CostModel::optane_like()
        };
        let opts = VmOptions {
            cost,
            ..VmOptions::bench()
        };
        let full = Vm::new(opts.clone()).run(&v.hfull, &e_full).expect("runs");
        let intra = Vm::new(opts).run(&v.hintra, &e_intra).expect("runs");
        assert_eq!(full.output, intra.output, "do-no-harm across cost models");
        let ratio = intra.stats.cycles as f64 / full.stats.cycles as f64;
        assert!(ratio > 1.0, "hoisting must win at every latency point");
        obs.add("bench.ablation_cost.points", 1);
        obs.gauge(
            &format!("bench.ablation_cost.pm{pm_wb}_dram{dram_wb}.intra_over_full"),
            ratio,
        );
        t.row([
            pm_wb.to_string(),
            dram_wb.to_string(),
            full.stats.cycles.to_string(),
            intra.stats.cycles.to_string(),
            format!("{ratio:.2}x"),
        ]);
    }
    println!("{t}");
    println!("the interprocedural win is robust across the latency sweep");
    drop(run_span);
    bench::write_metrics("BENCH_ablation_cost_model.json", &obs);
}
