//! Ablation (§6.4 discussion): persistent-subprogram **reuse** on vs. off.
//! Reuse is the mechanism that keeps code bloat negligible — without it
//! every hoisted fix clones its whole subprogram chain afresh.

use bench::Table;
use hippocrates::{Hippocrates, RepairOptions};
use pmir::ModuleMetrics;

/// Repairs the all-bugs memcached build (the target with the most
/// overlapping hoist chains).
fn run(reuse: bool) -> (usize, usize, usize) {
    let mut m = minipmdk::library_compiler()
        .source("memcached.pmc", pmapps::memcached::SRC)
        .elide_tags(pmapps::memcached::BUG_IDS)
        .compile()
        .expect("builds");
    let entry = pmapps::memcached::ENTRY;
    let before = ModuleMetrics::measure(&m).ir_lines;
    let outcome = Hippocrates::new(RepairOptions {
        reuse_subprograms: reuse,
        ..RepairOptions::default()
    })
    .repair_until_clean(&mut m, entry)
    .expect("repair succeeds");
    assert!(outcome.clean);
    let after = ModuleMetrics::measure(&m).ir_lines;
    (outcome.clones_created, after - before, outcome.fixes.len())
}

fn main() {
    let obs = pmobs::Obs::enabled();
    let run_span = obs.span("bench.ablation_reuse");
    println!("Ablation — persistent-subprogram reuse (all-bugs memcached repair)\n");
    let (clones_on, grew_on, fixes_on) = run(true);
    let (clones_off, grew_off, fixes_off) = run(false);
    let mut t = Table::new(["Configuration", "Fixes", "Clones created", "IR lines added"]);
    t.row([
        "reuse on (paper default)".to_string(),
        fixes_on.to_string(),
        clones_on.to_string(),
        grew_on.to_string(),
    ]);
    t.row([
        "reuse off".to_string(),
        fixes_off.to_string(),
        clones_off.to_string(),
        grew_off.to_string(),
    ]);
    println!("{t}");
    assert!(clones_off >= clones_on);
    println!(
        "reuse avoids {} clone(s) and {} IR line(s) on this target",
        clones_off - clones_on,
        grew_off.saturating_sub(grew_on)
    );
    obs.add("bench.ablation_reuse.clones_on", clones_on as u64);
    obs.add("bench.ablation_reuse.clones_off", clones_off as u64);
    obs.add("bench.ablation_reuse.ir_added_on", grew_on as u64);
    obs.add("bench.ablation_reuse.ir_added_off", grew_off as u64);
    obs.add("bench.ablation_reuse.fixes_on", fixes_on as u64);
    obs.add("bench.ablation_reuse.fixes_off", fixes_off as u64);
    drop(run_span);
    bench::write_metrics("BENCH_ablation_reuse.json", &obs);
}
