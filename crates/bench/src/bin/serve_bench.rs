//! Repair-as-a-service benchmark: campaign throughput and warm-cache
//! speedup through the `hippod` daemon, emitted as `BENCH_serve.json` — a
//! `hippo.metrics.v1` snapshot the CI bench-regression gate (`bench_gate`)
//! compares against its checked-in baseline.
//!
//! The daemon runs in-process on a real Unix socket; every campaign goes
//! through the full wire protocol (submit → poll → result frame), exactly
//! what a CLI client pays. Two walls and two floors:
//!
//! * `bench.serve.cold_ms` — N concurrent fix campaigns on distinct apps,
//!   every cache cold: the full repair pipeline per job.
//! * `bench.serve.warm_ms` — the same N campaigns resubmitted verbatim:
//!   each hits the job-result cache and the daemon answers without
//!   re-running the pipeline.
//! * `bench.serve.pass_rate` (floor) — fraction of campaigns where the
//!   daemon's artifact is byte-identical to a standalone (cacheless) run,
//!   the warm artifact is byte-identical to the cold one, cold results are
//!   genuinely uncached, warm results are genuinely cached, and the
//!   daemon's health and drain report agree with the job count.
//! * `bench.serve.warm_speedup_floor` (floor) — `cold_ms / warm_ms`
//!   clamped to a conservative 2.0: the gate locks in "warm is at least
//!   twice as fast", while the unclamped `bench.serve.warm_speedup` gauge
//!   records the real (machine-dependent, usually much larger) ratio.
//!
//! `bench.serve.jobs_per_sec` (informational) is the cold-round campaign
//! throughput.

use hippocrates::WarmCache;
use hippod::{serve, Client, JobKind, JobSpec, JobView, ServerConfig};
use pmobs::Obs;
use std::path::Path;
use std::time::{Duration, Instant};

/// Concurrent campaigns per round.
const CAMPAIGNS: usize = 6;
/// PM-touching loop iterations per app: sizes the trace each repair
/// iteration must re-verify, so a cold fix costs real work.
const LOOP_ITERS: usize = 4096;
/// Distinct unflushed straight-line publish sites per app: each one is a
/// separate repair iteration (find → fix → re-verify).
const SITES: usize = 12;

/// Distinct buggy apps: a long PM-writing loop (one unflushed in-loop
/// site) followed by [`SITES`] straight-line unflushed publishes, all on
/// per-campaign pools so no two campaigns share a module digest.
fn app(i: usize) -> (String, String) {
    let mut src = String::new();
    src.push_str("fn main() {\n");
    src.push_str(&format!("    var p: ptr = pmem_map({i}, 65536);\n"));
    src.push_str("    var k: int = 0;\n");
    src.push_str(&format!("    while (k < {LOOP_ITERS}) {{\n"));
    src.push_str("        store8(p + k * 8, 0, k);\n");
    src.push_str("        k = k + 1;\n");
    src.push_str("    }\n");
    for j in 0..SITES {
        src.push_str(&format!(
            "    store8(p, {}, {});\n",
            16384 + j * 64,
            i * 100 + j + 1
        ));
    }
    src.push_str("    print(load8(p, 0));\n}\n");
    (format!("serve_bench{i}.pmc"), src)
}

fn specs() -> Vec<JobSpec> {
    (0..CAMPAIGNS)
        .map(|i| JobSpec::new(JobKind::Fix, vec![app(i)]))
        .collect()
}

/// Submits every spec concurrently (one client per campaign, like real CLI
/// callers) and waits for all of them. Returns the round wall time and the
/// settled views in submission order.
fn round(socket: &Path, specs: &[JobSpec]) -> (f64, Vec<JobView>) {
    let t0 = Instant::now();
    let views = std::thread::scope(|s| {
        let handles: Vec<_> = specs
            .iter()
            .map(|spec| {
                let spec = spec.clone();
                s.spawn(move || {
                    let mut c = Client::connect(socket).expect("daemon answers");
                    let id = c
                        .submit_retry(spec, Duration::from_secs(30))
                        .expect("campaign accepted");
                    c.wait(&id, Duration::from_secs(300))
                        .expect("campaign settles")
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("campaign thread"))
            .collect::<Vec<JobView>>()
    });
    (t0.elapsed().as_secs_f64() * 1e3, views)
}

fn main() {
    let obs = Obs::enabled();
    let t_all = Instant::now();
    println!("Serve benchmark — campaign throughput and warm-cache speedup\n");

    let dir = std::env::temp_dir().join(format!("hippo-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let socket = dir.join("hippod.sock");
    let journal = dir.join("jobs.journal");

    // Standalone references: what every daemon artifact must match, byte
    // for byte. Cacheless and on a separate Obs, so the artifact's
    // daemon-side counters stay undiluted.
    let specs = specs();
    let references: Vec<String> = specs
        .iter()
        .map(|spec| {
            hippod::execute(spec, &WarmCache::disabled(), &Obs::disabled())
                .expect("standalone fix converges")
                .output
        })
        .collect();

    let cfg = ServerConfig {
        socket: socket.clone(),
        journal: Some(journal),
        workers: 4,
        queue_capacity: 64,
        fault: None,
        obs: obs.clone(),
    };
    let server = std::thread::spawn(move || serve(cfg));
    let mut ctl = Client::connect_retry(&socket, Duration::from_secs(10)).expect("daemon up");

    let mut pass = true;

    // Cold round: every cache empty, full pipeline per campaign.
    let (cold_ms, cold) = round(&socket, &specs);
    for (i, (view, reference)) in cold.iter().zip(&references).enumerate() {
        let Some(r) = view.result.as_ref() else {
            println!("  campaign {i}: cold job carried no result: {view:?}");
            pass = false;
            continue;
        };
        if r.cached || !r.clean || r.output != *reference {
            println!(
                "  campaign {i}: cold mismatch (cached={}, clean={}, identical={})",
                r.cached,
                r.clean,
                r.output == *reference
            );
            pass = false;
        }
    }

    // Warm round: identical specs — every campaign is a result-cache hit.
    let (warm_ms, warm) = round(&socket, &specs);
    for (i, (view, reference)) in warm.iter().zip(&references).enumerate() {
        let Some(r) = view.result.as_ref() else {
            println!("  campaign {i}: warm job carried no result: {view:?}");
            pass = false;
            continue;
        };
        if !r.cached || r.output != *reference {
            println!(
                "  campaign {i}: warm mismatch (cached={}, identical={})",
                r.cached,
                r.output == *reference
            );
            pass = false;
        }
    }

    let health = ctl.health().expect("health answers");
    pass &= health.ok && health.done == 2 * CAMPAIGNS as u64 && health.failed == 0;

    ctl.shutdown().expect("graceful shutdown");
    let report = server
        .join()
        .expect("server thread")
        .expect("daemon drains cleanly");
    pass &= report.done == 2 * CAMPAIGNS as u64 && report.failed == 0 && report.resumed == 0;

    let jobs_per_sec = CAMPAIGNS as f64 / (cold_ms / 1e3);
    let speedup = cold_ms / warm_ms.max(f64::EPSILON);
    println!(
        "  cold  {cold_ms:>8.2} ms  ({jobs_per_sec:.1} campaigns/sec)\n  \
         warm  {warm_ms:>8.2} ms  ({speedup:.1}x speedup)\n  \
         pass {}",
        if pass { "1.00" } else { "0.00" }
    );

    obs.gauge("bench.serve.cold_ms", cold_ms);
    obs.gauge("bench.serve.warm_ms", warm_ms);
    obs.gauge("bench.serve.jobs_per_sec", jobs_per_sec);
    obs.gauge("bench.serve.warm_speedup", speedup);
    obs.gauge("bench.serve.warm_speedup_floor", speedup.min(2.0));
    obs.gauge("bench.serve.pass_rate", if pass { 1.0 } else { 0.0 });
    obs.add("bench.serve.campaigns", 2 * CAMPAIGNS as u64);
    obs.gauge("bench.wall_ms", t_all.elapsed().as_secs_f64() * 1e3);
    assert!(
        pass,
        "every campaign must be byte-identical to its standalone run, \
         cold uncached and warm cached"
    );
    std::fs::remove_dir_all(&dir).ok();
    bench::write_metrics("BENCH_serve.json", &obs);
}
