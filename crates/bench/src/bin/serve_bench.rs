//! Repair-as-a-service benchmark: campaign throughput and warm-cache
//! speedup through the `hippod` daemon, emitted as `BENCH_serve.json` — a
//! `hippo.metrics.v1` snapshot the CI bench-regression gate (`bench_gate`)
//! compares against its checked-in baseline.
//!
//! Three daemons run in turn, each paying the full wire protocol
//! (submit → poll → result frame), exactly what a CLI client pays:
//!
//! * **Unix socket, unbounded cache** — the original pair of walls:
//!   `bench.serve.cold_ms` (N concurrent fix campaigns on distinct apps,
//!   every cache cold) and `bench.serve.warm_ms` (the same campaigns
//!   resubmitted verbatim, each a result-cache hit).
//! * **TCP** (`bench.serve.tcp_cold_ms` / `bench.serve.tcp_warm_ms`) —
//!   the same rounds over a real `127.0.0.1` ephemeral-port listener:
//!   what the hardened `hippo.jobs.v2` transport costs off-box.
//! * **Capped cache** (`bench.serve.capped_cold_ms` /
//!   `bench.serve.capped_warm_ms`) — a byte-budgeted LRU warm cache
//!   (`cache_budget`): the warm round must still be served from cache
//!   while the daemon's accounted `cache_bytes` stays under the budget.
//! * **Degraded** (`bench.serve.recovery_wall_ms`) — a 4-shard campaign on
//!   a 4-worker daemon with one worker killed mid-shard: the lease reaper
//!   reclaims and re-runs the orphaned shard, and the gauge is the full
//!   heal wall (submit → settled, fault included). The merged artifact
//!   must stay byte-identical to a sequential fault-free run.
//!
//! Floors (`bench.serve.pass_rate`, `bench.serve.warm_speedup_floor`,
//! `bench.serve.tcp_warm_speedup_floor`,
//! `bench.serve.capped_warm_speedup_floor`) lock in: every artifact
//! byte-identical to a standalone (cacheless) run, cold genuinely
//! uncached, warm genuinely cached, health/drain reports agreeing with the
//! job count, the capped daemon's `cache_bytes` within budget, and "warm
//! is at least twice as fast" on every transport. The unclamped
//! `*_speedup` gauges record the real (machine-dependent, usually much
//! larger) ratios; `bench.serve.jobs_per_sec` is the cold-round campaign
//! throughput on the Unix path.

use hippocrates::WarmCache;
use hippod::{serve, Client, Health, JobKind, JobSpec, JobView, ServerConfig};
use pmobs::Obs;
use std::time::{Duration, Instant};

/// Concurrent campaigns per round.
const CAMPAIGNS: usize = 6;
/// PM-touching loop iterations per app: sizes the trace each repair
/// iteration must re-verify, so a cold fix costs real work.
const LOOP_ITERS: usize = 4096;
/// Distinct unflushed straight-line publish sites per app: each one is a
/// separate repair iteration (find → fix → re-verify).
const SITES: usize = 12;
/// Byte budget for the capped-cache daemon: small enough to be a real
/// constraint, large enough to hold the round's working set so the warm
/// round still hits.
const CACHE_BUDGET: u64 = 8 * 1024 * 1024;

/// Distinct buggy apps: a long PM-writing loop (one unflushed in-loop
/// site) followed by [`SITES`] straight-line unflushed publishes, all on
/// per-campaign pools so no two campaigns share a module digest.
fn app(i: usize) -> (String, String) {
    let mut src = String::new();
    src.push_str("fn main() {\n");
    src.push_str(&format!("    var p: ptr = pmem_map({i}, 65536);\n"));
    src.push_str("    var k: int = 0;\n");
    src.push_str(&format!("    while (k < {LOOP_ITERS}) {{\n"));
    src.push_str("        store8(p + k * 8, 0, k);\n");
    src.push_str("        k = k + 1;\n");
    src.push_str("    }\n");
    for j in 0..SITES {
        src.push_str(&format!(
            "    store8(p, {}, {});\n",
            16384 + j * 64,
            i * 100 + j + 1
        ));
    }
    src.push_str("    print(load8(p, 0));\n}\n");
    (format!("serve_bench{i}.pmc"), src)
}

fn specs() -> Vec<JobSpec> {
    (0..CAMPAIGNS)
        .map(|i| JobSpec::new(JobKind::Fix, vec![app(i)]))
        .collect()
}

/// Submits every spec concurrently (one client per campaign, like real CLI
/// callers) and waits for all of them. `dial` is a connect spec — a Unix
/// socket path or `host:port`. Returns the round wall time and the settled
/// views in submission order.
fn round(dial: &str, specs: &[JobSpec]) -> (f64, Vec<JobView>) {
    let t0 = Instant::now();
    let views = std::thread::scope(|s| {
        let handles: Vec<_> = specs
            .iter()
            .map(|spec| {
                let spec = spec.clone();
                s.spawn(move || {
                    let mut c = Client::dial(dial).expect("daemon answers");
                    let id = c
                        .submit_retry(spec, Duration::from_secs(30))
                        .expect("campaign accepted");
                    c.wait(&id, Duration::from_secs(300))
                        .expect("campaign settles")
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("campaign thread"))
            .collect::<Vec<JobView>>()
    });
    (t0.elapsed().as_secs_f64() * 1e3, views)
}

/// A cold round then a verbatim warm round against the daemon at `dial`,
/// verifying every artifact against its standalone reference, then health,
/// graceful shutdown, and the drain report. Returns
/// `(cold_ms, warm_ms, health)`.
fn rounds(
    dial: &str,
    label: &str,
    specs: &[JobSpec],
    references: &[String],
    server: std::thread::JoinHandle<Result<hippod::ServeReport, String>>,
    pass: &mut bool,
) -> (f64, f64, Health) {
    let mut ctl = Client::dial_retry(dial, Duration::from_secs(10)).expect("daemon up");

    // Cold round: every cache empty, full pipeline per campaign.
    let (cold_ms, cold) = round(dial, specs);
    for (i, (view, reference)) in cold.iter().zip(references).enumerate() {
        let Some(r) = view.result.as_ref() else {
            println!("  {label} campaign {i}: cold job carried no result: {view:?}");
            *pass = false;
            continue;
        };
        if r.cached || !r.clean || r.output != *reference {
            println!(
                "  {label} campaign {i}: cold mismatch (cached={}, clean={}, identical={})",
                r.cached,
                r.clean,
                r.output == *reference
            );
            *pass = false;
        }
    }

    // Warm round: identical specs — every campaign is a result-cache hit.
    let (warm_ms, warm) = round(dial, specs);
    for (i, (view, reference)) in warm.iter().zip(references).enumerate() {
        let Some(r) = view.result.as_ref() else {
            println!("  {label} campaign {i}: warm job carried no result: {view:?}");
            *pass = false;
            continue;
        };
        if !r.cached || r.output != *reference {
            println!(
                "  {label} campaign {i}: warm mismatch (cached={}, identical={})",
                r.cached,
                r.output == *reference
            );
            *pass = false;
        }
    }

    let health = ctl.health().expect("health answers");
    *pass &= health.ok && health.done == 2 * CAMPAIGNS as u64 && health.failed == 0;

    ctl.shutdown().expect("graceful shutdown");
    let report = server
        .join()
        .expect("server thread")
        .expect("daemon drains cleanly");
    *pass &= report.done == 2 * CAMPAIGNS as u64 && report.failed == 0 && report.resumed == 0;
    (cold_ms, warm_ms, health)
}

fn main() {
    let obs = Obs::enabled();
    let t_all = Instant::now();
    println!("Serve benchmark — campaign throughput and warm-cache speedup\n");

    let dir = std::env::temp_dir().join(format!("hippo-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let socket = dir.join("hippod.sock");

    // Standalone references: what every daemon artifact must match, byte
    // for byte. Cacheless and on a separate Obs, so the artifact's
    // daemon-side counters stay undiluted.
    let specs = specs();
    let references: Vec<String> = specs
        .iter()
        .map(|spec| {
            hippod::execute(spec, &WarmCache::disabled(), &Obs::disabled())
                .expect("standalone fix converges")
                .output
        })
        .collect();

    let mut pass = true;

    // Unix socket, unbounded cache.
    let server = {
        let cfg = ServerConfig {
            socket: socket.clone(),
            journal: Some(dir.join("jobs.journal")),
            workers: 4,
            obs: obs.clone(),
            ..ServerConfig::default()
        };
        std::thread::spawn(move || serve(cfg))
    };
    let dial = socket.to_string_lossy().to_string();
    let (cold_ms, warm_ms, _) = rounds(&dial, "unix", &specs, &references, server, &mut pass);

    // TCP: the same campaigns over a real ephemeral-port listener.
    let (tx, rx) = std::sync::mpsc::channel();
    let server = {
        let cfg = ServerConfig {
            socket: dir.join("unused.sock"),
            listen: Some("127.0.0.1:0".to_string()),
            journal: Some(dir.join("jobs_tcp.journal")),
            workers: 4,
            obs: obs.clone(),
            ready: Some(tx),
            ..ServerConfig::default()
        };
        std::thread::spawn(move || serve(cfg))
    };
    let addr = rx
        .recv_timeout(Duration::from_secs(10))
        .expect("tcp daemon reports its port");
    let (tcp_cold_ms, tcp_warm_ms, _) =
        rounds(&addr, "tcp", &specs, &references, server, &mut pass);

    // Capped cache: a byte-budgeted LRU must stay under budget while the
    // warm round is still served from cache.
    let capped_socket = dir.join("hippod_capped.sock");
    let server = {
        let cfg = ServerConfig {
            socket: capped_socket.clone(),
            journal: Some(dir.join("jobs_capped.journal")),
            workers: 4,
            cache_budget: Some(CACHE_BUDGET),
            obs: obs.clone(),
            ..ServerConfig::default()
        };
        std::thread::spawn(move || serve(cfg))
    };
    let dial = capped_socket.to_string_lossy().to_string();
    let (capped_cold_ms, capped_warm_ms, capped_health) =
        rounds(&dial, "capped", &specs, &references, server, &mut pass);
    if capped_health.cache_bytes == 0 || capped_health.cache_bytes > CACHE_BUDGET {
        println!(
            "  capped daemon accounted {} cache bytes against a {CACHE_BUDGET}-byte budget",
            capped_health.cache_bytes
        );
        pass = false;
    }

    // Degraded round: a 4-shard campaign on a 4-worker daemon where one
    // worker is killed mid-shard. The reaper reclaims the orphaned lease
    // and re-runs the shard; the recovery wall is the full heal time —
    // submit to settled, fault included — and the merged artifact must
    // still be byte-identical to a sequential fault-free run.
    let shard_spec = {
        let mut s = JobSpec::new(
            JobKind::Explore,
            vec![(
                "degraded.pmc".to_string(),
                "fn main() {\n    var p: ptr = pmem_map(7, 4096);\n    store8(p, 0, 1);\n    clwb(p);\n    sfence();\n    store8(p, 64, 2);\n    clwb(p + 64);\n    sfence();\n    store8(p, 128, 3);\n    print(load8(p, 0) + load8(p, 64) + load8(p, 128));\n}\n"
                    .to_string(),
            )],
        );
        s.shards = 4;
        s
    };
    let shard_reference =
        hippod::shard::run_local(&shard_spec, &WarmCache::enabled(), &Obs::disabled())
            .expect("sequential reference run converges");
    let degraded_socket = dir.join("hippod_degraded.sock");
    let server = {
        let cfg = ServerConfig {
            socket: degraded_socket.clone(),
            journal: Some(dir.join("jobs_degraded.journal")),
            workers: 4,
            lease_ttl_ms: 100,
            fault: Some(pmfault::FaultPlan::single(
                pmfault::FaultSite::ShardWorker,
                pmfault::Trigger::Nth(0), // shard 0, attempt 0
                pmfault::FaultKind::WorkerKill,
            )),
            obs: obs.clone(),
            ..ServerConfig::default()
        };
        std::thread::spawn(move || serve(cfg))
    };
    let dial = degraded_socket.to_string_lossy().to_string();
    let mut c = Client::dial_retry(&dial, Duration::from_secs(10)).expect("degraded daemon up");
    let t_heal = Instant::now();
    let id = c
        .submit_retry(shard_spec, Duration::from_secs(30))
        .expect("degraded campaign accepted");
    let view = c
        .wait(&id, Duration::from_secs(300))
        .expect("degraded campaign settles");
    let recovery_wall_ms = t_heal.elapsed().as_secs_f64() * 1e3;
    match view.result.as_ref() {
        Some(r) if r.output == shard_reference.output && r.clean == shard_reference.clean => {}
        other => {
            println!("  degraded campaign did not heal byte-identically: {other:?}");
            pass = false;
        }
    }
    c.shutdown().expect("degraded shutdown");
    server
        .join()
        .expect("degraded server thread")
        .expect("degraded daemon drains cleanly");
    let snap = obs.snapshot();
    let killed = snap
        .counters
        .get("serve.shards.killed")
        .copied()
        .unwrap_or(0);
    let reclaimed = snap
        .counters
        .get("serve.shards.reclaimed")
        .copied()
        .unwrap_or(0);
    if killed < 1 || reclaimed < 1 {
        println!(
            "  degraded round never exercised the fault path (killed={killed}, reclaimed={reclaimed})"
        );
        pass = false;
    }

    let jobs_per_sec = CAMPAIGNS as f64 / (cold_ms / 1e3);
    let speedup = cold_ms / warm_ms.max(f64::EPSILON);
    let tcp_speedup = tcp_cold_ms / tcp_warm_ms.max(f64::EPSILON);
    let capped_speedup = capped_cold_ms / capped_warm_ms.max(f64::EPSILON);
    println!(
        "  unix     cold {cold_ms:>8.2} ms  warm {warm_ms:>8.2} ms  ({speedup:.1}x, {jobs_per_sec:.1} campaigns/sec)\n  \
         tcp      cold {tcp_cold_ms:>8.2} ms  warm {tcp_warm_ms:>8.2} ms  ({tcp_speedup:.1}x)\n  \
         capped   cold {capped_cold_ms:>8.2} ms  warm {capped_warm_ms:>8.2} ms  ({capped_speedup:.1}x, {} cache bytes)\n  \
         degraded heal {recovery_wall_ms:>8.2} ms  ({killed} worker kill(s), {reclaimed} lease reclaim(s))\n  \
         pass {}",
        capped_health.cache_bytes,
        if pass { "1.00" } else { "0.00" }
    );

    obs.gauge("bench.serve.cold_ms", cold_ms);
    obs.gauge("bench.serve.warm_ms", warm_ms);
    obs.gauge("bench.serve.tcp_cold_ms", tcp_cold_ms);
    obs.gauge("bench.serve.tcp_warm_ms", tcp_warm_ms);
    obs.gauge("bench.serve.capped_cold_ms", capped_cold_ms);
    obs.gauge("bench.serve.capped_warm_ms", capped_warm_ms);
    obs.gauge("bench.serve.jobs_per_sec", jobs_per_sec);
    obs.gauge("bench.serve.warm_speedup", speedup);
    obs.gauge("bench.serve.warm_speedup_floor", speedup.min(2.0));
    obs.gauge("bench.serve.tcp_warm_speedup", tcp_speedup);
    obs.gauge("bench.serve.tcp_warm_speedup_floor", tcp_speedup.min(2.0));
    obs.gauge("bench.serve.capped_warm_speedup", capped_speedup);
    obs.gauge(
        "bench.serve.capped_warm_speedup_floor",
        capped_speedup.min(2.0),
    );
    obs.gauge(
        "bench.serve.capped_cache_bytes",
        capped_health.cache_bytes as f64,
    );
    obs.gauge("bench.serve.recovery_wall_ms", recovery_wall_ms);
    obs.gauge("bench.serve.pass_rate", if pass { 1.0 } else { 0.0 });
    obs.add("bench.serve.campaigns", 6 * CAMPAIGNS as u64 + 1);
    obs.gauge("bench.wall_ms", t_all.elapsed().as_secs_f64() * 1e3);
    assert!(
        pass,
        "every campaign must be byte-identical to its standalone run, \
         cold uncached and warm cached, on every transport and cache budget"
    );
    std::fs::remove_dir_all(&dir).ok();
    bench::write_metrics("BENCH_serve.json", &obs);
}
