//! Regenerates **Fig. 4** (§6.3): YCSB throughput of the three persistent
//! Redis variants — Redis-pm (developer port), RedisH-intra (Hippocrates,
//! intraprocedural fixes only), and RedisH-full (full heuristic) — over
//! Load + workloads A–F, with 95 % confidence intervals across trials.
//!
//! Usage: `fig4_redis_ycsb [records] [ops] [trials]` (defaults 1000 1000 5;
//! the paper used 10000 10000 20 — pass them for a full-scale run).
//!
//! Also prints the §6.3 fix-mix statistic (total fixes, interprocedural
//! share, hoist-level histogram).

use bench::redisx::to_redis_ops;
use bench::{build_redis_variants, mean_ci95, measure_workload, throughput, Table};
use ycsb::{Generator, Workload};

const VALUE_LEN: i64 = 1024;

fn main() {
    let obs = pmobs::Obs::enabled();
    let run_span = obs.span("bench.fig4");
    let t_all = std::time::Instant::now();
    let args: Vec<u64> = bench::positional_args()
        .into_iter()
        .map(|a| a.parse().expect("numeric argument"))
        .collect();
    let records = args.first().copied().unwrap_or(1000);
    let ops = args.get(1).copied().unwrap_or(1000);
    let trials = args.get(2).copied().unwrap_or(5);
    obs.add("bench.fig4.records", records);
    obs.add("bench.fig4.ops", ops);
    obs.add("bench.fig4.trials", trials);

    println!(
        "Fig. 4 — YCSB on persistent Redis ({records} records, {ops} ops, {trials} trials, \
         {VALUE_LEN}-byte values)\n"
    );
    eprintln!("building variants and repairing the flush-free Redis…");
    let mut v = build_redis_variants();
    println!(
        "§6.3 fix mix: RedisH-full applied {} fixes, {} interprocedural {:?}; \
         RedisH-intra applied {} (all intraprocedural)",
        v.hfull_outcome.fixes.len(),
        v.hfull_outcome.interprocedural_count(),
        v.hfull_outcome.hoist_level_histogram(),
        v.hintra_outcome.fixes.len(),
    );
    println!();

    // Collected samples: [workload][variant] -> throughput per trial.
    let labels: Vec<String> = std::iter::once("Load".to_string())
        .chain(Workload::ALL.iter().map(|w| w.label().to_string()))
        .collect();
    let mut samples: Vec<[Vec<f64>; 3]> = (0..labels.len())
        .map(|_| [vec![], vec![], vec![]])
        .collect();

    for trial in 0..trials {
        let g = Generator::new(records, ops, VALUE_LEN as u64, 1000 + trial);
        let load = to_redis_ops(&g.load_ops(), VALUE_LEN);
        for (wi, label) in labels.iter().enumerate() {
            let run = if wi == 0 {
                vec![]
            } else {
                to_redis_ops(&g.run_ops(Workload::ALL[wi - 1]), VALUE_LEN)
            };
            let tag = format!("t{trial}_{label}");
            let mut outputs = vec![];
            for (vi, module) in [&mut v.hintra, &mut v.pm, &mut v.hfull]
                .into_iter()
                .enumerate()
            {
                let r = measure_workload(module, &tag, &load, &run);
                let (count, cycles) = if wi == 0 {
                    (records, r.load_cycles)
                } else {
                    (ops, r.run_cycles)
                };
                samples[wi][vi].push(throughput(count, cycles));
                outputs.push(r.output);
            }
            assert!(
                outputs.windows(2).all(|w| w[0] == w[1]),
                "variant outputs diverged on {label} (do-no-harm violation)"
            );
            eprint!(".");
        }
    }
    eprintln!();

    let mut t = Table::new([
        "Workload",
        "RedisH-intra (ops/s ±95%)",
        "Redis-pm (ops/s ±95%)",
        "RedisH-full (ops/s ±95%)",
        "full/pm",
        "full/intra",
    ]);
    for (wi, label) in labels.iter().enumerate() {
        let cells: Vec<(f64, f64)> = samples[wi].iter().map(|s| mean_ci95(s)).collect();
        for (variant, cell) in ["intra", "pm", "full"].iter().zip(&cells) {
            obs.gauge(&format!("bench.fig4.{label}.{variant}.ops_per_sec"), cell.0);
        }
        t.row([
            label.clone(),
            format!("{:.0} ±{:.0}", cells[0].0, cells[0].1),
            format!("{:.0} ±{:.0}", cells[1].0, cells[1].1),
            format!("{:.0} ±{:.0}", cells[2].0, cells[2].1),
            format!("{:.2}x", cells[2].0 / cells[1].0),
            format!("{:.2}x", cells[2].0 / cells[0].0),
        ]);
    }
    println!("{t}");
    println!(
        "paper: RedisH-full matches or exceeds Redis-pm (+7% on Load) and is \
         2.4-11.7x faster than RedisH-intra"
    );
    obs.gauge("bench.wall_ms", t_all.elapsed().as_secs_f64() * 1e3);
    drop(run_span);
    bench::write_metrics("BENCH_fig4_redis_ycsb.json", &obs);
}
