//! `bench_gate` — the CI bench-regression gate.
//!
//! Compares fresh `BENCH_*.json` artifacts (written by `explore_bench` and
//! `fault_bench`) against the checked-in baselines under
//! `crates/bench/baselines/`, applying the rules in [`bench::gate`]:
//! `bench.*_ms` gauges may not regress more than 25 %, and
//! `bench.*pass_rate` / `bench.*healed_clean` / `bench.*_floor` gauges may
//! not drop at all.
//!
//! ```text
//! bench_gate                  # gate fresh artifacts against the baselines
//! bench_gate --rebase         # rewrite the baselines from fresh artifacts
//! bench_gate --doctor         # self-test: corrupt baselines in memory so
//!                             # the gate MUST fail (exit 1 expected)
//! bench_gate --report-only    # print the full comparison but always exit
//!                             # 0 (the scheduled drift job: visible, not
//!                             # blocking)
//! bench_gate --fresh <dir>    # where the fresh artifacts live
//! bench_gate --baselines <dir>
//! ```
//!
//! Exit status: 0 when every gated metric is within tolerance (or
//! `--report-only` was given), 1 otherwise.

use bench::gate::{self, GATED_FILES};
use pmobs::Snapshot;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn load(path: &Path) -> Result<Snapshot, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    Snapshot::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut fresh_dir = bench::workspace_root();
    let mut base_dir = bench::workspace_root().join("crates/bench/baselines");
    let mut doctor = false;
    let mut rebase = false;
    let mut report_only = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--fresh" | "--baselines" => {
                let Some(v) = args.get(i + 1) else {
                    eprintln!("bench_gate: `{}` needs a directory", args[i]);
                    return ExitCode::FAILURE;
                };
                if args[i] == "--fresh" {
                    fresh_dir = PathBuf::from(v);
                } else {
                    base_dir = PathBuf::from(v);
                }
                i += 1;
            }
            "--doctor" => doctor = true,
            "--rebase" => rebase = true,
            "--report-only" => report_only = true,
            a => {
                eprintln!("bench_gate: unknown argument `{a}`");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    if rebase {
        if let Err(e) = std::fs::create_dir_all(&base_dir) {
            eprintln!("bench_gate: create {}: {e}", base_dir.display());
            return ExitCode::FAILURE;
        }
        for file in GATED_FILES {
            let fresh = match load(&fresh_dir.join(file)) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("bench_gate: --rebase needs a fresh artifact: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let base = gate::rebase(&fresh);
            let path = base_dir.join(file);
            let json = {
                // Stash the headroom factor in the file so a human reading
                // the baseline knows the walls are not raw measurements.
                let mut b = base;
                b.gauges
                    .insert("baseline.headroom".to_string(), gate::REBASE_HEADROOM);
                b.to_json()
            };
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("bench_gate: write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!("rebased {}", path.display());
        }
        return ExitCode::SUCCESS;
    }

    let mut ok = true;
    for file in GATED_FILES {
        let mut base = match load(&base_dir.join(file)) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("bench_gate: no baseline ({e}); run `bench_gate --rebase`");
                ok = false;
                continue;
            }
        };
        let fresh = match load(&fresh_dir.join(file)) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("bench_gate: no fresh artifact ({e}); run the bench binaries first");
                ok = false;
                continue;
            }
        };
        if doctor {
            gate::doctor(&mut base);
        }
        let r = gate::compare(file, &base, &fresh);
        for line in &r.infos {
            println!("  {line}");
        }
        for line in &r.failures {
            eprintln!("  FAIL {line}");
        }
        ok &= r.passed();
    }
    if ok {
        println!("bench_gate: all gated metrics within tolerance");
        ExitCode::SUCCESS
    } else if report_only {
        eprintln!("bench_gate: drift detected (report-only mode, not failing)");
        ExitCode::SUCCESS
    } else {
        eprintln!("bench_gate: regression gate FAILED");
        ExitCode::FAILURE
    }
}
