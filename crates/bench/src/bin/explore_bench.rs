//! Crash-state exploration benchmark: throughput (crash states per second)
//! and coverage versus checkpoint-based crash sampling, emitted as
//! `BENCH_explore.json` — a `hippo.metrics.v1` snapshot the CI
//! bench-regression gate (`bench_gate`) compares against its checked-in
//! baseline.
//!
//! Two artifacts:
//!
//! 1. **Coverage** — the unfenced-flush-reordering demo is clean under the
//!    dynamic checkpoint checker (its blind spot) but caught by exploration;
//!    an `Exploration`-sourced repair heals it and re-exploration is clean
//!    (`bench.explore.healed_clean`, a gated no-drop metric).
//! 2. **Throughput** — states/sec exploring the correct P-CLHT and the
//!    ordering demo at a fixed seed and budget, serial and parallel. Wall
//!    times land in gated `*.wall_ms` gauges.

use hippocrates::{BugSource, Hippocrates, RepairOptions};
use pmexplore::{run_and_explore, ExploreOptions};
use pmobs::Obs;
use pmvm::VmOptions;
use std::time::Instant;

const DEMO_SRC: &str = include_str!("../../../../examples/ordering_demo.pmc");
const BUDGET: usize = 128;
const SEED: u64 = 0;

fn opts(obs: &Obs, jobs: usize) -> ExploreOptions {
    ExploreOptions {
        budget: BUDGET,
        seed: SEED,
        jobs,
        obs: obs.clone(),
        ..ExploreOptions::default()
    }
}

/// Repeats per throughput row: the demo workloads finish in fractions of a
/// millisecond, so a single sample is dominated by scheduler luck (thread
/// spawn latency, a neighbour's cache pressure) — exactly the noise that
/// made the gated floors flake when the bench ran right after the heavier
/// CI gates. The **median** wall across repeats discards one bad sample
/// without the minimum's bias (min rewards j1, whose best case has no
/// thread-spawn floor, and would skew the `j4_over_j1` ratio). The run is
/// deterministic in the fixed seed, so every repeat explores identical
/// candidates.
const REPEATS: usize = 5;

/// Runs one throughput measurement (median of [`REPEATS`]) and returns the
/// wall seconds, so callers can derive cross-row ratios (the `j4_over_j1`
/// parallel-speedup gauge).
fn throughput_row(obs: &Obs, name: &str, m: &pmir::Module, entry: &str, jobs: usize) -> f64 {
    let _span = obs.span(&format!("bench.throughput.{name}.j{jobs}"));
    let mut walls = Vec::with_capacity(REPEATS);
    let mut x = None;
    for _ in 0..REPEATS {
        let t0 = Instant::now();
        let run = run_and_explore(m, entry, &opts(obs, jobs)).expect("exploration runs");
        walls.push(t0.elapsed().as_secs_f64());
        x = Some(run);
    }
    walls.sort_by(f64::total_cmp);
    let secs = walls[walls.len() / 2];
    let x = x.expect("at least one repeat ran");
    let candidates = x.report.stats.candidates;
    let states_per_sec = if secs > 0.0 {
        candidates as f64 / secs
    } else {
        0.0
    };
    let key = format!("bench.explore.{name}.j{jobs}");
    obs.add(&format!("{key}.candidates"), candidates as u64);
    obs.add(
        &format!("{key}.distinct_states"),
        x.report.stats.distinct_states as u64,
    );
    obs.add(&format!("{key}.findings"), x.report.findings.len() as u64);
    obs.gauge(&format!("{key}.wall_ms"), secs * 1e3);
    obs.gauge(&format!("{key}.states_per_sec"), states_per_sec);
    println!(
        "  {name:<16} jobs={jobs}  {candidates:>4} states ({} distinct, {} inconsistent) \
         in {secs:.3}s  ->  {states_per_sec:.0} states/s",
        x.report.stats.distinct_states,
        x.report.findings.len(),
    );
    secs
}

/// Emits the gated parallel-speedup gauge: wall-time ratio j1/j4, so 1.0
/// means "4 workers bought nothing" and below 1.0 means parallel explore is
/// an outright pessimization — the regression `bench_gate` exists to catch.
fn speedup_gauge(obs: &Obs, name: &str, j1_secs: f64, j4_secs: f64) {
    let ratio = if j4_secs > 0.0 {
        j1_secs / j4_secs
    } else {
        0.0
    };
    obs.gauge(&format!("bench.explore.{name}.j4_over_j1"), ratio);
    println!("  {name:<16} j4 speedup over j1: {ratio:.2}x");
}

fn main() {
    let obs = Obs::enabled();
    let t_all = Instant::now();
    println!("Crash-state exploration — coverage vs. crashpoint sampling, and states/sec\n");
    obs.add("bench.explore.budget", BUDGET as u64);
    obs.add("bench.explore.seed", SEED);

    // --- Coverage: the dynamic checker's blind spot. -----------------------
    let cov_span = obs.span("bench.coverage");
    let mut demo = pmlang::compile_one("ordering_demo.pmc", DEMO_SRC).expect("demo compiles");
    let dynamic =
        pmcheck::run_and_check(&demo, "main", VmOptions::default()).expect("dynamic check runs");
    let crashpoint_bugs = dynamic.report.bugs.len();

    let explored = run_and_explore(&demo, "main", &opts(&obs, 1)).expect("exploration runs");
    let exploration_bugs = explored.report.to_check_report(&explored.trace).bugs.len();
    println!(
        "coverage on the reordering demo: crashpoint checker {crashpoint_bugs} bug(s), \
         exploration {exploration_bugs} bug(s)"
    );
    obs.add(
        "bench.explore.coverage.crashpoint_bugs",
        crashpoint_bugs as u64,
    );
    obs.add(
        "bench.explore.coverage.exploration_bugs",
        exploration_bugs as u64,
    );
    assert_eq!(crashpoint_bugs, 0, "the demo is the checker's blind spot");
    assert!(
        exploration_bugs > 0,
        "exploration must catch the reordering"
    );
    drop(cov_span);

    // Heal it from the exploration report, then re-verify at full budget.
    let heal_span = obs.span("bench.heal");
    let outcome = Hippocrates::new(RepairOptions {
        bug_source: BugSource::Exploration,
        explore_budget: BUDGET,
        explore_seed: SEED,
        obs: obs.clone(),
        ..RepairOptions::default()
    })
    .repair_until_clean(&mut demo, "main")
    .expect("repair runs");
    let healed = run_and_explore(&demo, "main", &opts(&obs, 1)).expect("re-exploration runs");
    let healed_clean = outcome.clean && healed.report.is_clean();
    println!(
        "healed with {} fix(es); re-exploration clean: {healed_clean}\n",
        outcome.fixes.len()
    );
    obs.gauge(
        "bench.explore.healed_clean",
        if healed_clean { 1.0 } else { 0.0 },
    );
    assert!(healed_clean, "exploration-sourced repair must converge");
    drop(heal_span);

    // --- Throughput: states/sec at a fixed seed and budget. ----------------
    println!("throughput (budget {BUDGET}, seed {SEED}):");
    let pclht = pmapps::pclht::build_correct().expect("pclht builds");
    let demo_clean = demo; // the healed demo: every candidate boots recovery
    let demo_j1 = throughput_row(&obs, "ordering_demo", &demo_clean, "main", 1);
    let demo_j4 = throughput_row(&obs, "ordering_demo", &demo_clean, "main", 4);
    let pclht_j1 = throughput_row(&obs, "pclht", &pclht, pmapps::pclht::ENTRY, 1);
    let pclht_j4 = throughput_row(&obs, "pclht", &pclht, pmapps::pclht::ENTRY, 4);
    speedup_gauge(&obs, "ordering_demo", demo_j1, demo_j4);
    speedup_gauge(&obs, "pclht", pclht_j1, pclht_j4);

    obs.gauge("bench.wall_ms", t_all.elapsed().as_secs_f64() * 1e3);
    println!();
    bench::write_metrics("BENCH_explore.json", &obs);
}
