//! Crash-state exploration benchmark: throughput (crash states per second)
//! and coverage versus checkpoint-based crash sampling, emitted as
//! `BENCH_explore.json` for the CI bench smoke.
//!
//! Two artifacts:
//!
//! 1. **Coverage** — the unfenced-flush-reordering demo is clean under the
//!    dynamic checkpoint checker (its blind spot) but caught by exploration;
//!    an `Exploration`-sourced repair heals it and re-exploration is clean.
//! 2. **Throughput** — states/sec exploring the correct P-CLHT and the
//!    ordering demo at a fixed seed and budget, serial and parallel.

use hippocrates::{BugSource, Hippocrates, RepairOptions};
use pmexplore::{run_and_explore, ExploreOptions};
use pmvm::VmOptions;
use serde::Serialize;
use std::time::Instant;

const DEMO_SRC: &str = include_str!("../../../../examples/ordering_demo.pmc");
const BUDGET: usize = 128;
const SEED: u64 = 0;

#[derive(Serialize)]
struct Coverage {
    demo: &'static str,
    crashpoint_bugs: usize,
    exploration_bugs: usize,
    healed_clean: bool,
}

#[derive(Serialize)]
struct Throughput {
    target: &'static str,
    jobs: usize,
    candidates: usize,
    distinct_states: usize,
    findings: usize,
    secs: f64,
    states_per_sec: f64,
}

#[derive(Serialize)]
struct BenchOut {
    budget: usize,
    seed: u64,
    coverage: Coverage,
    throughput: Vec<Throughput>,
}

fn opts(jobs: usize) -> ExploreOptions {
    ExploreOptions {
        budget: BUDGET,
        seed: SEED,
        jobs,
        ..ExploreOptions::default()
    }
}

fn throughput_row(name: &'static str, m: &pmir::Module, entry: &str, jobs: usize) -> Throughput {
    let t0 = Instant::now();
    let x = run_and_explore(m, entry, &opts(jobs)).expect("exploration runs");
    let secs = t0.elapsed().as_secs_f64();
    let row = Throughput {
        target: name,
        jobs,
        candidates: x.report.stats.candidates,
        distinct_states: x.report.stats.distinct_states,
        findings: x.report.findings.len(),
        secs,
        states_per_sec: if secs > 0.0 {
            x.report.stats.candidates as f64 / secs
        } else {
            0.0
        },
    };
    println!(
        "  {name:<16} jobs={jobs}  {:>4} states ({} distinct, {} inconsistent) \
         in {secs:.3}s  ->  {:.0} states/s",
        row.candidates, row.distinct_states, row.findings, row.states_per_sec
    );
    row
}

fn main() {
    println!("Crash-state exploration — coverage vs. crashpoint sampling, and states/sec\n");

    // --- Coverage: the dynamic checker's blind spot. -----------------------
    let mut demo = pmlang::compile_one("ordering_demo.pmc", DEMO_SRC).expect("demo compiles");
    let dynamic =
        pmcheck::run_and_check(&demo, "main", VmOptions::default()).expect("dynamic check runs");
    let crashpoint_bugs = dynamic.report.bugs.len();

    let explored = run_and_explore(&demo, "main", &opts(1)).expect("exploration runs");
    let exploration_bugs = explored.report.to_check_report(&explored.trace).bugs.len();
    println!(
        "coverage on the reordering demo: crashpoint checker {crashpoint_bugs} bug(s), \
         exploration {exploration_bugs} bug(s)"
    );
    assert_eq!(crashpoint_bugs, 0, "the demo is the checker's blind spot");
    assert!(exploration_bugs > 0, "exploration must catch the reordering");

    // Heal it from the exploration report, then re-verify at full budget.
    let outcome = Hippocrates::new(RepairOptions {
        bug_source: BugSource::Exploration,
        explore_budget: BUDGET,
        explore_seed: SEED,
        ..RepairOptions::default()
    })
    .repair_until_clean(&mut demo, "main")
    .expect("repair runs");
    let healed = run_and_explore(&demo, "main", &opts(1)).expect("re-exploration runs");
    let healed_clean = outcome.clean && healed.report.is_clean();
    println!(
        "healed with {} fix(es); re-exploration clean: {healed_clean}\n",
        outcome.fixes.len()
    );
    assert!(healed_clean, "exploration-sourced repair must converge");

    // --- Throughput: states/sec at a fixed seed and budget. ----------------
    println!("throughput (budget {BUDGET}, seed {SEED}):");
    let pclht = pmapps::pclht::build_correct().expect("pclht builds");
    let demo_clean = demo; // the healed demo: every candidate boots recovery
    let throughput = vec![
        throughput_row("ordering_demo", &demo_clean, "main", 1),
        throughput_row("ordering_demo", &demo_clean, "main", 4),
        throughput_row("pclht", &pclht, pmapps::pclht::ENTRY, 1),
        throughput_row("pclht", &pclht, pmapps::pclht::ENTRY, 4),
    ];

    let out = BenchOut {
        budget: BUDGET,
        seed: SEED,
        coverage: Coverage {
            demo: "examples/ordering_demo.pmc",
            crashpoint_bugs,
            exploration_bugs,
            healed_clean,
        },
        throughput,
    };
    let path = "BENCH_explore.json";
    std::fs::write(path, serde_json::to_string_pretty(&out).unwrap() + "\n")
        .expect("write BENCH_explore.json");
    println!("\nwrote {path}");
}
