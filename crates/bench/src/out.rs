//! Shared output-path handling and `hippo.metrics.v1` emission for the
//! bench binaries.
//!
//! Historically every binary wrote its `BENCH_*.json` relative to the
//! *current working directory*, so running a harness from anywhere but the
//! workspace root scattered artifacts and the CI smoke lost them. All
//! binaries now resolve through [`out_path`]: an explicit `--out <path>`
//! wins (a directory keeps the canonical file name, anything else is used
//! as the file path verbatim), and the default is the workspace root —
//! stable no matter where the binary is launched from.

use pmobs::Obs;
use std::path::{Path, PathBuf};

/// The workspace root, two levels up from this crate's manifest.
pub fn workspace_root() -> PathBuf {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    root.canonicalize().unwrap_or(root)
}

/// Where `file_name` should land, honoring the common `--out` flag from
/// the process argv. Defaults to [`workspace_root`]`/file_name`.
pub fn out_path(file_name: &str) -> PathBuf {
    let args: Vec<String> = std::env::args().collect();
    out_path_from(&args, file_name)
}

/// [`out_path`] over an explicit argv (unit-testable).
pub fn out_path_from(args: &[String], file_name: &str) -> PathBuf {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--out" {
            if let Some(v) = it.next() {
                let p = PathBuf::from(v);
                return if p.is_dir() || v.ends_with('/') {
                    p.join(file_name)
                } else {
                    p
                };
            }
        }
    }
    workspace_root().join(file_name)
}

/// Positional arguments from the process argv with the common
/// `--out <path>` flag stripped, so binaries that take numeric positionals
/// (e.g. `fig4_redis_ycsb`) still accept `--out`.
pub fn positional_args() -> Vec<String> {
    let mut out = vec![];
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        if a == "--out" {
            let _ = it.next();
        } else {
            out.push(a);
        }
    }
    out
}

/// Writes the registry snapshot as `hippo.metrics.v1` JSON to
/// [`out_path`]`(file_name)` and returns the path written.
///
/// # Panics
///
/// Panics when the file cannot be written — a bench artifact that silently
/// fails to land would let the CI gate pass on stale data.
pub fn write_metrics(file_name: &str, obs: &Obs) -> PathBuf {
    let path = out_path(file_name);
    std::fs::write(&path, obs.snapshot().to_json())
        .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("wrote {} ({})", path.display(), pmobs::SCHEMA);
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_to_workspace_root() {
        let p = out_path_from(&argv(&["bench"]), "BENCH_x.json");
        assert_eq!(p, workspace_root().join("BENCH_x.json"));
        assert!(
            workspace_root().join("Cargo.toml").exists(),
            "workspace root must hold the workspace manifest"
        );
    }

    #[test]
    fn out_flag_takes_a_file_or_a_directory() {
        let p = out_path_from(
            &argv(&["bench", "--out", "/tmp/custom.json"]),
            "BENCH_x.json",
        );
        assert_eq!(p, PathBuf::from("/tmp/custom.json"));
        let p = out_path_from(&argv(&["bench", "--out", "/tmp/"]), "BENCH_x.json");
        assert_eq!(p, PathBuf::from("/tmp/BENCH_x.json"));
        // An existing directory without the trailing slash also works.
        let p = out_path_from(&argv(&["bench", "--out", "/tmp"]), "BENCH_x.json");
        assert_eq!(p, PathBuf::from("/tmp/BENCH_x.json"));
        // A dangling --out falls back to the default.
        let p = out_path_from(&argv(&["bench", "--out"]), "BENCH_x.json");
        assert_eq!(p, workspace_root().join("BENCH_x.json"));
    }
}
