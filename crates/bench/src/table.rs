//! Fixed-width text tables for harness output.

/// A simple left-aligned text table.
#[derive(Debug, Default, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: vec![],
        }
    }

    /// Appends a row (padded or truncated to the header width).
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut r: Vec<String> = cells.into_iter().map(Into::into).collect();
        r.resize(self.header.len(), String::new());
        self.rows.push(r);
        self
    }

    /// Renders with column-wise padding.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.chars().count();
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = width[i]))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &width));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["name", "value"]);
        t.row(["a", "1"]).row(["longer", "22"]);
        let s = t.render();
        assert!(s.contains("name    value"), "{s}");
        assert!(s.contains("longer  22"), "{s}");
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["only"]);
        assert!(t.render().contains("only"));
    }
}
