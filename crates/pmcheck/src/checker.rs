//! The store-state machine over traces.

use crate::bug::{Bug, BugKind, CheckReport, Checkpoint, RedundantFlush};
use pmtrace::{Event, EventKind, Trace};
use std::collections::BTreeSet;

const CACHE_LINE: u64 = 64;

fn lines_of(addr: u64, len: u64) -> BTreeSet<u64> {
    let mut lines = BTreeSet::new();
    let mut line = addr & !(CACHE_LINE - 1);
    while line < addr + len.max(1) {
        lines.insert(line);
        line += CACHE_LINE;
    }
    lines
}

/// One tracked (not yet durable) store.
#[derive(Debug)]
struct StoreRecord {
    event: Event,
    addr: u64,
    len: u64,
    /// Lines not yet covered by any flush.
    unflushed: BTreeSet<u64>,
    /// Lines flushed weakly, awaiting a fence.
    pending: BTreeSet<u64>,
    /// Whether any flush ever touched this store.
    saw_flush: bool,
}

impl StoreRecord {
    fn is_durable(&self) -> bool {
        self.unflushed.is_empty() && self.pending.is_empty()
    }
}

/// Runs the durability state machine over a complete trace and reports
/// every non-durable store at every checkpoint. See the
/// [crate docs](crate) for the classification rules.
///
/// Equivalent to feeding every event into an [`OnlineChecker`] and calling
/// [`OnlineChecker::finish`].
pub fn check_trace(trace: &Trace) -> CheckReport {
    let mut c = OnlineChecker::new();
    for e in &trace.events {
        c.feed(e);
    }
    c.finish()
}

/// The streaming form of the checker: feed events as they happen (e.g.
/// attached live to a VM run), keeping memory proportional to the number of
/// *non-durable* stores rather than the trace length — how the real
/// pmemcheck instrumentations operate.
///
/// # Example
///
/// ```
/// use pmcheck::OnlineChecker;
/// use pmtrace::{Event, EventKind};
///
/// let mut checker = OnlineChecker::new();
/// checker.feed(&Event {
///     seq: 0,
///     kind: EventKind::Store { addr: 0x3000_0000_0000, len: 8 },
///     at: None,
///     loc: None,
///     stack: vec![],
/// });
/// checker.feed(&Event {
///     seq: 1, kind: EventKind::ProgramEnd, at: None, loc: None, stack: vec![],
/// });
/// let report = checker.finish();
/// assert_eq!(report.bugs.len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct OnlineChecker {
    report: CheckReport,
    live: Vec<StoreRecord>,
    last_fence_seq: Option<u64>,
    crash_points: u64,
}

impl OnlineChecker {
    /// A fresh checker.
    pub fn new() -> Self {
        OnlineChecker::default()
    }

    /// Number of stores currently tracked as non-durable (the checker's
    /// working-set size).
    pub fn live_stores(&self) -> usize {
        self.live.len()
    }

    /// Processes one event.
    pub fn feed(&mut self, e: &Event) {
        match &e.kind {
            EventKind::Store { addr, len } => {
                self.report.stores_checked += 1;
                let all = lines_of(*addr, *len);
                self.live.push(StoreRecord {
                    event: e.clone(),
                    addr: *addr,
                    len: *len,
                    unflushed: all,
                    pending: BTreeSet::new(),
                    saw_flush: false,
                });
            }
            EventKind::Flush { kind, addr } => {
                self.report.flushes_seen += 1;
                let line = addr & !(CACHE_LINE - 1);
                let mut hit = false;
                for rec in self.live.iter_mut() {
                    if rec.unflushed.remove(&line) {
                        hit = true;
                        rec.saw_flush = true;
                        if kind.is_weakly_ordered() {
                            rec.pending.insert(line);
                        }
                        // A strong flush (CLFLUSH) makes the line durable
                        // immediately: nothing is added to `pending`.
                    } else if rec.pending.contains(&line) {
                        // Re-flushing a pending line is allowed; a strong
                        // flush upgrades it to durable.
                        hit = true;
                        if !kind.is_weakly_ordered() {
                            rec.pending.remove(&line);
                        }
                    }
                }
                if !hit {
                    self.report.redundant_flushes.push(RedundantFlush {
                        addr: *addr,
                        at: e.at.clone(),
                        loc: e.loc.clone(),
                        seq: e.seq,
                    });
                }
                self.live.retain(|r| !r.is_durable());
            }
            EventKind::Fence { .. } => {
                self.report.fences_seen += 1;
                self.last_fence_seq = Some(e.seq);
                for rec in self.live.iter_mut() {
                    rec.pending.clear();
                }
                self.live.retain(|r| !r.is_durable());
            }
            EventKind::CrashPoint => {
                self.crash_points += 1;
                audit(
                    &self.live,
                    Checkpoint::CrashPoint(self.crash_points),
                    self.last_fence_seq,
                    &mut self.report,
                );
            }
            EventKind::ProgramEnd => {
                audit(
                    &self.live,
                    Checkpoint::ProgramEnd,
                    self.last_fence_seq,
                    &mut self.report,
                );
            }
            EventKind::RegisterPool { .. } => {}
        }
    }

    /// Consumes the checker and returns the accumulated report.
    pub fn finish(self) -> CheckReport {
        self.report
    }
}

fn audit(
    live: &[StoreRecord],
    checkpoint: Checkpoint,
    last_fence_seq: Option<u64>,
    report: &mut CheckReport,
) {
    for rec in live {
        debug_assert!(!rec.is_durable());
        let fence_after_store = last_fence_seq.is_some_and(|f| f > rec.event.seq);
        let kind = if rec.unflushed.is_empty() {
            // Fully flushed, but some lines still awaiting a fence.
            BugKind::MissingFence
        } else if fence_after_store {
            // A fence exists downstream of the store; only flushes are
            // missing (inserting flushes before that fence would have
            // sufficed). This mirrors pmemcheck's "not flushed" report.
            BugKind::MissingFlush
        } else {
            BugKind::MissingFlushFence
        };
        report.bugs.push(Bug {
            kind,
            addr: rec.addr,
            len: rec.len,
            store_at: rec.event.at.clone(),
            store_loc: rec.event.loc.clone(),
            stack: rec.event.stack.clone(),
            store_seq: rec.event.seq,
            checkpoint,
            unflushed_lines: rec.unflushed.iter().copied().collect(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmtrace::{FenceKind, FlushKind};

    const PM: u64 = 0x3000_0000_0000;

    fn ev(seq: u64, kind: EventKind) -> Event {
        Event {
            seq,
            kind,
            at: None,
            loc: None,
            stack: vec![],
        }
    }

    fn store(seq: u64, addr: u64, len: u64) -> Event {
        ev(seq, EventKind::Store { addr, len })
    }

    fn flush(seq: u64, addr: u64) -> Event {
        ev(
            seq,
            EventKind::Flush {
                kind: FlushKind::Clwb,
                addr,
            },
        )
    }

    fn fence(seq: u64) -> Event {
        ev(
            seq,
            EventKind::Fence {
                kind: FenceKind::Sfence,
            },
        )
    }

    fn end(seq: u64) -> Event {
        ev(seq, EventKind::ProgramEnd)
    }

    #[test]
    fn clean_program() {
        let t: Trace = vec![store(0, PM, 8), flush(1, PM), fence(2), end(3)]
            .into_iter()
            .collect();
        let r = check_trace(&t);
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn missing_flush_and_fence() {
        let t: Trace = vec![store(0, PM, 8), end(1)].into_iter().collect();
        let r = check_trace(&t);
        assert_eq!(r.bugs.len(), 1);
        assert_eq!(r.bugs[0].kind, BugKind::MissingFlushFence);
        assert_eq!(r.bugs[0].unflushed_lines, vec![PM]);
    }

    #[test]
    fn missing_fence_only() {
        let t: Trace = vec![store(0, PM, 8), flush(1, PM), end(2)]
            .into_iter()
            .collect();
        let r = check_trace(&t);
        assert_eq!(r.bugs.len(), 1);
        assert_eq!(r.bugs[0].kind, BugKind::MissingFence);
        assert!(r.bugs[0].unflushed_lines.is_empty());
    }

    #[test]
    fn missing_flush_with_downstream_fence() {
        let t: Trace = vec![store(0, PM, 8), fence(1), end(2)]
            .into_iter()
            .collect();
        let r = check_trace(&t);
        assert_eq!(r.bugs.len(), 1);
        assert_eq!(r.bugs[0].kind, BugKind::MissingFlush);
    }

    #[test]
    fn clflush_is_durable_without_fence() {
        let t: Trace = vec![
            store(0, PM, 8),
            ev(
                1,
                EventKind::Flush {
                    kind: FlushKind::Clflush,
                    addr: PM,
                },
            ),
            end(2),
        ]
        .into_iter()
        .collect();
        let r = check_trace(&t);
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn multi_line_store_needs_every_line_flushed() {
        // A 100-byte store spans two lines; only the first is flushed.
        let t: Trace = vec![store(0, PM, 100), flush(1, PM), fence(2), end(3)]
            .into_iter()
            .collect();
        let r = check_trace(&t);
        assert_eq!(r.bugs.len(), 1);
        assert_eq!(r.bugs[0].kind, BugKind::MissingFlush);
        assert_eq!(r.bugs[0].unflushed_lines, vec![PM + 64]);

        // Flushing both lines fixes it.
        let t: Trace = vec![
            store(0, PM, 100),
            flush(1, PM),
            flush(2, PM + 64),
            fence(3),
            end(4),
        ]
        .into_iter()
        .collect();
        assert!(check_trace(&t).is_clean());
    }

    #[test]
    fn fence_before_flush_does_not_help() {
        let t: Trace = vec![store(0, PM, 8), fence(1), flush(2, PM), end(3)]
            .into_iter()
            .collect();
        let r = check_trace(&t);
        assert_eq!(r.bugs.len(), 1);
        assert_eq!(r.bugs[0].kind, BugKind::MissingFence);
    }

    #[test]
    fn crash_point_audits_midway() {
        // Store is durable by the end, but not by the crash point.
        let t: Trace = vec![
            store(0, PM, 8),
            ev(1, EventKind::CrashPoint),
            flush(2, PM),
            fence(3),
            end(4),
        ]
        .into_iter()
        .collect();
        let r = check_trace(&t);
        assert_eq!(r.bugs.len(), 1);
        assert_eq!(r.bugs[0].checkpoint, Checkpoint::CrashPoint(1));
    }

    #[test]
    fn same_bug_at_two_checkpoints_dedupes() {
        let t: Trace = vec![
            store(0, PM, 8),
            ev(1, EventKind::CrashPoint),
            ev(2, EventKind::CrashPoint),
            end(3),
        ]
        .into_iter()
        .collect();
        let r = check_trace(&t);
        assert_eq!(r.bugs.len(), 3);
        // Each checkpoint is a distinct durability requirement, so all three
        // reports survive dedup; they still reduce to a single fix because
        // they share an anchor.
        assert_eq!(r.deduped_bugs().len(), 3);
    }

    #[test]
    fn redundant_flush_detected() {
        let t: Trace = vec![
            store(0, PM, 8),
            flush(1, PM),
            fence(2),
            flush(3, PM), // line already durable
            end(4),
        ]
        .into_iter()
        .collect();
        let r = check_trace(&t);
        assert!(r.is_clean());
        assert_eq!(r.redundant_flushes.len(), 1);
        assert_eq!(r.redundant_flushes[0].seq, 3);
    }

    #[test]
    fn two_stores_same_line_one_flush() {
        // Both stores' line is covered by one flush; both become durable.
        let t: Trace = vec![
            store(0, PM, 8),
            store(1, PM + 8, 8),
            flush(2, PM + 4),
            fence(3),
            end(4),
        ]
        .into_iter()
        .collect();
        assert!(check_trace(&t).is_clean());
    }

    #[test]
    fn flush_before_store_does_not_cover_it() {
        let t: Trace = vec![flush(0, PM), store(1, PM, 8), fence(2), end(3)]
            .into_iter()
            .collect();
        let r = check_trace(&t);
        assert_eq!(r.bugs.len(), 1);
        assert_eq!(r.bugs[0].kind, BugKind::MissingFlush);
        // And the early flush was redundant.
        assert_eq!(r.redundant_flushes.len(), 1);
    }
}

#[cfg(test)]
mod online_tests {
    use super::*;
    use pmtrace::{FenceKind, FlushKind};

    const PM: u64 = 0x3000_0000_0000;

    fn ev(seq: u64, kind: EventKind) -> Event {
        Event {
            seq,
            kind,
            at: None,
            loc: None,
            stack: vec![],
        }
    }

    #[test]
    fn working_set_shrinks_as_stores_become_durable() {
        let mut c = OnlineChecker::new();
        for i in 0..16u64 {
            c.feed(&ev(
                i,
                EventKind::Store {
                    addr: PM + i * 64,
                    len: 8,
                },
            ));
        }
        assert_eq!(c.live_stores(), 16);
        for i in 0..16u64 {
            c.feed(&ev(
                100 + i,
                EventKind::Flush {
                    kind: FlushKind::Clwb,
                    addr: PM + i * 64,
                },
            ));
        }
        assert_eq!(c.live_stores(), 16, "weak flushes keep stores pending");
        c.feed(&ev(
            200,
            EventKind::Fence {
                kind: FenceKind::Sfence,
            },
        ));
        assert_eq!(c.live_stores(), 0, "the fence retires everything");
        c.feed(&ev(201, EventKind::ProgramEnd));
        assert!(c.finish().is_clean());
    }

    #[test]
    fn online_matches_batch_on_real_trace() {
        let src = r#"
            fn main() {
                var p: ptr = pmem_map(0, 4096);
                store8(p, 0, 1);
                clwb(p);
                store8(p, 64, 2);
                crashpoint();
                sfence();
            }
        "#;
        let m = pmlang::compile_one("t.pmc", src).unwrap();
        let trace = pmvm::Vm::new(pmvm::VmOptions::default())
            .run(&m, "main")
            .unwrap()
            .trace
            .unwrap();
        let batch = check_trace(&trace);
        let mut online = OnlineChecker::new();
        for e in &trace.events {
            online.feed(e);
        }
        assert_eq!(batch, online.finish());
    }
}
