//! Convenience driver: execute a module under the VM and check its trace in
//! one call (the "run it under pmemcheck" step of the pipeline).

use crate::bug::CheckReport;
use crate::checker::check_trace;
use pmir::Module;
use pmtrace::Trace;
use pmvm::{RunResult, Vm, VmError, VmOptions};

/// A completed checked execution.
#[derive(Debug)]
pub struct CheckedRun {
    /// The VM run (output, stats, final machine state).
    pub run: RunResult,
    /// The recorded trace.
    pub trace: Trace,
    /// The durability report.
    pub report: CheckReport,
}

/// Runs `entry` in `module` with tracing forced on, then checks the trace.
///
/// # Errors
///
/// Propagates any [`VmError`] trap from execution.
pub fn run_and_check(
    module: &Module,
    entry: &str,
    mut opts: VmOptions,
) -> Result<CheckedRun, VmError> {
    opts.trace = true;
    let mut run = Vm::new(opts).run(module, entry)?;
    let trace = run.trace.take().expect("tracing was enabled");
    let report = check_trace(&trace);
    Ok(CheckedRun { run, trace, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bug::BugKind;
    use pmir::{FenceKind, FlushKind, FunctionBuilder, Type};

    #[test]
    fn buggy_then_fixed() {
        let mut m = Module::new();
        let f = m.declare_function("main", vec![], Type::Void);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.entry_block();
        b.switch_to(e);
        let pool = b.pmem_map(4096i64, 0);
        let st = b.store(Type::int(8), pool, 7i64);
        b.ret(None);
        b.finish();

        let checked = run_and_check(&m, "main", VmOptions::default()).unwrap();
        assert_eq!(checked.report.bugs.len(), 1);
        assert_eq!(checked.report.bugs[0].kind, BugKind::MissingFlushFence);
        // The report's IrRef points at the exact store instruction.
        assert_eq!(checked.report.bugs[0].store_at.as_ref().unwrap().inst, st.0);

        // Insert the fix by hand; the report comes back clean.
        let func = m.function_mut(f);
        let pool_val = func.inst(pmir::InstId(0)).result.unwrap();
        let fl = pmir::rewrite::insert_after(
            func,
            st,
            pmir::Op::Flush {
                kind: FlushKind::Clwb,
                addr: pmir::Operand::Value(pool_val),
            },
            None,
        );
        pmir::rewrite::insert_after(
            func,
            fl,
            pmir::Op::Fence {
                kind: FenceKind::Sfence,
            },
            None,
        );
        let checked = run_and_check(&m, "main", VmOptions::default()).unwrap();
        assert!(checked.report.is_clean(), "{}", checked.report.render());
    }
}
