//! `pmcheck` — a pmemcheck-style durability-bug detector for simulated PM
//! programs.
//!
//! The checker consumes the [`pmtrace::Trace`] emitted by `pmvm` and runs
//! the classic store-state machine: every PM store is *dirty* until a flush
//! covers each of its cache lines, *pending* until a fence drains the weak
//! flushes, and only then *durable*. At every durability checkpoint (an
//! explicit `crashpoint` or orderly program end) all non-durable stores are
//! reported, classified exactly as in the paper (§2.1):
//!
//! * **missing-flush** — no flush covers the store, but a later fence exists;
//! * **missing-fence** — flushed, but no fence orders the flush;
//! * **missing-flush&fence** — neither.
//!
//! It also reports *redundant flushes* (flushes of clean lines) as
//! performance diagnostics — which Hippocrates deliberately does **not** fix
//! (paper §7).
//!
//! # Example
//!
//! ```
//! use pmir::{Module, FunctionBuilder, Type};
//! use pmcheck::{check_trace, BugKind};
//!
//! let mut m = Module::new();
//! let f = m.declare_function("main", vec![], Type::Void);
//! let mut b = FunctionBuilder::new(&mut m, f);
//! let e = b.entry_block();
//! b.switch_to(e);
//! let pool = b.pmem_map(4096i64, 0);
//! b.store(Type::int(8), pool, 7i64); // never flushed!
//! b.ret(None);
//! b.finish();
//!
//! let run = pmvm::Vm::new(pmvm::VmOptions::default()).run(&m, "main").unwrap();
//! let report = check_trace(run.trace.as_ref().unwrap());
//! assert_eq!(report.bugs.len(), 1);
//! assert_eq!(report.bugs[0].kind, BugKind::MissingFlushFence);
//! ```

pub mod bug;
pub mod checker;
pub mod runner;

pub use bug::{Bug, BugKind, CheckReport, Checkpoint, Provenance};
pub use checker::{check_trace, OnlineChecker};
pub use runner::{run_and_check, CheckedRun};
