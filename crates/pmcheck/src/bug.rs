//! Bug reports.

use pmtrace::{Frame, IrRef, TraceLoc};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The durability-bug taxonomy of paper §2.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BugKind {
    /// The store was never (fully) flushed, though a later fence exists; an
    /// intraprocedural flush suffices to fix it.
    MissingFlush,
    /// The store was flushed but no fence ordered the flush before the
    /// checkpoint.
    MissingFence,
    /// Neither flushed nor fenced.
    MissingFlushFence,
}

impl fmt::Display for BugKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BugKind::MissingFlush => "missing-flush",
            BugKind::MissingFence => "missing-fence",
            BugKind::MissingFlushFence => "missing-flush&fence",
        };
        f.write_str(s)
    }
}

/// Where the durability requirement was audited — the `I` of the paper's
/// `X -> F(X) -> M -> I` ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Checkpoint {
    /// An explicit `crashpoint` instruction (1-based occurrence index).
    CrashPoint(u64),
    /// Orderly program end.
    ProgramEnd,
    /// A hypothetical crash injected by the exploration engine right after
    /// the trace event with this sequence number — every trace position is
    /// a potential checkpoint under the persistency model, not just the
    /// hand-placed `crashpoint`s.
    Event(u64),
}

/// How a report's facts were obtained: by observing an execution (the
/// dynamic checker) or by abstract interpretation of the IR without running
/// it (the `pmstatic` checker).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Provenance {
    /// Produced by replaying/observing a trace of a concrete execution.
    #[default]
    Dynamic,
    /// Produced by the flow-sensitive static persistency checker.
    Static,
    /// Produced by the crash-state exploration engine (`pmexplore`): a
    /// recovery oracle failed on a reachable post-crash state, and the bug
    /// blames the store whose loss broke recovery.
    Exploration,
}

impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Provenance::Dynamic => "dynamic",
            Provenance::Static => "static",
            Provenance::Exploration => "exploration",
        })
    }
}

/// One durability bug: a PM store that was not durable by a checkpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bug {
    /// Classification.
    pub kind: BugKind,
    /// Start address of the non-durable PM range.
    pub addr: u64,
    /// Length of the range in bytes.
    pub len: u64,
    /// The IR instruction of the offending store, when the trace carried it.
    pub store_at: Option<IrRef>,
    /// Source location of the store.
    pub store_loc: Option<TraceLoc>,
    /// Call stack at the store, innermost first.
    pub stack: Vec<Frame>,
    /// Trace sequence number of the store event.
    pub store_seq: u64,
    /// The checkpoint at which the bug was detected.
    pub checkpoint: Checkpoint,
    /// Cache lines of the store still unflushed at the checkpoint (empty for
    /// pure missing-fence bugs).
    pub unflushed_lines: Vec<u64>,
}

impl Bug {
    /// A stable identity for deduplication: the same store with the same
    /// classification at the same checkpoint is one report. The checkpoint
    /// is part of the key because each checkpoint is a *distinct* durability
    /// requirement (a distinct `I` in `X -> F(X) -> M -> I`): a store that
    /// is non-durable at two checkpoints violates two orderings, and the
    /// static/dynamic differential comparison must not conflate them.
    /// Identical-anchor fixes still collapse in fix reduction.
    pub fn dedup_key(&self) -> (Option<IrRef>, BugKind, Checkpoint) {
        (self.store_at.clone(), self.kind, self.checkpoint)
    }
}

impl fmt::Display for Bug {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} bug: store of {} bytes at {:#x}",
            self.kind, self.len, self.addr
        )?;
        if let Some(loc) = &self.store_loc {
            write!(f, " ({loc})")?;
        }
        if let Some(at) = &self.store_at {
            write!(f, " in @{}", at.function)?;
        }
        Ok(())
    }
}

/// A redundant (clean-line) flush — a *performance* diagnostic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RedundantFlush {
    /// The flushed address.
    pub addr: u64,
    /// The flush's IR instruction.
    pub at: Option<IrRef>,
    /// Source location.
    pub loc: Option<TraceLoc>,
    /// Trace sequence number.
    pub seq: u64,
}

/// The checker's output.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CheckReport {
    /// All bugs, in detection order (possibly the same store at several
    /// checkpoints; see [`CheckReport::deduped_bugs`]).
    pub bugs: Vec<Bug>,
    /// Redundant flushes observed (performance diagnostics, not fixed).
    pub redundant_flushes: Vec<RedundantFlush>,
    /// Number of PM store events examined.
    pub stores_checked: u64,
    /// Number of flush events examined.
    pub flushes_seen: u64,
    /// Number of fence events examined.
    pub fences_seen: u64,
    /// Whether the report came from the dynamic checker or the static one.
    pub provenance: Provenance,
}

impl CheckReport {
    /// Whether the program is durability-clean.
    pub fn is_clean(&self) -> bool {
        self.bugs.is_empty()
    }

    /// Bugs deduplicated by store identity and kind (one entry per fix the
    /// repair engine must compute).
    pub fn deduped_bugs(&self) -> Vec<&Bug> {
        let mut seen = std::collections::HashSet::new();
        self.bugs
            .iter()
            .filter(|b| seen.insert(b.dedup_key()))
            .collect()
    }

    /// Renders a human-readable summary.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "pmcheck ({}): {} stores, {} flushes, {} fences",
            self.provenance, self.stores_checked, self.flushes_seen, self.fences_seen
        );
        if self.is_clean() {
            let _ = writeln!(out, "no durability bugs found");
        } else {
            let _ = writeln!(out, "{} durability bug report(s):", self.bugs.len());
            for b in &self.bugs {
                let _ = writeln!(out, "  {b}");
                for fr in b.stack.iter().skip(1) {
                    let loc = fr
                        .loc
                        .as_ref()
                        .map(|l| format!(" at {l}"))
                        .unwrap_or_default();
                    let _ = writeln!(out, "      by {}{}", fr.function, loc);
                }
            }
        }
        if !self.redundant_flushes.is_empty() {
            let _ = writeln!(
                out,
                "{} redundant flush(es) (performance diagnostics)",
                self.redundant_flushes.len()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bug(kind: BugKind, func: &str, inst: u32, cp: Checkpoint) -> Bug {
        Bug {
            kind,
            addr: 0x3000_0000_0000,
            len: 8,
            store_at: Some(IrRef {
                function: func.into(),
                inst,
            }),
            store_loc: None,
            stack: vec![],
            store_seq: 1,
            checkpoint: cp,
            unflushed_lines: vec![],
        }
    }

    #[test]
    fn dedup_keeps_distinct_checkpoints_apart() {
        // The same store at two checkpoints violates two distinct durability
        // requirements: both survive dedup (fix reduction still merges the
        // repairs, which share an anchor).
        let report = CheckReport {
            bugs: vec![
                bug(BugKind::MissingFlush, "f", 3, Checkpoint::CrashPoint(1)),
                bug(BugKind::MissingFlush, "f", 3, Checkpoint::ProgramEnd),
                bug(BugKind::MissingFence, "g", 4, Checkpoint::ProgramEnd),
            ],
            ..Default::default()
        };
        assert_eq!(report.deduped_bugs().len(), 3);
        assert!(!report.is_clean());
    }

    #[test]
    fn dedup_merges_exact_duplicates_at_one_checkpoint() {
        let report = CheckReport {
            bugs: vec![
                bug(BugKind::MissingFlush, "f", 3, Checkpoint::CrashPoint(1)),
                bug(BugKind::MissingFlush, "f", 3, Checkpoint::CrashPoint(1)),
            ],
            ..Default::default()
        };
        assert_eq!(report.deduped_bugs().len(), 1);
    }

    #[test]
    fn provenance_defaults_to_dynamic_and_renders() {
        let report = CheckReport::default();
        assert_eq!(report.provenance, Provenance::Dynamic);
        assert!(report.render().contains("dynamic"));
        let stat = CheckReport {
            provenance: Provenance::Static,
            ..Default::default()
        };
        assert!(stat.render().contains("static"));
    }

    #[test]
    fn render_mentions_kinds() {
        let report = CheckReport {
            bugs: vec![bug(
                BugKind::MissingFlushFence,
                "f",
                0,
                Checkpoint::ProgramEnd,
            )],
            ..Default::default()
        };
        let text = report.render();
        assert!(text.contains("missing-flush&fence"), "{text}");
    }
}
