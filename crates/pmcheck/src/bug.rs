//! Bug reports.

use pmtrace::{Frame, IrRef, TraceLoc};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The durability-bug taxonomy of paper §2.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BugKind {
    /// The store was never (fully) flushed, though a later fence exists; an
    /// intraprocedural flush suffices to fix it.
    MissingFlush,
    /// The store was flushed but no fence ordered the flush before the
    /// checkpoint.
    MissingFence,
    /// Neither flushed nor fenced.
    MissingFlushFence,
}

impl BugKind {
    /// Position on the repair ladder, for the repair engine's commit
    /// criterion. Repair adds the flush first and the fence second, and a
    /// checker can only report what is still missing — so a store whose
    /// flush landed but whose fence is pending (`MissingFence`, rank 1) is
    /// strictly closer to durable than one still missing its flush
    /// (`MissingFlush`, rank 2) or both (`MissingFlushFence`, rank 3). A
    /// round that moves a site *down* the ladder made progress even though
    /// the site still reports a bug; a round that moves a site up did harm.
    pub fn repair_rank(self) -> u32 {
        match self {
            BugKind::MissingFlushFence => 3,
            BugKind::MissingFlush => 2,
            BugKind::MissingFence => 1,
        }
    }
}

impl fmt::Display for BugKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BugKind::MissingFlush => "missing-flush",
            BugKind::MissingFence => "missing-fence",
            BugKind::MissingFlushFence => "missing-flush&fence",
        };
        f.write_str(s)
    }
}

/// Where the durability requirement was audited — the `I` of the paper's
/// `X -> F(X) -> M -> I` ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Checkpoint {
    /// An explicit `crashpoint` instruction (1-based occurrence index).
    CrashPoint(u64),
    /// Orderly program end.
    ProgramEnd,
    /// A hypothetical crash injected by the exploration engine right after
    /// the trace event with this sequence number — every trace position is
    /// a potential checkpoint under the persistency model, not just the
    /// hand-placed `crashpoint`s.
    Event(u64),
}

/// How a report's facts were obtained: by observing an execution (the
/// dynamic checker) or by abstract interpretation of the IR without running
/// it (the `pmstatic` checker).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Provenance {
    /// Produced by replaying/observing a trace of a concrete execution.
    #[default]
    Dynamic,
    /// Produced by the flow-sensitive static persistency checker.
    Static,
    /// Produced by the crash-state exploration engine (`pmexplore`): a
    /// recovery oracle failed on a reachable post-crash state, and the bug
    /// blames the store whose loss broke recovery.
    Exploration,
}

impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Provenance::Dynamic => "dynamic",
            Provenance::Static => "static",
            Provenance::Exploration => "exploration",
        })
    }
}

/// One durability bug: a PM store that was not durable by a checkpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bug {
    /// Classification.
    pub kind: BugKind,
    /// Start address of the non-durable PM range.
    pub addr: u64,
    /// Length of the range in bytes.
    pub len: u64,
    /// The IR instruction of the offending store, when the trace carried it.
    pub store_at: Option<IrRef>,
    /// Source location of the store.
    pub store_loc: Option<TraceLoc>,
    /// Call stack at the store, innermost first.
    pub stack: Vec<Frame>,
    /// Trace sequence number of the store event.
    pub store_seq: u64,
    /// The checkpoint at which the bug was detected.
    pub checkpoint: Checkpoint,
    /// Cache lines of the store still unflushed at the checkpoint (empty for
    /// pure missing-fence bugs).
    pub unflushed_lines: Vec<u64>,
}

impl Bug {
    /// A stable identity for deduplication: the same store with the same
    /// classification at the same checkpoint is one report. The checkpoint
    /// is part of the key because each checkpoint is a *distinct* durability
    /// requirement (a distinct `I` in `X -> F(X) -> M -> I`): a store that
    /// is non-durable at two checkpoints violates two orderings, and the
    /// static/dynamic differential comparison must not conflate them.
    /// Identical-anchor fixes still collapse in fix reduction.
    pub fn dedup_key(&self) -> (Option<IrRef>, BugKind, Checkpoint) {
        (self.store_at.clone(), self.kind, self.checkpoint)
    }

    /// A finer identity than [`Bug::dedup_key`]: the same store-site bug
    /// reached through two distinct call paths is two entries. Needed by the
    /// repair engine's commit criterion because an interprocedural fix heals
    /// one call path at a time — a round that repairs one of a store's two
    /// call paths is real progress even though the store-site key survives.
    pub fn path_key(&self) -> PathKey {
        let path = self
            .stack
            .iter()
            .map(|f| (f.function.clone(), f.call_inst))
            .collect();
        (path, self.dedup_key())
    }
}

/// A bug identity refined by its call path: the stack's `(function,
/// call_inst)` spine plus the store-site [`Bug::dedup_key`].
pub type PathKey = (
    Vec<(String, Option<u32>)>,
    (Option<IrRef>, BugKind, Checkpoint),
);

impl fmt::Display for Bug {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} bug: store of {} bytes at {:#x}",
            self.kind, self.len, self.addr
        )?;
        if let Some(loc) = &self.store_loc {
            write!(f, " ({loc})")?;
        }
        if let Some(at) = &self.store_at {
            write!(f, " in @{}", at.function)?;
        }
        Ok(())
    }
}

/// A redundant (clean-line) flush — a *performance* diagnostic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RedundantFlush {
    /// The flushed address.
    pub addr: u64,
    /// The flush's IR instruction.
    pub at: Option<IrRef>,
    /// Source location.
    pub loc: Option<TraceLoc>,
    /// Trace sequence number.
    pub seq: u64,
}

/// The checker's output.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CheckReport {
    /// All bugs, in detection order (possibly the same store at several
    /// checkpoints; see [`CheckReport::deduped_bugs`]).
    pub bugs: Vec<Bug>,
    /// Redundant flushes observed (performance diagnostics, not fixed).
    pub redundant_flushes: Vec<RedundantFlush>,
    /// Number of PM store events examined.
    pub stores_checked: u64,
    /// Number of flush events examined.
    pub flushes_seen: u64,
    /// Number of fence events examined.
    pub fences_seen: u64,
    /// Whether the report came from the dynamic checker or the static one.
    pub provenance: Provenance,
}

impl CheckReport {
    /// Whether the program is durability-clean.
    pub fn is_clean(&self) -> bool {
        self.bugs.is_empty()
    }

    /// Bugs deduplicated by store identity and kind (one entry per fix the
    /// repair engine must compute).
    pub fn deduped_bugs(&self) -> Vec<&Bug> {
        let mut seen = std::collections::HashSet::new();
        self.bugs
            .iter()
            .filter(|b| seen.insert(b.dedup_key()))
            .collect()
    }

    /// The set of deduplication keys — the report's *identity* for the
    /// repair engine's commit criterion (a round commits only when this set
    /// strictly shrinks and gains no new members).
    pub fn dedup_key_set(&self) -> std::collections::HashSet<(Option<IrRef>, BugKind, Checkpoint)> {
        self.bugs.iter().map(|b| b.dedup_key()).collect()
    }

    /// The set of call-path-refined keys (see [`Bug::path_key`]). The commit
    /// criterion's *progress* side measures this set: a round may leave the
    /// store-site key set unchanged yet strictly shrink the path set, which
    /// is exactly what an interprocedural fix of one of several call paths
    /// into the same buggy store does.
    pub fn path_key_set(&self) -> std::collections::HashSet<PathKey> {
        self.bugs.iter().map(|b| b.path_key()).collect()
    }

    /// The worst [`BugKind::repair_rank`] per store *site*. The site is the
    /// store's source location — stable across the instruction renumbering a
    /// fix's inserted flushes/fences cause and across the function cloning
    /// an interprocedural fix causes, which IR-level identities are not —
    /// falling back to `function@inst` when no location is known. The repair
    /// engine's commit criterion compares these maps: a new site (or a site
    /// moving up the ladder) is harm, a falling rank sum is progress.
    pub fn site_severities(&self) -> std::collections::HashMap<String, u32> {
        let mut sites = std::collections::HashMap::new();
        for b in &self.bugs {
            let site = b.store_loc.as_ref().map_or_else(
                || {
                    b.store_at
                        .as_ref()
                        .map_or_else(|| "?".to_string(), |r| format!("{}@{}", r.function, r.inst))
                },
                |loc| format!("{loc}"),
            );
            let rank = b.kind.repair_rank();
            let entry = sites.entry(site).or_insert(0);
            if rank > *entry {
                *entry = rank;
            }
        }
        sites
    }

    /// A stable fingerprint of the report's deduplicated findings (FNV-1a 64
    /// over the sorted rendered keys plus the provenance), as 16 lowercase
    /// hex digits. Journal records store it so a resumed run can tell that a
    /// replayed round converged to the same verdict.
    pub fn digest_hex(&self) -> String {
        let mut keys: Vec<String> = self
            .dedup_key_set()
            .into_iter()
            .map(|(at, kind, cp)| {
                let at =
                    at.map_or_else(|| "?".to_string(), |r| format!("{}@{}", r.function, r.inst));
                format!("{at}|{kind}|{cp:?}")
            })
            .collect();
        keys.sort();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(self.provenance.to_string().as_bytes());
        for k in &keys {
            eat(b"\n");
            eat(k.as_bytes());
        }
        format!("{h:016x}")
    }

    /// Renders a human-readable summary.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "pmcheck ({}): {} stores, {} flushes, {} fences",
            self.provenance, self.stores_checked, self.flushes_seen, self.fences_seen
        );
        if self.is_clean() {
            let _ = writeln!(out, "no durability bugs found");
        } else {
            let _ = writeln!(out, "{} durability bug report(s):", self.bugs.len());
            for b in &self.bugs {
                let _ = writeln!(out, "  {b}");
                for fr in b.stack.iter().skip(1) {
                    let loc = fr
                        .loc
                        .as_ref()
                        .map(|l| format!(" at {l}"))
                        .unwrap_or_default();
                    let _ = writeln!(out, "      by {}{}", fr.function, loc);
                }
            }
        }
        if !self.redundant_flushes.is_empty() {
            let _ = writeln!(
                out,
                "{} redundant flush(es) (performance diagnostics)",
                self.redundant_flushes.len()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bug(kind: BugKind, func: &str, inst: u32, cp: Checkpoint) -> Bug {
        Bug {
            kind,
            addr: 0x3000_0000_0000,
            len: 8,
            store_at: Some(IrRef {
                function: func.into(),
                inst,
            }),
            store_loc: None,
            stack: vec![],
            store_seq: 1,
            checkpoint: cp,
            unflushed_lines: vec![],
        }
    }

    #[test]
    fn dedup_keeps_distinct_checkpoints_apart() {
        // The same store at two checkpoints violates two distinct durability
        // requirements: both survive dedup (fix reduction still merges the
        // repairs, which share an anchor).
        let report = CheckReport {
            bugs: vec![
                bug(BugKind::MissingFlush, "f", 3, Checkpoint::CrashPoint(1)),
                bug(BugKind::MissingFlush, "f", 3, Checkpoint::ProgramEnd),
                bug(BugKind::MissingFence, "g", 4, Checkpoint::ProgramEnd),
            ],
            ..Default::default()
        };
        assert_eq!(report.deduped_bugs().len(), 3);
        assert!(!report.is_clean());
    }

    #[test]
    fn dedup_merges_exact_duplicates_at_one_checkpoint() {
        let report = CheckReport {
            bugs: vec![
                bug(BugKind::MissingFlush, "f", 3, Checkpoint::CrashPoint(1)),
                bug(BugKind::MissingFlush, "f", 3, Checkpoint::CrashPoint(1)),
            ],
            ..Default::default()
        };
        assert_eq!(report.deduped_bugs().len(), 1);
    }

    #[test]
    fn path_keys_separate_call_paths_that_dedup_keys_merge() {
        // The same buggy store reached from two call sites: one store-site
        // key, two path keys. An interprocedural fix of one path must read
        // as progress on the path set even though the dedup set is stable.
        let with_stack = |call_inst: u32| {
            let mut b = bug(BugKind::MissingFlush, "helper", 3, Checkpoint::ProgramEnd);
            b.stack = vec![
                pmtrace::Frame {
                    function: "helper".into(),
                    call_inst: None,
                    loc: None,
                },
                pmtrace::Frame {
                    function: "main".into(),
                    call_inst: Some(call_inst),
                    loc: None,
                },
            ];
            b
        };
        let report = CheckReport {
            bugs: vec![with_stack(7), with_stack(9)],
            ..Default::default()
        };
        assert_eq!(report.dedup_key_set().len(), 1);
        assert_eq!(report.path_key_set().len(), 2);
        let one_path = CheckReport {
            bugs: vec![with_stack(9)],
            ..Default::default()
        };
        assert_eq!(one_path.dedup_key_set(), report.dedup_key_set());
        assert!(one_path.path_key_set().len() < report.path_key_set().len());
    }

    #[test]
    fn site_severities_take_the_worst_rank_per_source_location() {
        // Ladder: flush&fence > flush > fence. Two bugs at one location
        // collapse to the worse rank; location keying makes the map stable
        // under the instruction renumbering a fix would cause.
        assert!(BugKind::MissingFlushFence.repair_rank() > BugKind::MissingFlush.repair_rank());
        assert!(BugKind::MissingFlush.repair_rank() > BugKind::MissingFence.repair_rank());
        let at = |kind, inst, line| {
            let mut b = bug(kind, "f", inst, Checkpoint::ProgramEnd);
            b.store_loc = Some(TraceLoc {
                file: "a.pmc".into(),
                line,
                col: 0,
            });
            b
        };
        let report = CheckReport {
            bugs: vec![
                at(BugKind::MissingFence, 3, 7),
                at(BugKind::MissingFlushFence, 3, 7),
                at(BugKind::MissingFlush, 9, 8),
            ],
            ..Default::default()
        };
        let sev = report.site_severities();
        assert_eq!(sev.len(), 2);
        assert_eq!(sev.values().sum::<u32>(), 3 + 2);
        // Renumbering the instruction does not move the site.
        let renumbered = CheckReport {
            bugs: vec![at(BugKind::MissingFlushFence, 5, 7)],
            ..Default::default()
        };
        assert!(renumbered
            .site_severities()
            .keys()
            .all(|k| sev.contains_key(k)));
        // A location-less bug falls back to its IR site.
        let bare = CheckReport {
            bugs: vec![bug(BugKind::MissingFence, "g", 4, Checkpoint::ProgramEnd)],
            ..Default::default()
        };
        assert!(bare.site_severities().contains_key("g@4"));
    }

    #[test]
    fn provenance_defaults_to_dynamic_and_renders() {
        let report = CheckReport::default();
        assert_eq!(report.provenance, Provenance::Dynamic);
        assert!(report.render().contains("dynamic"));
        let stat = CheckReport {
            provenance: Provenance::Static,
            ..Default::default()
        };
        assert!(stat.render().contains("static"));
    }

    #[test]
    fn digest_is_order_insensitive_and_kind_sensitive() {
        let a = CheckReport {
            bugs: vec![
                bug(BugKind::MissingFlush, "f", 3, Checkpoint::ProgramEnd),
                bug(BugKind::MissingFence, "g", 4, Checkpoint::ProgramEnd),
            ],
            ..Default::default()
        };
        let b = CheckReport {
            bugs: vec![
                bug(BugKind::MissingFence, "g", 4, Checkpoint::ProgramEnd),
                bug(BugKind::MissingFlush, "f", 3, Checkpoint::ProgramEnd),
                // An exact duplicate must not change the digest.
                bug(BugKind::MissingFlush, "f", 3, Checkpoint::ProgramEnd),
            ],
            ..Default::default()
        };
        assert_eq!(a.digest_hex(), b.digest_hex());
        assert_eq!(a.dedup_key_set(), b.dedup_key_set());
        let c = CheckReport {
            bugs: vec![bug(BugKind::MissingFlush, "f", 3, Checkpoint::ProgramEnd)],
            ..Default::default()
        };
        assert_ne!(a.digest_hex(), c.digest_hex());
        assert_eq!(a.digest_hex().len(), 16);
    }

    #[test]
    fn render_mentions_kinds() {
        let report = CheckReport {
            bugs: vec![bug(
                BugKind::MissingFlushFence,
                "f",
                0,
                Checkpoint::ProgramEnd,
            )],
            ..Default::default()
        };
        let text = report.render();
        assert!(text.contains("missing-flush&fence"), "{text}");
    }
}
