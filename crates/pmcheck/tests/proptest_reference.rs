//! Differential property test: the production checker agrees with an
//! independent, naive reference implementation of the durability state
//! machine on random event streams.

use pmcheck::{check_trace, BugKind};
use pmtrace::{Event, EventKind, FenceKind, FlushKind, Trace};
use proptest::prelude::*;

const PM: u64 = 0x3000_0000_0000;

#[derive(Debug, Clone)]
enum TOp {
    Store { line: u8, len: u8 },
    Flush { line: u8, strong: bool },
    Fence,
    CrashPoint,
}

fn op_strategy() -> impl Strategy<Value = TOp> {
    prop_oneof![
        4 => (0u8..8, 1u8..72).prop_map(|(line, len)| TOp::Store { line, len }),
        3 => (0u8..8, any::<bool>()).prop_map(|(line, strong)| TOp::Flush { line, strong }),
        2 => Just(TOp::Fence),
        1 => Just(TOp::CrashPoint),
    ]
}

fn to_trace(ops: &[TOp]) -> Trace {
    let mut t = Trace::new();
    let mut seq = 0;
    let mut push = |kind| {
        t.push(Event {
            seq,
            kind,
            at: None,
            loc: None,
            stack: vec![],
        });
        seq += 1;
    };
    for op in ops {
        match *op {
            TOp::Store { line, len } => push(EventKind::Store {
                addr: PM + u64::from(line) * 64,
                len: u64::from(len),
            }),
            TOp::Flush { line, strong } => push(EventKind::Flush {
                kind: if strong {
                    FlushKind::Clflush
                } else {
                    FlushKind::Clwb
                },
                addr: PM + u64::from(line) * 64,
            }),
            TOp::Fence => push(EventKind::Fence {
                kind: FenceKind::Sfence,
            }),
            TOp::CrashPoint => push(EventKind::CrashPoint),
        }
    }
    push(EventKind::ProgramEnd);
    t
}

/// The reference: simulate per-store line sets with no cleverness at all.
/// Returns `(bug_count, kinds)` over all checkpoints.
fn reference(ops: &[TOp]) -> Vec<BugKind> {
    #[derive(Clone)]
    struct St {
        seq: usize,
        unflushed: Vec<u64>,
        pending: Vec<u64>,
    }
    let mut live: Vec<St> = vec![];
    let mut bugs = vec![];
    let mut last_fence: Option<usize> = None;
    let audit = |live: &[St], last_fence: Option<usize>, bugs: &mut Vec<BugKind>| {
        for st in live {
            if st.unflushed.is_empty() && st.pending.is_empty() {
                continue;
            }
            let kind = if st.unflushed.is_empty() {
                BugKind::MissingFence
            } else if last_fence.map(|f| f > st.seq).unwrap_or(false) {
                BugKind::MissingFlush
            } else {
                BugKind::MissingFlushFence
            };
            bugs.push(kind);
        }
    };
    for (i, op) in ops.iter().enumerate() {
        match *op {
            TOp::Store { line, len } => {
                let start = u64::from(line) * 64;
                let end = start + u64::from(len);
                let mut lines = vec![];
                let mut l = start / 64 * 64;
                while l < end {
                    lines.push(l);
                    l += 64;
                }
                live.push(St {
                    seq: i,
                    unflushed: lines,
                    pending: vec![],
                });
            }
            TOp::Flush { line, strong } => {
                let l = u64::from(line) * 64;
                for st in &mut live {
                    if let Some(pos) = st.unflushed.iter().position(|&x| x == l) {
                        st.unflushed.remove(pos);
                        if !strong {
                            st.pending.push(l);
                        }
                    } else if strong {
                        if let Some(pos) = st.pending.iter().position(|&x| x == l) {
                            st.pending.remove(pos);
                        }
                    }
                }
            }
            TOp::Fence => {
                last_fence = Some(i);
                for st in &mut live {
                    st.pending.clear();
                }
            }
            TOp::CrashPoint => audit(&live, last_fence, &mut bugs),
        }
    }
    audit(&live, last_fence, &mut bugs);
    bugs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn checker_matches_reference(ops in proptest::collection::vec(op_strategy(), 0..60)) {
        let trace = to_trace(&ops);
        let report = check_trace(&trace);
        let got: Vec<BugKind> = report.bugs.iter().map(|b| b.kind).collect();
        let want = reference(&ops);
        prop_assert_eq!(got, want, "ops: {:?}", ops);
    }

    /// Appending a full persist (flush every line + fence) before program
    /// end removes every program-end report.
    #[test]
    fn trailing_persist_silences_end_reports(
        ops in proptest::collection::vec(op_strategy(), 0..40),
    ) {
        let mut fixed = ops.clone();
        for line in 0..10u8 {
            fixed.push(TOp::Flush { line, strong: false });
        }
        fixed.push(TOp::Fence);
        let report = check_trace(&to_trace(&fixed));
        let end_bugs = report
            .bugs
            .iter()
            .filter(|b| matches!(b.checkpoint, pmcheck::Checkpoint::ProgramEnd))
            .count();
        prop_assert_eq!(end_bugs, 0, "{}", report.render());
    }
}
