//! The daemon-facing subcommands: `serve`, `submit`, `status`, `cancel`,
//! `health`, `shutdown`.
//!
//! `submit` reads the source files locally and ships them inline with
//! their original path names, so daemon-produced artifacts are
//! byte-identical to a standalone `hippoctl fix`/`lint`/`explore`/
//! `optimize` run over the same files.

use hippod::{Client, JobKind, JobSpec, JobState, ServerConfig};
use std::time::Duration;

/// How long `submit --wait` polls before giving up.
const WAIT_TIMEOUT: Duration = Duration::from_secs(600);
/// How long `submit` honors `Busy` backpressure before giving up.
const SUBMIT_TIMEOUT: Duration = Duration::from_secs(60);

/// `hippoctl serve`: run the repair-as-a-service daemon until a graceful
/// `shutdown` request drains it.
pub fn serve_cmd(args: &[String], obs: &pmobs::Obs) -> Result<(), String> {
    let mut config = ServerConfig::default();
    let mut socket = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => socket = Some(it.next().ok_or("--socket needs a value")?.clone()),
            "--listen" => {
                config.listen = Some(it.next().ok_or("--listen needs host:port")?.clone());
            }
            "--standby" => config.standby = true,
            "--journal" => {
                config.journal = Some(it.next().ok_or("--journal needs a value")?.into());
            }
            "--cache-budget-mb" => {
                let v = it.next().ok_or("--cache-budget-mb needs a value")?;
                let mb = v.parse::<u64>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                    format!("--cache-budget-mb needs a positive integer, got `{v}`")
                })?;
                config.cache_budget = Some(mb * 1024 * 1024);
            }
            "--upload-budget-mb" => {
                let v = it.next().ok_or("--upload-budget-mb needs a value")?;
                let mb = v.parse::<u64>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                    format!("--upload-budget-mb needs a positive integer, got `{v}`")
                })?;
                config.upload_budget = mb * 1024 * 1024;
            }
            "--max-conns" => {
                let v = it.next().ok_or("--max-conns needs a value")?;
                config.max_conns =
                    v.parse::<usize>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                        format!("--max-conns needs a positive integer, got `{v}`")
                    })?;
            }
            "--io-timeout-ms" => {
                let v = it.next().ok_or("--io-timeout-ms needs a value")?;
                let ms = v.parse::<u64>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                    format!("--io-timeout-ms needs a positive integer, got `{v}`")
                })?;
                config.io_timeout = Duration::from_millis(ms);
            }
            "--idle-timeout-ms" => {
                let v = it.next().ok_or("--idle-timeout-ms needs a value")?;
                let ms = v.parse::<u64>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                    format!("--idle-timeout-ms needs a positive integer, got `{v}`")
                })?;
                config.idle_timeout = Duration::from_millis(ms);
            }
            "--fault-net" => {
                // The CI net gates arm a deterministic network fault at
                // the connection boundary, by pmfault archetype seed.
                let v = it.next().ok_or("--fault-net needs a value")?;
                let seed = v
                    .parse::<u64>()
                    .map_err(|_| format!("--fault-net needs an archetype seed, got `{v}`"))?;
                let plan = pmfault::FaultPlan::from_seed(seed);
                if !plan.targets_net() {
                    return Err(format!(
                        "--fault-net seed {seed} maps to `{}`, not a net.* archetype",
                        plan.describe()
                    ));
                }
                config.fault = Some(plan);
            }
            "--workers" => {
                let v = it.next().ok_or("--workers needs a value")?;
                config.workers = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--workers needs a positive integer, got `{v}`"))?;
            }
            "--queue" => {
                let v = it.next().ok_or("--queue needs a value")?;
                config.queue_capacity = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--queue needs a positive integer, got `{v}`"))?;
            }
            "--fault-shard" => {
                // The chaos gates arm a deterministic campaign-scheduler
                // fault (worker kill, lease storm, epoch contest, commit
                // race), by pmfault archetype seed.
                let v = it.next().ok_or("--fault-shard needs a value")?;
                let seed = v
                    .parse::<u64>()
                    .map_err(|_| format!("--fault-shard needs an archetype seed, got `{v}`"))?;
                let plan = pmfault::FaultPlan::from_seed(seed);
                if !plan.targets_shard() {
                    return Err(format!(
                        "--fault-shard seed {seed} maps to `{}`, not a shard.* archetype",
                        plan.describe()
                    ));
                }
                config.fault = Some(plan);
            }
            "--lease-ttl-ms" => {
                let v = it.next().ok_or("--lease-ttl-ms needs a value")?;
                config.lease_ttl_ms =
                    v.parse::<u64>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                        format!("--lease-ttl-ms needs a positive integer, got `{v}`")
                    })?;
            }
            "--lease-retries" => {
                let v = it.next().ok_or("--lease-retries needs a value")?;
                config.lease_retries = v
                    .parse::<u32>()
                    .map_err(|_| format!("--lease-retries needs an unsigned integer, got `{v}`"))?;
            }
            "--compact-threshold" => {
                let v = it.next().ok_or("--compact-threshold needs a value")?;
                config.compact_threshold =
                    v.parse::<usize>().ok().filter(|&n| n >= 2).ok_or_else(|| {
                        format!("--compact-threshold needs an integer >= 2, got `{v}`")
                    })?;
            }
            "--fault-worker" => {
                // The CI daemon gate arms a deterministic panic at the
                // queue/worker boundary: the n-th job (by submission
                // index) fails alone, the daemon must survive.
                let v = it.next().ok_or("--fault-worker needs a value")?;
                let n = v
                    .parse::<u64>()
                    .map_err(|_| format!("--fault-worker needs a job index, got `{v}`"))?;
                config.fault = Some(pmfault::FaultPlan::single(
                    pmfault::FaultSite::DaemonWorker,
                    pmfault::Trigger::Nth(n),
                    pmfault::FaultKind::WorkerPanic,
                ));
            }
            "--metrics" => {
                it.next().ok_or("--metrics needs a value")?;
            }
            "--timings" => {}
            flag => return Err(format!("unknown flag `{flag}`")),
        }
    }
    match socket {
        Some(path) => config.socket = path.into(),
        None if config.listen.is_some() => {}
        None => return Err("serve needs --socket <path> or --listen <host:port>".to_string()),
    }
    if config.standby && config.journal.is_none() {
        return Err("--standby requires --journal (it watches the journal lock)".to_string());
    }
    // The live Metrics endpoint should answer even without --metrics on
    // the serve command line.
    config.obs = if obs.is_enabled() {
        obs.clone()
    } else {
        pmobs::Obs::enabled()
    };
    eprintln!(
        "hippod: {} on {} ({} worker(s), queue {}{}{})",
        if config.standby {
            "standing by"
        } else {
            "serving"
        },
        config
            .listen
            .clone()
            .unwrap_or_else(|| config.socket.display().to_string()),
        config.workers,
        config.queue_capacity,
        config
            .journal
            .as_ref()
            .map(|j| format!(", journal {}", j.display()))
            .unwrap_or_default(),
        config
            .cache_budget
            .map(|b| format!(", cache budget {} MiB", b / (1024 * 1024)))
            .unwrap_or_default()
    );
    let report = hippod::serve(config)?;
    eprintln!(
        "hippod: drained — {} resumed, {} done, {} failed, {} canceled",
        report.resumed, report.done, report.failed, report.canceled
    );
    Ok(())
}

/// Flags shared by the client-side subcommands. `--connect` takes either
/// carrier (`host:port` is TCP, anything else a socket path); `--socket`
/// is the PR 7 spelling, retained.
struct ClientOpts {
    socket: String,
    rest: Vec<String>,
}

fn parse_client(args: &[String]) -> Result<ClientOpts, String> {
    let mut socket = None;
    let mut rest = vec![];
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" | "--connect" => {
                socket = Some(it.next().ok_or("--connect needs a value")?.clone());
            }
            "--metrics" => {
                it.next().ok_or("--metrics needs a value")?;
            }
            "--timings" => {}
            other => rest.push(other.to_string()),
        }
    }
    Ok(ClientOpts {
        socket: socket.ok_or("this subcommand needs --connect <endpoint> (or --socket <path>)")?,
        rest,
    })
}

/// `hippoctl submit`: ship a job to a serving daemon.
pub fn submit_cmd(args: &[String]) -> Result<(), String> {
    let c = parse_client(args)?;
    let mut spec = JobSpec::new(JobKind::Fix, vec![]);
    let mut wait = false;
    let mut out: Option<String> = None;
    let mut sources: Vec<String> = vec![];
    let mut it = c.rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--kind" => {
                spec.kind = JobKind::parse(it.next().ok_or("--kind needs a value")?)?;
            }
            "--entry" => spec.entry = it.next().ok_or("--entry needs a value")?.clone(),
            "--bug-source" => {
                spec.bug_source = it.next().ok_or("--bug-source needs a value")?.clone();
            }
            "--budget" => {
                let v = it.next().ok_or("--budget needs a value")?;
                spec.budget = v
                    .parse::<u64>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--budget needs a positive integer, got `{v}`"))?;
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                spec.seed = v
                    .parse::<u64>()
                    .map_err(|_| format!("--seed needs an unsigned integer, got `{v}`"))?;
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                spec.jobs = v
                    .parse::<u64>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--jobs needs a positive integer, got `{v}`"))?;
            }
            "--deadline-ms" => {
                let v = it.next().ok_or("--deadline-ms needs a value")?;
                spec.deadline_ms =
                    Some(v.parse::<u64>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                        format!("--deadline-ms needs a positive integer, got `{v}`")
                    })?);
            }
            "--shards" => {
                let v = it.next().ok_or("--shards needs a value")?;
                spec.shards = v
                    .parse::<u64>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--shards needs a positive integer, got `{v}`"))?;
            }
            "--wait" => wait = true,
            "-o" | "--out" => out = Some(it.next().ok_or("-o needs a value")?.clone()),
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            src => sources.push(src.to_string()),
        }
    }
    if sources.is_empty() {
        return Err("no source files given".to_string());
    }
    if out.is_some() && !wait {
        return Err("-o needs --wait (the artifact exists only once the job is done)".to_string());
    }
    for s in &sources {
        let text = std::fs::read_to_string(s).map_err(|e| format!("{s}: {e}"))?;
        spec.sources.push((s.clone(), text));
    }
    let mut client = Client::dial(&c.socket)?;
    let id = client.submit_retry(spec, SUBMIT_TIMEOUT)?;
    if !wait {
        println!("{id}");
        return Ok(());
    }
    let view = client.wait(&id, WAIT_TIMEOUT)?;
    match view.state {
        JobState::Done => {
            let result = view.result.ok_or("done job lost its result")?;
            eprintln!(
                "{id}: {}{}{}",
                result.summary,
                if result.cached { " (warm cache)" } else { "" },
                format_args!(", {}ms", result.duration_ms),
            );
            match &out {
                Some(path) => {
                    std::fs::write(path, &result.output).map_err(|e| format!("{path}: {e}"))?;
                }
                None => print!("{}", result.output),
            }
            if result.clean {
                Ok(())
            } else {
                Err(format!("{id}: finished but not clean"))
            }
        }
        state => Err(format!(
            "{id}: {state}{}",
            view.error.map(|e| format!(" — {e}")).unwrap_or_default()
        )),
    }
}

fn render_view(view: &hippod::JobView) -> String {
    let mut s = format!("{} {} {}", view.id, view.kind, view.state);
    if let Some(e) = &view.error {
        s.push_str(&format!(" — {e}"));
    }
    if let Some(r) = &view.result {
        s.push_str(&format!(
            " — {}{}, {}ms",
            r.summary,
            if r.cached { " (warm cache)" } else { "" },
            r.duration_ms
        ));
    }
    s
}

/// `hippoctl status`: one job's state and (when done) summary.
pub fn status_cmd(args: &[String]) -> Result<(), String> {
    let c = parse_client(args)?;
    let [id] = c.rest.as_slice() else {
        return Err("status needs exactly one job id".to_string());
    };
    let view = Client::dial(&c.socket)?.status(id)?;
    println!("{}", render_view(&view));
    Ok(())
}

/// `hippoctl cancel`: cancel a queued job.
pub fn cancel_cmd(args: &[String]) -> Result<(), String> {
    let c = parse_client(args)?;
    let [id] = c.rest.as_slice() else {
        return Err("cancel needs exactly one job id".to_string());
    };
    let view = Client::dial(&c.socket)?.cancel(id)?;
    println!("{}", render_view(&view));
    Ok(())
}

/// `hippoctl health`: the daemon's liveness report as JSON.
pub fn health_cmd(args: &[String]) -> Result<(), String> {
    let c = parse_client(args)?;
    if !c.rest.is_empty() {
        return Err(format!(
            "health takes no positional arguments: {:?}",
            c.rest
        ));
    }
    let health = Client::dial(&c.socket)?.health()?;
    let json = serde_json::to_string(&health).map_err(|e| e.to_string())?;
    println!("{json}");
    Ok(())
}

/// `hippoctl ping`: one heartbeat round trip — liveness without touching
/// job state (answers on draining and standby daemons too).
pub fn ping_cmd(args: &[String]) -> Result<(), String> {
    let c = parse_client(args)?;
    if !c.rest.is_empty() {
        return Err(format!("ping takes no positional arguments: {:?}", c.rest));
    }
    let mut client = Client::dial(&c.socket)?;
    client.set_io_timeout(Some(Duration::from_secs(10)))?;
    client.ping()?;
    println!("pong");
    Ok(())
}

/// `hippoctl shutdown`: graceful drain.
pub fn shutdown_cmd(args: &[String]) -> Result<(), String> {
    let c = parse_client(args)?;
    if !c.rest.is_empty() {
        return Err(format!(
            "shutdown takes no positional arguments: {:?}",
            c.rest
        ));
    }
    Client::dial(&c.socket)?.shutdown()?;
    eprintln!("hippod: draining");
    Ok(())
}
