//! `hippoctl` — the command-line driver for the Hippocrates pipeline,
//! mirroring the original artifact's scripts.
//!
//! ```text
//! hippoctl compile  app.pmc [lib.pmc ...]      # emit textual IR
//! hippoctl run      app.pmc --entry main       # execute, print output/stats
//! hippoctl trace    app.pmc --entry main       # emit the pmemcheck-style trace (JSON)
//! hippoctl check    app.pmc --entry main       # durability report
//! hippoctl lint     app.pmc [--deny warnings]  # static check, no execution
//! hippoctl fix      app.pmc --entry main -o fixed.ir [--intra-only] [--trace-aa]
//!                   [--bug-source dynamic|static|both]
//! ```
//!
//! Sources ending in `.ir` are parsed as textual `pmir`; everything else is
//! compiled as `pmlang`. Multiple sources are linked into one module.

use std::process::ExitCode;

mod cmd;
mod serve;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match cmd::dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("hippoctl: {e}");
            ExitCode::FAILURE
        }
    }
}
