//! Subcommand parsing and execution.

use hippocrates::{BugSource, Hippocrates, MarkingMode, RepairOptions};
use pmcheck::run_and_check;
use pmir::Module;
use pmvm::{Vm, VmOptions};
use std::fmt::Write as _;

/// Top-level dispatch.
///
/// # Errors
///
/// Returns a human-readable error string for usage problems, compile
/// errors, traps, and failed repairs.
pub fn dispatch(args: &[String]) -> Result<(), String> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err(usage());
    };
    // `--metrics` / `--timings` arm the observability registry for every
    // subcommand; the snapshot is written even when the command fails, so a
    // red CI run still uploads its telemetry.
    let metrics_path = rest
        .windows(2)
        .find(|w| w[0] == "--metrics")
        .map(|w| w[1].clone());
    let timings = rest.iter().any(|a| a == "--timings");
    let obs = if metrics_path.is_some() || timings {
        pmobs::Obs::enabled()
    } else {
        pmobs::Obs::default()
    };
    let result = {
        let _span = obs.span(&format!("cli.{cmd}"));
        match cmd.as_str() {
            "compile" => compile_cmd(rest, &obs),
            "run" => run_cmd(rest, &obs),
            "trace" => trace_cmd(rest, &obs),
            "check" => check_cmd(rest, &obs),
            "lint" => lint_cmd(rest, &obs),
            "explore" => explore_cmd(rest, &obs),
            "fix" => fix_cmd(rest, &obs),
            "optimize" => optimize_cmd(rest, &obs),
            "faultcampaign" => faultcampaign_cmd(rest, &obs),
            "serve" => crate::serve::serve_cmd(rest, &obs),
            "submit" => crate::serve::submit_cmd(rest),
            "status" => crate::serve::status_cmd(rest),
            "cancel" => crate::serve::cancel_cmd(rest),
            "health" => crate::serve::health_cmd(rest),
            "shutdown" => crate::serve::shutdown_cmd(rest),
            "ping" => crate::serve::ping_cmd(rest),
            "help" | "--help" | "-h" => {
                println!("{}", usage());
                Ok(())
            }
            other => Err(format!("unknown command `{other}`\n{}", usage())),
        }
    };
    let snap = obs.snapshot();
    if let Some(path) = &metrics_path {
        std::fs::write(path, snap.to_json()).map_err(|e| format!("{path}: {e}"))?;
    }
    if timings {
        eprint!("{}", snap.render_timings());
    }
    result
}

fn usage() -> String {
    let mut s = String::from("usage:\n");
    for line in [
        "hippoctl compile <src>...                        emit textual IR",
        "hippoctl run     <src>... [--entry NAME]         execute and print output",
        "hippoctl trace   <src>... [--entry NAME]         emit the PM trace as JSON",
        "hippoctl check   <src>... [--entry NAME]         durability-bug report",
        "hippoctl lint    <src|dir>... [--entry NAME]     static persistency check",
        "                 [--deny warnings]                (no execution; dirs lint each .pmc)",
        "                 [--redundant] [--deny redundant]  also lint provably-redundant",
        "                                                    flushes/fences (pmredund)",
        "hippoctl explore <src>... [--entry NAME]         crash-state exploration: boot the",
        "                 [--jobs N] [--budget K]           recovery oracle on sampled crash",
        "                 [--seed S] [--recover FN]         states; report inconsistencies",
        "                 [--tier fast|interp]               execution tier (tiers are",
        "                                                    result-identical; fast is default)",
        "hippoctl fix     <src>... [--entry NAME] [-o F]  repair; write fixed IR",
        "                 [--intra-only] [--trace-aa] [--portable]",
        "                 [--bug-source dynamic|static|both|exploration]",
        "                 [--jobs N] [--budget K] [--seed S]",
        "                 [--journal F] [--resume]           write-ahead journal; replay",
        "                                                    committed rounds after a kill",
        "                 [--deadline-ms N] [--step-quota N] cooperative budget: partial-",
        "                                                    but-committed, never a hang",
        "                 [--show-quarantine]                print the quarantine ledger",
        "                 [--optimize]                       after a clean repair, strip",
        "                                                    redundant flushes/fences",
        "                 [--tier fast|interp]               execution tier for detection/",
        "                                                    verification runs",
        "hippoctl optimize <src>... [--entry NAME] [-o F] strip provably-redundant flushes",
        "                 [--jobs N] [--budget K] [--seed S]  and sinkable fences; each removal",
        "                                                     is re-verified or rolled back",
        "hippoctl faultcampaign [<src>...] [--seeds N]    run the full pipeline under N",
        "                 [--entry NAME] [--jobs J]         seeded fault plans; assert it",
        "                                                   degrades, never panics or hangs",
        "hippoctl serve   --socket S | --listen H:P       repair-as-a-service daemon",
        "                 [--journal F] [--standby]          (hippo.jobs.v2 over Unix socket or",
        "                 [--workers N] [--queue N]           TCP; journaled jobs resume after",
        "                 [--cache-budget-mb N]               kill -9, a --standby takes over",
        "                 [--upload-budget-mb N]              the journal the moment the",
        "                 [--max-conns N]                     primary dies; warm caches evict",
        "                 [--io-timeout-ms N]                 LRU under the cache budget)",
        "                 [--idle-timeout-ms N]",
        "                 [--lease-ttl-ms N] [--lease-retries N] campaign shard leases: TTL,",
        "                 [--compact-threshold N]             retry budget; journal compaction",
        "                 [--fault-worker I] [--fault-net S]",
        "                 [--fault-shard S]                   arm a shard.* chaos archetype",
        "hippoctl submit  --connect E <src>... [--kind K] enqueue a lint|explore|fix|optimize",
        "                 [--entry NAME] [--wait] [-o F]     job; --wait polls and emits the",
        "                 [--budget K] [--seed S] [--jobs N]  artifact (byte-identical to a",
        "                 [--bug-source ...] [--deadline-ms N] standalone run); oversized",
        "                 [--shards N]                        sources stream as chunks; --shards",
        "                                                    fans an explore job into leased",
        "                                                    campaign shards",
        "hippoctl status  --connect E <job-id>            one job's state and summary",
        "hippoctl cancel  --connect E <job-id>            cancel a queued job",
        "hippoctl health  --connect E                     daemon liveness report (JSON)",
        "hippoctl ping    --connect E                     heartbeat (works on a standby too)",
        "hippoctl shutdown --connect E                    graceful drain and exit",
        "",
        "every subcommand also accepts:",
        "  --metrics <path.json>   write pipeline telemetry (hippo.metrics.v1)",
        "  --timings               print a per-span timing breakdown to stderr",
    ] {
        let _ = writeln!(s, "  {line}");
    }
    s
}

/// Parsed common flags.
struct Opts {
    sources: Vec<String>,
    entry: String,
    out: Option<String>,
    intra_only: bool,
    trace_aa: bool,
    portable: bool,
    deny_warnings: bool,
    deny_redundant: bool,
    lint_redundant: bool,
    optimize: bool,
    bug_source: BugSource,
    jobs: usize,
    budget: usize,
    seed: u64,
    recover: Option<String>,
    metrics: Option<String>,
    timings: bool,
    journal: Option<String>,
    resume: bool,
    show_quarantine: bool,
    deadline_ms: Option<u64>,
    step_quota: Option<u64>,
    crash_after_commit: Option<u32>,
    tier: pmvm::ExecTier,
}

fn parse(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts {
        sources: vec![],
        entry: "main".to_string(),
        out: None,
        intra_only: false,
        trace_aa: false,
        portable: false,
        deny_warnings: false,
        deny_redundant: false,
        lint_redundant: false,
        optimize: false,
        bug_source: BugSource::Dynamic,
        jobs: 1,
        budget: 256,
        seed: 0,
        recover: None,
        metrics: None,
        timings: false,
        journal: None,
        resume: false,
        show_quarantine: false,
        deadline_ms: None,
        step_quota: None,
        crash_after_commit: None,
        tier: pmvm::ExecTier::default(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--entry" => {
                o.entry = it.next().ok_or("--entry needs a value")?.clone();
            }
            "-o" | "--out" => {
                o.out = Some(it.next().ok_or("-o needs a value")?.clone());
            }
            "--deny" => {
                let what = it.next().ok_or("--deny needs a value")?;
                match what.as_str() {
                    "warnings" => o.deny_warnings = true,
                    "redundant" => o.deny_redundant = true,
                    _ => {
                        return Err(format!(
                            "--deny supports `warnings` or `redundant`, got `{what}`"
                        ));
                    }
                }
            }
            "--bug-source" => {
                let v = it.next().ok_or("--bug-source needs a value")?;
                o.bug_source = match v.as_str() {
                    "dynamic" => BugSource::Dynamic,
                    "static" => BugSource::Static,
                    "both" => BugSource::Both,
                    "exploration" => BugSource::Exploration,
                    other => {
                        return Err(format!(
                            "--bug-source supports dynamic|static|both|exploration, got `{other}`"
                        ));
                    }
                };
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                o.jobs = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--jobs needs a positive integer, got `{v}`"))?;
            }
            "--budget" => {
                let v = it.next().ok_or("--budget needs a value")?;
                o.budget = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--budget needs a positive integer, got `{v}`"))?;
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                o.seed = v
                    .parse::<u64>()
                    .map_err(|_| format!("--seed needs an unsigned integer, got `{v}`"))?;
            }
            "--recover" => {
                o.recover = Some(it.next().ok_or("--recover needs a value")?.clone());
            }
            "--tier" => {
                let v = it.next().ok_or("--tier needs a value")?;
                o.tier = pmvm::ExecTier::parse(v)
                    .ok_or_else(|| format!("--tier supports fast|interp, got `{v}`"))?;
            }
            "--metrics" => {
                o.metrics = Some(it.next().ok_or("--metrics needs a value")?.clone());
            }
            "--timings" => o.timings = true,
            "--journal" => {
                o.journal = Some(it.next().ok_or("--journal needs a value")?.clone());
            }
            "--resume" => o.resume = true,
            "--show-quarantine" => o.show_quarantine = true,
            "--deadline-ms" => {
                let v = it.next().ok_or("--deadline-ms needs a value")?;
                o.deadline_ms =
                    Some(v.parse::<u64>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                        format!("--deadline-ms needs a positive integer, got `{v}`")
                    })?);
            }
            "--step-quota" => {
                let v = it.next().ok_or("--step-quota needs a value")?;
                o.step_quota =
                    Some(v.parse::<u64>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                        format!("--step-quota needs a positive integer, got `{v}`")
                    })?);
            }
            "--crash-after-commit" => {
                let v = it.next().ok_or("--crash-after-commit needs a value")?;
                o.crash_after_commit = Some(v.parse::<u32>().map_err(|_| {
                    format!("--crash-after-commit needs an unsigned integer, got `{v}`")
                })?);
            }
            "--redundant" => o.lint_redundant = true,
            "--optimize" => o.optimize = true,
            "--intra-only" => o.intra_only = true,
            "--trace-aa" => o.trace_aa = true,
            "--portable" => o.portable = true,
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag `{flag}`"));
            }
            src => o.sources.push(src.to_string()),
        }
    }
    if o.sources.is_empty() {
        return Err("no source files given".to_string());
    }
    Ok(o)
}

/// Loads and links the given sources: `.ir` files parse as textual pmir
/// (at most one, alone); anything else compiles as pmlang.
fn load(sources: &[String]) -> Result<Module, String> {
    if sources.iter().any(|s| s.ends_with(".ir")) {
        if sources.len() != 1 {
            return Err("an .ir module must be loaded alone".to_string());
        }
        let text =
            std::fs::read_to_string(&sources[0]).map_err(|e| format!("{}: {e}", sources[0]))?;
        let m = pmir::parse::parse_module(&text).map_err(|e| e.to_string())?;
        pmir::verify::verify_module(&m).map_err(|e| e.to_string())?;
        return Ok(m);
    }
    let mut c = pmlang::Compiler::new();
    for s in sources {
        let text = std::fs::read_to_string(s).map_err(|e| format!("{s}: {e}"))?;
        c = c.source(s.clone(), text);
    }
    c.compile().map_err(|e| e.to_string())
}

/// Loads sources under a `cli.load` span.
fn load_obs(sources: &[String], obs: &pmobs::Obs) -> Result<Module, String> {
    let _span = obs.span("cli.load");
    load(sources)
}

fn compile_cmd(args: &[String], obs: &pmobs::Obs) -> Result<(), String> {
    let o = parse(args)?;
    let m = load_obs(&o.sources, obs)?;
    let text = pmir::display::print_module(&m);
    emit(&o.out, &text)
}

fn run_cmd(args: &[String], obs: &pmobs::Obs) -> Result<(), String> {
    let o = parse(args)?;
    let m = load_obs(&o.sources, obs)?;
    let r = Vm::new(VmOptions::bench().with_obs(obs.clone()))
        .run(&m, &o.entry)
        .map_err(|e| e.to_string())?;
    for v in &r.output {
        println!("{v}");
    }
    eprintln!(
        "-- {:?} after {} steps, {} simulated cycles ({} PM stores, {} flushes, {} fences)",
        r.ended,
        r.steps,
        r.stats.cycles,
        r.stats.pm_stores,
        r.stats.total_flushes(),
        r.stats.fences
    );
    Ok(())
}

fn trace_cmd(args: &[String], obs: &pmobs::Obs) -> Result<(), String> {
    let o = parse(args)?;
    let m = load_obs(&o.sources, obs)?;
    let vm_opts = VmOptions::default().with_obs(obs.clone());
    let checked = run_and_check(&m, &o.entry, vm_opts).map_err(|e| e.to_string())?;
    let json = checked.trace.to_json().map_err(|e| e.to_string())?;
    emit(&o.out, &json)
}

fn check_cmd(args: &[String], obs: &pmobs::Obs) -> Result<(), String> {
    let o = parse(args)?;
    let m = load_obs(&o.sources, obs)?;
    let vm_opts = VmOptions::default().with_obs(obs.clone());
    let checked = run_and_check(&m, &o.entry, vm_opts).map_err(|e| e.to_string())?;
    print!("{}", checked.report.render());
    if checked.report.is_clean() {
        Ok(())
    } else {
        Err(format!(
            "{} durability bug(s) found",
            checked.report.deduped_bugs().len()
        ))
    }
}

/// `hippoctl lint`: run the static persistency checker — no execution.
///
/// Directory arguments expand to the `.pmc` files inside (each linted as
/// its own single-file program); explicitly listed files are linked into
/// one module (a lone `.ir` file parses as textual pmir — useful to
/// re-lint a repaired module). Findings render as rustc-style diagnostics
/// with source excerpts. With `--deny warnings`, any finding makes the
/// exit code nonzero.
fn lint_cmd(args: &[String], obs: &pmobs::Obs) -> Result<(), String> {
    let o = parse(args)?;
    let mut groups: Vec<Vec<String>> = vec![];
    let mut explicit: Vec<String> = vec![];
    for s in &o.sources {
        if std::path::Path::new(s).is_dir() {
            let mut found = vec![];
            let entries = std::fs::read_dir(s).map_err(|e| format!("{s}: {e}"))?;
            for entry in entries {
                let p = entry.map_err(|e| format!("{s}: {e}"))?.path();
                if p.extension().is_some_and(|x| x == "pmc") {
                    found.push(p.to_string_lossy().into_owned());
                }
            }
            if found.is_empty() {
                return Err(format!("{s}: no .pmc files in directory"));
            }
            found.sort();
            groups.extend(found.into_iter().map(|f| vec![f]));
        } else {
            explicit.push(s.clone());
        }
    }
    if !explicit.is_empty() {
        groups.insert(0, explicit);
    }
    let mut warnings = 0usize;
    let mut redundant = 0usize;
    let want_redundant = o.lint_redundant || o.deny_redundant;
    for g in &groups {
        let (w, r) = lint_group(g, &o.entry, want_redundant, obs)?;
        warnings += w;
        redundant += r;
    }
    obs.add("cli.lint.modules", groups.len() as u64);
    obs.add("cli.lint.warnings", warnings as u64);
    if want_redundant {
        obs.add("cli.lint.redundant", redundant as u64);
    }
    if o.deny_warnings && warnings > 0 {
        return Err(format!("{warnings} warning(s) denied by --deny warnings"));
    }
    if o.deny_redundant && redundant > 0 {
        return Err(format!(
            "{redundant} redundant flush/fence finding(s) denied by --deny redundant"
        ));
    }
    match (warnings, redundant) {
        (0, 0) => eprintln!("lint: clean ({} module(s))", groups.len()),
        (w, 0) => eprintln!("lint: {w} warning(s)"),
        (0, r) => eprintln!("lint: {r} redundant flush/fence finding(s)"),
        (w, r) => eprintln!("lint: {w} warning(s), {r} redundant flush/fence finding(s)"),
    }
    Ok(())
}

/// Lints one module (one or more linked sources); returns the number of
/// warnings emitted.
fn lint_group(
    sources: &[String],
    entry: &str,
    want_redundant: bool,
    obs: &pmobs::Obs,
) -> Result<(usize, usize), String> {
    let mut texts = std::collections::HashMap::new();
    for s in sources {
        if let Ok(text) = std::fs::read_to_string(s) {
            texts.insert(s.clone(), text);
        }
    }
    let m = load_obs(sources, obs)?;
    let report = pmstatic::check_module_obs(&m, entry, obs).map_err(|e| e.to_string())?;
    // An .ir module's debug locations name the original .pmc sources; pull
    // those in from disk (when present) so excerpts still render.
    for loc in report
        .bugs
        .iter()
        .filter_map(|b| b.store_loc.as_ref())
        .chain(
            report
                .redundant_flushes
                .iter()
                .filter_map(|r| r.loc.as_ref()),
        )
    {
        if !texts.contains_key(&loc.file) && !loc.file.starts_with('<') {
            if let Ok(t) = std::fs::read_to_string(&loc.file) {
                texts.insert(loc.file.clone(), t);
            }
        }
    }
    print!("{}", render_lint(&report, &texts));
    let mut redundant = 0usize;
    if want_redundant {
        let findings = pmredund::analyze_module(&m, entry).map_err(|e| e.to_string())?;
        for f in &findings {
            if let Some(loc) = &f.loc {
                if !texts.contains_key(&loc.file) && !loc.file.starts_with('<') {
                    if let Ok(t) = std::fs::read_to_string(&loc.file) {
                        texts.insert(loc.file.clone(), t);
                    }
                }
            }
        }
        redundant = findings.len();
        print!("{}", render_redundancy(&findings, &texts));
    }
    Ok((
        report.deduped_bugs().len() + report.redundant_flushes.len(),
        redundant,
    ))
}

/// Renders `pmredund` findings as rustc-style diagnostics, each with its
/// happens-before witness as notes.
fn render_redundancy(
    findings: &[pmredund::Finding],
    texts: &std::collections::HashMap<String, String>,
) -> String {
    let mut s = String::new();
    for f in findings {
        let what = match f.kind {
            pmredund::FindingKind::RedundantFlush => {
                "flush of a line already durable on every incoming path"
            }
            pmredund::FindingKind::CoalescableFlush => {
                "flush coalesces with another flush of the same line"
            }
            pmredund::FindingKind::SinkableFence => {
                "fence orders no persistent work on any incoming path"
            }
        };
        let _ = writeln!(s, "warning: {}: {what}", f.kind);
        excerpt(
            &mut s,
            f.loc.as_ref(),
            texts,
            &format!(
                "in `{}`, ~{} cycles per pass",
                f.function, f.est_cycles_saved
            ),
        );
        let _ = writeln!(s, "   = note: {}", f.witness.claim);
        for ev in &f.witness.events {
            let _ = writeln!(s, "   = note: witness: {ev}");
        }
        let _ = writeln!(
            s,
            "   = note: `hippoctl optimize` removes this with dynamic re-verification"
        );
    }
    s
}

/// Renders a static report as rustc-style diagnostics with source excerpts.
fn render_lint(
    report: &pmcheck::CheckReport,
    texts: &std::collections::HashMap<String, String>,
) -> String {
    let mut s = String::new();
    for bug in report.deduped_bugs() {
        let what = match bug.kind {
            pmcheck::BugKind::MissingFlush => "store is never flushed on some path",
            pmcheck::BugKind::MissingFence => "flushed store is never fenced on some path",
            pmcheck::BugKind::MissingFlushFence => {
                "store is neither flushed nor fenced on some path"
            }
        };
        let _ = writeln!(s, "warning: {}: {what}", bug.kind);
        excerpt(&mut s, bug.store_loc.as_ref(), texts, &{
            let func = bug
                .store_at
                .as_ref()
                .map(|at| at.function.as_str())
                .unwrap_or("?");
            match bug.len {
                0 => format!("store in `{func}`"),
                n => format!("store of {n} byte(s) in `{func}`"),
            }
        });
        let _ = match bug.checkpoint {
            pmcheck::Checkpoint::CrashPoint(n) => {
                writeln!(s, "   = note: audited at crash point #{n}")
            }
            pmcheck::Checkpoint::ProgramEnd => {
                writeln!(s, "   = note: audited at program end")
            }
            pmcheck::Checkpoint::Event(seq) => {
                writeln!(
                    s,
                    "   = note: audited at explored crash state (trace event #{seq})"
                )
            }
        };
    }
    for rf in &report.redundant_flushes {
        let _ = writeln!(
            s,
            "warning: redundant-flush: flush of a provably clean line or volatile memory"
        );
        excerpt(
            &mut s,
            rf.loc.as_ref(),
            texts,
            "this flush never persists anything",
        );
        let _ = writeln!(s, "   = note: statically provable; safe to remove");
    }
    s
}

/// Appends the `--> file:line:col` arrow and the quoted source line.
fn excerpt(
    s: &mut String,
    loc: Option<&pmtrace::TraceLoc>,
    texts: &std::collections::HashMap<String, String>,
    label: &str,
) {
    let Some(loc) = loc else {
        let _ = writeln!(s, "  --> <unknown location>: {label}");
        return;
    };
    let _ = writeln!(s, "  --> {}:{}:{}", loc.file, loc.line, loc.col.max(1));
    let line = texts
        .get(&loc.file)
        .and_then(|t| t.lines().nth(loc.line.saturating_sub(1) as usize));
    if let Some(line) = line {
        let num = loc.line.to_string();
        let gut = " ".repeat(num.len());
        let pad = " ".repeat(loc.col.max(1) as usize - 1);
        let _ = writeln!(s, "{gut} |");
        let _ = writeln!(s, "{num} | {line}");
        let _ = writeln!(s, "{gut} | {pad}^ {label}");
    } else {
        let _ = writeln!(s, "   = {label}");
    }
}

/// `hippoctl explore`: crash-state exploration. Runs the entry once with
/// PM data capture, samples crash states (every subset of dirty lines at
/// every PM event, under the budget), boots the recovery oracle on each,
/// and reports the stores whose loss broke recovery. Exit code is nonzero
/// when any explored state is inconsistent.
fn explore_cmd(args: &[String], obs: &pmobs::Obs) -> Result<(), String> {
    let o = parse(args)?;
    let m = load_obs(&o.sources, obs)?;
    let opts = pmexplore::ExploreOptions {
        budget: o.budget,
        seed: o.seed,
        jobs: o.jobs,
        oracle: o.recover.as_deref().map(pmexplore::Oracle::returns_zero),
        obs: obs.clone(),
        tier: o.tier,
        ..pmexplore::ExploreOptions::default()
    };
    let x = pmexplore::run_and_explore(&m, &o.entry, &opts).map_err(|e| e.to_string())?;
    print!("{}", x.report.render());
    if x.report.is_clean() {
        Ok(())
    } else {
        let check = x.report.to_check_report(&x.trace);
        print!("{}", check.render());
        Err(format!(
            "{} inconsistent crash state(s) found",
            x.report.findings.len()
        ))
    }
}

fn fix_cmd(args: &[String], obs: &pmobs::Obs) -> Result<(), String> {
    let o = parse(args)?;
    let mut m = load_obs(&o.sources, obs)?;
    let opts = RepairOptions {
        hoisting: !o.intra_only,
        marking: if o.trace_aa {
            MarkingMode::TraceAa
        } else {
            MarkingMode::FullAa
        },
        portable_fixes: o.portable,
        bug_source: o.bug_source,
        explore_budget: o.budget,
        explore_seed: o.seed,
        explore_jobs: o.jobs,
        journal_path: o.journal.as_ref().map(std::path::PathBuf::from),
        resume: o.resume,
        deadline_ms: o.deadline_ms,
        step_quota: o.step_quota,
        crash_after_commit: o.crash_after_commit,
        optimize_after: o.optimize,
        obs: obs.clone(),
        tier: o.tier,
        ..RepairOptions::default()
    };
    let outcome = match Hippocrates::new(opts).repair_until_clean(&mut m, &o.entry) {
        Ok(outcome) => outcome,
        Err(e) => {
            // A partial outcome means committed rounds survived the failure:
            // surface them (and the quarantine ledger) before erroring, and
            // still write the partially-repaired module when `-o` was given —
            // it is exactly the committed state a resume would start from.
            if let Some(partial) = e.partial_outcome() {
                report_fix_outcome(partial, &o, false);
                if o.out.is_some() {
                    emit(&o.out, &pmir::display::print_module(&m))?;
                }
            }
            return Err(e.to_string());
        }
    };
    report_fix_outcome(&outcome, &o, true);
    let text = pmir::display::print_module(&m);
    emit(&o.out, &text)
}

/// Prints a repair outcome's fixes, round counts, diagnostics, and (on
/// request, or always for a partial outcome) the quarantine ledger.
fn report_fix_outcome(outcome: &hippocrates::RepairOutcome, o: &Opts, clean: bool) {
    for fix in &outcome.fixes {
        eprintln!("applied: {fix}");
    }
    for d in &outcome.diagnostics {
        eprintln!("note: {d}");
    }
    if o.show_quarantine || !clean {
        for q in &outcome.quarantined {
            eprintln!("quarantined: {q}");
        }
    }
    if let Some(stats) = &outcome.optimized {
        eprintln!("optimized: {stats}");
    }
    let journal_note = if outcome.replayed_rounds > 0 {
        format!(" ({} replayed from journal)", outcome.replayed_rounds)
    } else {
        String::new()
    };
    eprintln!(
        "-- {} fix(es), {} interprocedural, {} iteration(s), {} round(s) committed{}, {} quarantined; report {}",
        outcome.fixes.len(),
        outcome.interprocedural_count(),
        outcome.iterations,
        outcome.committed_rounds,
        journal_note,
        outcome.quarantined.len(),
        if clean { "clean" } else { "NOT clean" }
    );
}

/// `hippoctl optimize`: the inverse pass, standalone. Analyzes the module
/// for provably-redundant flushes, coalescable flushes, and sinkable
/// fences, then removes them in transactional rounds — each re-verified
/// with the dynamic checker and the crash-state explorer (byte-identical
/// output, no new or worsened bug site) and rolled back byte-identically
/// into quarantine otherwise. Prints every committed removal with its
/// happens-before witness.
fn optimize_cmd(args: &[String], obs: &pmobs::Obs) -> Result<(), String> {
    let o = parse(args)?;
    let mut m = load_obs(&o.sources, obs)?;
    let opts = pmredund::OptimizeOptions {
        entry: o.entry.clone(),
        explore_budget: o.budget,
        explore_seed: o.seed,
        explore_jobs: o.jobs,
        obs: obs.clone(),
        tier: o.tier,
        ..pmredund::OptimizeOptions::default()
    };
    let out = pmredund::optimize_module(&mut m, &opts).map_err(|e| e.to_string())?;
    for a in &out.applied {
        eprintln!("removed: {}", a.finding);
        eprintln!("   = witness: {}", a.finding.witness.claim);
        for ev in &a.finding.witness.events {
            eprintln!("   = via: {ev}");
        }
    }
    for q in &out.quarantined {
        eprintln!("quarantined: {} — {}", q.finding, q.reason);
    }
    eprintln!("-- {out}");
    let text = pmir::display::print_module(&m);
    emit(&o.out, &text)
}

/// The built-in fault-campaign workload: enough PM stores, flushes, and
/// loads for every trigger offset in the archetype catalogue to land, a
/// spin loop so a tightened fuel budget actually bites, observable output
/// for the do-no-harm equivalence check, one genuine durability bug for
/// the engine to fix, and a `recover` oracle for the exploration seeds.
const CAMPAIGN_SRC: &str = r#"
    fn main() {
        var p: ptr = pmem_map(3, 4096);
        store8(p, 0, 1);
        clwb(p);
        sfence();
        store8(p, 64, 2);
        clwb(p + 64);
        sfence();
        store8(p, 128, 3);
        clwb(p + 128);
        store8(p, 192, 4);
        var i: int = 0;
        while (i < 16) { i = i + 1; }
        print(load8(p, 0) + load8(p, 64));
        print(load8(p, 128) + load8(p, 192));
    }
    fn recover() -> int {
        var p: ptr = pmem_map(3, 4096);
        if (load8(p, 0) > 9) { return 1; }
        return 0;
    }
"#;

/// `hippoctl faultcampaign`: the robustness gate. For each seed in
/// `0..N`, arms the seeded fault plan on a full repair run and asserts
/// the hardened pipeline's contract: the injected fault surfaces as a
/// structured diagnostic or an explicit degradation (never a panic or a
/// hang), a diverging loop is ended by the watchdog, and the repaired
/// program's output matches the original's — the fault never changes
/// what the repair does to the program.
fn faultcampaign_cmd(args: &[String], obs: &pmobs::Obs) -> Result<(), String> {
    let mut seeds = 8u64;
    let mut jobs = 2usize;
    let mut entry = "main".to_string();
    let mut sources: Vec<String> = vec![];
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--metrics" => {
                // Consumed by `dispatch`; skip the value here.
                it.next().ok_or("--metrics needs a value")?;
            }
            "--timings" => {}
            "--seeds" => {
                let v = it.next().ok_or("--seeds needs a value")?;
                seeds = v
                    .parse::<u64>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--seeds needs a positive integer, got `{v}`"))?;
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                jobs = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--jobs needs a positive integer, got `{v}`"))?;
            }
            "--entry" => entry = it.next().ok_or("--entry needs a value")?.clone(),
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            src => sources.push(src.to_string()),
        }
    }
    let make_module = || -> Result<Module, String> {
        if sources.is_empty() {
            pmlang::compile_one("campaign.pmc", CAMPAIGN_SRC).map_err(|e| e.to_string())
        } else {
            load(&sources)
        }
    };
    let mut failures = vec![];
    for seed in 0..seeds {
        let plan = pmfault::FaultPlan::from_seed(seed);
        let _span = obs.span("cli.campaign_seed");
        // Transport faults fire at the daemon's connection boundary and
        // shard faults inside its campaign scheduler, not in the repair
        // pipeline — those seed families each run their daemon campaign.
        let outcome = if plan.targets_net() {
            hippod::netfault::campaign_seed(seed, "campaign.pmc", CAMPAIGN_SRC, obs)
        } else if plan.targets_shard() {
            hippod::chaos::campaign_seed(seed, "campaign.pmc", CAMPAIGN_SRC, obs)
        } else {
            campaign_seed(&make_module, &entry, seed, jobs, obs)
        };
        match outcome {
            Ok(line) => {
                obs.add("cli.campaign.passed", 1);
                eprintln!("seed {seed}: [{}] → ok: {line}", plan.describe());
            }
            Err(why) => {
                obs.add("cli.campaign.failed", 1);
                eprintln!("seed {seed}: [{}] → FAILED: {why}", plan.describe());
                failures.push(seed);
            }
        }
    }
    if failures.is_empty() {
        eprintln!("faultcampaign: {seeds}/{seeds} seed(s) passed");
        Ok(())
    } else {
        Err(format!(
            "faultcampaign: {} of {seeds} seed(s) failed: {failures:?}",
            failures.len()
        ))
    }
}

/// One campaign seed. Returns a summary line on success, the violated
/// assertion on failure.
fn campaign_seed(
    make_module: &dyn Fn() -> Result<Module, String>,
    entry: &str,
    seed: u64,
    jobs: usize,
    obs: &pmobs::Obs,
) -> Result<String, String> {
    use pmfault::FaultSite;
    let plan = pmfault::FaultPlan::from_seed(seed);
    // Explore-level faults need the exploration pool in the loop; every
    // other archetype runs dynamic + static so a degraded dynamic source
    // always has a surviving partner.
    let bug_source =
        if plan.targets(FaultSite::ExploreWorker) || plan.targets(FaultSite::ExploreOracle) {
            BugSource::Exploration
        } else {
            BugSource::Both
        };
    let baseline = {
        let m = make_module()?;
        Vm::new(VmOptions::default())
            .run(&m, entry)
            .map_err(|e| format!("baseline run failed: {e}"))?
    };
    let mut m = make_module()?;
    let opts = RepairOptions {
        bug_source,
        fault: Some(plan.clone()),
        watchdog_ms: Some(50),
        source_retries: 1,
        explore_budget: 128,
        explore_seed: seed,
        explore_jobs: jobs,
        obs: obs.clone(),
        ..RepairOptions::default()
    };
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        Hippocrates::new(opts).repair_until_clean(&mut m, entry)
    }))
    .map_err(|_| "pipeline panicked — it must degrade, not die".to_string())?
    .map_err(|e| format!("no degraded path survived: {e}"))?;
    if !outcome.clean {
        return Err("outcome not clean".to_string());
    }
    if outcome.degraded.is_empty() && outcome.diagnostics.is_empty() {
        return Err("injected fault left no structured diagnostic".to_string());
    }
    for d in &outcome.degraded {
        if d.source.is_empty() || d.reason.is_empty() {
            return Err(format!(
                "degradation must name its source and reason: {d:?}"
            ));
        }
    }
    if plan.targets(FaultSite::VmDiverge) {
        let saw_watchdog = outcome
            .degraded
            .iter()
            .any(|d| d.reason.contains("watchdog"))
            || outcome.diagnostics.iter().any(|d| d.contains("watchdog"));
        if !saw_watchdog {
            return Err("diverging plan did not trip the watchdog".to_string());
        }
    }
    let after = Vm::new(VmOptions::default())
        .run(&m, entry)
        .map_err(|e| format!("repaired program failed a fault-free run: {e}"))?;
    if baseline.output != after.output {
        return Err(format!(
            "repair under fault changed output: {:?} vs {:?}",
            baseline.output, after.output
        ));
    }
    Ok(format!(
        "{} fix(es), {} degradation(s), {} diagnostic(s)",
        outcome.fixes.len(),
        outcome.degraded.len(),
        outcome.diagnostics.len()
    ))
}

fn emit(out: &Option<String>, text: &str) -> Result<(), String> {
    match out {
        Some(path) => std::fs::write(path, text).map_err(|e| format!("{path}: {e}")),
        None => {
            print!("{text}");
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_flags() {
        let args: Vec<String> = ["a.pmc", "--entry", "go", "-o", "out.ir", "--intra-only"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let o = parse(&args).unwrap();
        assert_eq!(o.sources, vec!["a.pmc"]);
        assert_eq!(o.entry, "go");
        assert_eq!(o.out.as_deref(), Some("out.ir"));
        assert!(o.intra_only);
        assert!(!o.trace_aa);
    }

    #[test]
    fn parse_rejects_unknown_flags_and_empty() {
        assert!(parse(&["--bogus".to_string()]).is_err());
        assert!(parse(&[]).is_err());
    }

    #[test]
    fn parse_tier() {
        let args: Vec<String> = ["a.pmc", "--tier", "interp"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let o = parse(&args).unwrap();
        assert_eq!(o.tier, pmvm::ExecTier::Interp);
        let args: Vec<String> = ["a.pmc", "--tier", "fast"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(parse(&args).unwrap().tier, pmvm::ExecTier::Fast);
        // The default is the fast tier; bad spellings are rejected with
        // the supported set in the message.
        let o = parse(&["a.pmc".to_string()]).unwrap();
        assert_eq!(o.tier, pmvm::ExecTier::Fast);
        let err = match parse(&[
            "a.pmc".to_string(),
            "--tier".to_string(),
            "warp".to_string(),
        ]) {
            Err(e) => e,
            Ok(_) => panic!("`--tier warp` must be rejected"),
        };
        assert!(err.contains("fast|interp"), "{err}");
    }

    #[test]
    fn parse_deny_warnings() {
        let args: Vec<String> = ["a.pmc", "--deny", "warnings"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(parse(&args).unwrap().deny_warnings);
        let bad: Vec<String> = ["a.pmc", "--deny", "everything"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(parse(&bad).is_err());
    }

    #[test]
    fn parse_optimize_and_redundant_flags() {
        let args: Vec<String> = ["a.pmc", "--deny", "redundant", "--redundant", "--optimize"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let o = parse(&args).unwrap();
        assert!(o.deny_redundant);
        assert!(o.lint_redundant);
        assert!(o.optimize);
        assert!(!o.deny_warnings);
    }

    #[test]
    fn optimize_cmd_strips_redundancy_and_stays_clean() {
        let dir = scratch_dir("optimize_cmd");
        let src_path = dir.join("dup.pmc");
        std::fs::write(
            &src_path,
            "fn main() {\n    var p: ptr = pmem_map(2, 4096);\n    store8(p, 0, 1);\n    clwb(p);\n    sfence();\n    clwb(p);\n    sfence();\n    print(load8(p, 0));\n}\n",
        )
        .unwrap();
        let out_ir = dir.join("opt.ir");
        optimize_cmd(
            &[
                src_path.to_string_lossy().to_string(),
                "--budget".into(),
                "16".into(),
                "-o".into(),
                out_ir.to_string_lossy().to_string(),
            ],
            &pmobs::Obs::default(),
        )
        .unwrap();
        let m = pmir::parse::parse_module(&std::fs::read_to_string(&out_ir).unwrap()).unwrap();
        let checked = run_and_check(&m, "main", VmOptions::default()).unwrap();
        assert!(checked.report.is_clean());
        assert_eq!(checked.run.output, vec![1]);
        assert!(checked.run.stats.pm_flushes < 2 || checked.run.stats.fences < 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lint_deny_redundant_fails_on_redundant_module() {
        let dir = scratch_dir("lint_redundant");
        let src_path = dir.join("dup.pmc");
        std::fs::write(
            &src_path,
            "fn main() {\n    var p: ptr = pmem_map(2, 4096);\n    store8(p, 0, 1);\n    clwb(p);\n    sfence();\n    clwb(p);\n    sfence();\n}\n",
        )
        .unwrap();
        let err = lint_cmd(
            &[
                src_path.to_string_lossy().to_string(),
                "--deny".into(),
                "redundant".into(),
            ],
            &pmobs::Obs::default(),
        )
        .unwrap_err();
        assert!(err.contains("redundant"), "{err}");
        // Without --deny, the same module lints successfully (warnings only).
        lint_cmd(
            &[src_path.to_string_lossy().to_string(), "--redundant".into()],
            &pmobs::Obs::default(),
        )
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_bug_source() {
        let args: Vec<String> = ["a.pmc", "--bug-source", "static"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(parse(&args).unwrap().bug_source, BugSource::Static);
        let both: Vec<String> = ["a.pmc", "--bug-source", "both"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(parse(&both).unwrap().bug_source, BugSource::Both);
        let bad: Vec<String> = ["a.pmc", "--bug-source", "oracle"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(parse(&bad).is_err());
        let none = vec!["a.pmc".to_string()];
        assert_eq!(parse(&none).unwrap().bug_source, BugSource::Dynamic);
    }

    #[test]
    fn parse_explore_flags() {
        let args: Vec<String> = [
            "a.pmc",
            "--jobs",
            "4",
            "--budget",
            "128",
            "--seed",
            "7",
            "--recover",
            "chk",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let o = parse(&args).unwrap();
        assert_eq!(o.jobs, 4);
        assert_eq!(o.budget, 128);
        assert_eq!(o.seed, 7);
        assert_eq!(o.recover.as_deref(), Some("chk"));
        assert!(parse(&["a.pmc".into(), "--jobs".into(), "0".into()]).is_err());
        assert!(parse(&["a.pmc".into(), "--budget".into(), "x".into()]).is_err());
        let exp: Vec<String> = ["a.pmc", "--bug-source", "exploration"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(parse(&exp).unwrap().bug_source, BugSource::Exploration);
    }

    #[test]
    fn parse_transaction_flags() {
        let args: Vec<String> = [
            "a.pmc",
            "--journal",
            "r.journal",
            "--resume",
            "--show-quarantine",
            "--deadline-ms",
            "5000",
            "--step-quota",
            "12",
            "--crash-after-commit",
            "1",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let o = parse(&args).unwrap();
        assert_eq!(o.journal.as_deref(), Some("r.journal"));
        assert!(o.resume);
        assert!(o.show_quarantine);
        assert_eq!(o.deadline_ms, Some(5000));
        assert_eq!(o.step_quota, Some(12));
        assert_eq!(o.crash_after_commit, Some(1));
        assert!(parse(&["a.pmc".into(), "--deadline-ms".into(), "0".into()]).is_err());
        assert!(parse(&["a.pmc".into(), "--step-quota".into(), "x".into()]).is_err());
        assert!(parse(&["a.pmc".into(), "--journal".into()]).is_err());
    }

    #[test]
    fn fix_resume_without_journal_is_an_actionable_error() {
        let dir = scratch_dir("resume_nojournal");
        let src = dir.join("clean.pmc");
        std::fs::write(&src, CLEAN_SRC).unwrap();
        let err = fix_cmd(
            &[src.to_string_lossy().to_string(), "--resume".into()],
            &pmobs::Obs::default(),
        )
        .unwrap_err();
        assert!(err.contains("--journal"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lint_renders_rustc_style_excerpt() {
        let src = "fn main() {\n    var p: ptr = pmem_map(0, 4096);\n    store8(p, 0, 7);\n}\n";
        let m = pmlang::compile_one("demo.pmc", src).unwrap();
        let report = pmstatic::check_module(&m, "main").unwrap();
        let mut texts = std::collections::HashMap::new();
        texts.insert("demo.pmc".to_string(), src.to_string());
        let out = render_lint(&report, &texts);
        assert!(out.contains("warning: missing-flush&fence"), "{out}");
        assert!(out.contains("--> demo.pmc:3:"), "{out}");
        assert!(out.contains("store8(p, 0, 7);"), "{out}");
        assert!(out.contains("store of 8 byte(s) in `main`"), "{out}");
        assert!(out.contains("= note: audited at program end"), "{out}");
    }

    #[test]
    fn lint_renders_redundant_flush_diagnostic() {
        let src = "fn main() {\n    var h: ptr = alloc(64);\n    store8(h, 0, 1);\n    clwb(h);\n    sfence();\n}\n";
        let m = pmlang::compile_one("demo.pmc", src).unwrap();
        let report = pmstatic::check_module(&m, "main").unwrap();
        assert!(report.is_clean());
        assert_eq!(report.redundant_flushes.len(), 1);
        let mut texts = std::collections::HashMap::new();
        texts.insert("demo.pmc".to_string(), src.to_string());
        let out = render_lint(&report, &texts);
        assert!(out.contains("warning: redundant-flush"), "{out}");
        assert!(out.contains("clwb(h);"), "{out}");
    }

    #[test]
    fn dispatch_rejects_unknown_command() {
        assert!(dispatch(&["frobnicate".to_string()]).is_err());
        assert!(dispatch(&[]).is_err());
    }

    #[test]
    fn faultcampaign_rejects_bad_flags() {
        let obs = pmobs::Obs::default();
        assert!(faultcampaign_cmd(&["--seeds".into(), "0".into()], &obs).is_err());
        assert!(faultcampaign_cmd(&["--seeds".into(), "x".into()], &obs).is_err());
        assert!(faultcampaign_cmd(&["--bogus".into()], &obs).is_err());
    }

    #[test]
    fn campaign_seed_torn_store_passes() {
        let make = || pmlang::compile_one("campaign.pmc", CAMPAIGN_SRC).map_err(|e| e.to_string());
        let line = campaign_seed(&make, "main", 0, 1, &pmobs::Obs::default()).unwrap();
        assert!(line.contains("diagnostic"), "{line}");
    }

    #[test]
    fn campaign_seed_trace_truncation_passes() {
        let make = || pmlang::compile_one("campaign.pmc", CAMPAIGN_SRC).map_err(|e| e.to_string());
        campaign_seed(&make, "main", 3, 1, &pmobs::Obs::default()).unwrap();
    }

    /// A durability-clean program every subcommand can chew on.
    const CLEAN_SRC: &str = "fn main() {\n    var p: ptr = pmem_map(1, 4096);\n    store8(p, 0, 7);\n    clwb(p);\n    sfence();\n    print(load8(p, 0));\n}\n";

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("hippoctl_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn every_subcommand_accepts_metrics_and_writes_valid_json() {
        let dir = scratch_dir("metrics_smoke");
        let src_path = dir.join("clean.pmc");
        std::fs::write(&src_path, CLEAN_SRC).unwrap();
        let src = src_path.to_string_lossy().to_string();
        let out_ir = dir.join("out.ir").to_string_lossy().to_string();

        let cases: Vec<(&str, Vec<String>)> = vec![
            ("compile", vec![src.clone()]),
            ("run", vec![src.clone()]),
            ("trace", vec![src.clone()]),
            ("check", vec![src.clone()]),
            ("lint", vec![src.clone()]),
            ("explore", vec![src.clone(), "--budget".into(), "16".into()]),
            ("fix", vec![src.clone(), "-o".into(), out_ir]),
            (
                "optimize",
                vec![src.clone(), "--budget".into(), "16".into()],
            ),
            ("faultcampaign", vec!["--seeds".into(), "1".into()]),
            ("help", vec![]),
        ];
        for (cmd, rest) in cases {
            let metrics = dir.join(format!("m_{cmd}.json"));
            let mut args = vec![cmd.to_string()];
            args.extend(rest);
            args.push("--metrics".into());
            args.push(metrics.to_string_lossy().to_string());
            dispatch(&args).unwrap_or_else(|e| panic!("{cmd}: {e}"));
            let text = std::fs::read_to_string(&metrics)
                .unwrap_or_else(|e| panic!("{cmd}: metrics file missing: {e}"));
            let snap = pmobs::Snapshot::from_json(&text)
                .unwrap_or_else(|e| panic!("{cmd}: invalid metrics JSON: {e}"));
            assert!(
                snap.spans.iter().any(|s| s.name == format!("cli.{cmd}")),
                "{cmd}: no cli.{cmd} span in {:?}",
                snap.span_stages()
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_file_lands_even_when_the_command_fails() {
        let dir = scratch_dir("metrics_err");
        let metrics = dir.join("m.json");
        let args: Vec<String> = vec![
            "run".into(),
            dir.join("no_such_file.pmc").to_string_lossy().to_string(),
            "--metrics".into(),
            metrics.to_string_lossy().to_string(),
        ];
        assert!(dispatch(&args).is_err());
        let snap = pmobs::Snapshot::from_json(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
        assert!(snap.spans.iter().any(|s| s.name == "cli.run"));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The ISSUE acceptance command: an exploration-sourced fix of the
    /// ordering demo must cover at least six pipeline stages and count the
    /// fences/flushes it inserted.
    #[test]
    fn exploration_fix_metrics_cover_six_stages_and_inserted_fixes() {
        let dir = scratch_dir("metrics_stages");
        let demo = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../examples/ordering_demo.pmc"
        );
        let metrics = dir.join("m.json");
        let args: Vec<String> = [
            "fix",
            demo,
            "--bug-source",
            "exploration",
            "--budget",
            "64",
            "--seed",
            "0",
            "-o",
            &dir.join("healed.ir").to_string_lossy(),
            "--metrics",
            &metrics.to_string_lossy(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        dispatch(&args).unwrap();
        let snap = pmobs::Snapshot::from_json(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
        let stages = snap.span_stages();
        assert!(
            stages.len() >= 6,
            "only {} stages: {stages:?}",
            stages.len()
        );
        for stage in ["cli", "repair", "explore", "vm", "check", "trace"] {
            assert!(
                stages.contains(stage),
                "missing stage `{stage}`: {stages:?}"
            );
        }
        let inserted = snap
            .counters
            .get("repair.inserted.fences")
            .copied()
            .unwrap_or(0)
            + snap
                .counters
                .get("repair.inserted.flushes")
                .copied()
                .unwrap_or(0);
        assert!(
            inserted >= 1,
            "no inserted fixes counted: {:?}",
            snap.counters
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
