//! Subcommand parsing and execution.

use hippocrates::{Hippocrates, MarkingMode, RepairOptions};
use pmcheck::run_and_check;
use pmir::Module;
use pmvm::{Vm, VmOptions};
use std::fmt::Write as _;

/// Top-level dispatch.
///
/// # Errors
///
/// Returns a human-readable error string for usage problems, compile
/// errors, traps, and failed repairs.
pub fn dispatch(args: &[String]) -> Result<(), String> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err(usage());
    };
    match cmd.as_str() {
        "compile" => compile_cmd(rest),
        "run" => run_cmd(rest),
        "trace" => trace_cmd(rest),
        "check" => check_cmd(rest),
        "fix" => fix_cmd(rest),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn usage() -> String {
    let mut s = String::from("usage:\n");
    for line in [
        "hippoctl compile <src>...                        emit textual IR",
        "hippoctl run     <src>... [--entry NAME]         execute and print output",
        "hippoctl trace   <src>... [--entry NAME]         emit the PM trace as JSON",
        "hippoctl check   <src>... [--entry NAME]         durability-bug report",
        "hippoctl fix     <src>... [--entry NAME] [-o F]  repair; write fixed IR",
        "                 [--intra-only] [--trace-aa] [--portable]",
    ] {
        let _ = writeln!(s, "  {line}");
    }
    s
}

/// Parsed common flags.
struct Opts {
    sources: Vec<String>,
    entry: String,
    out: Option<String>,
    intra_only: bool,
    trace_aa: bool,
    portable: bool,
}

fn parse(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts {
        sources: vec![],
        entry: "main".to_string(),
        out: None,
        intra_only: false,
        trace_aa: false,
        portable: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--entry" => {
                o.entry = it.next().ok_or("--entry needs a value")?.clone();
            }
            "-o" | "--out" => {
                o.out = Some(it.next().ok_or("-o needs a value")?.clone());
            }
            "--intra-only" => o.intra_only = true,
            "--trace-aa" => o.trace_aa = true,
            "--portable" => o.portable = true,
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag `{flag}`"));
            }
            src => o.sources.push(src.to_string()),
        }
    }
    if o.sources.is_empty() {
        return Err("no source files given".to_string());
    }
    Ok(o)
}

/// Loads and links the given sources: `.ir` files parse as textual pmir
/// (at most one, alone); anything else compiles as pmlang.
fn load(sources: &[String]) -> Result<Module, String> {
    if sources.iter().any(|s| s.ends_with(".ir")) {
        if sources.len() != 1 {
            return Err("an .ir module must be loaded alone".to_string());
        }
        let text = std::fs::read_to_string(&sources[0])
            .map_err(|e| format!("{}: {e}", sources[0]))?;
        let m = pmir::parse::parse_module(&text).map_err(|e| e.to_string())?;
        pmir::verify::verify_module(&m).map_err(|e| e.to_string())?;
        return Ok(m);
    }
    let mut c = pmlang::Compiler::new();
    for s in sources {
        let text = std::fs::read_to_string(s).map_err(|e| format!("{s}: {e}"))?;
        c = c.source(s.clone(), text);
    }
    c.compile().map_err(|e| e.to_string())
}

fn compile_cmd(args: &[String]) -> Result<(), String> {
    let o = parse(args)?;
    let m = load(&o.sources)?;
    let text = pmir::display::print_module(&m);
    emit(&o.out, &text)
}

fn run_cmd(args: &[String]) -> Result<(), String> {
    let o = parse(args)?;
    let m = load(&o.sources)?;
    let r = Vm::new(VmOptions::bench())
        .run(&m, &o.entry)
        .map_err(|e| e.to_string())?;
    for v in &r.output {
        println!("{v}");
    }
    eprintln!(
        "-- {:?} after {} steps, {} simulated cycles ({} PM stores, {} flushes, {} fences)",
        r.ended,
        r.steps,
        r.stats.cycles,
        r.stats.pm_stores,
        r.stats.total_flushes(),
        r.stats.fences
    );
    Ok(())
}

fn trace_cmd(args: &[String]) -> Result<(), String> {
    let o = parse(args)?;
    let m = load(&o.sources)?;
    let checked = run_and_check(&m, &o.entry, VmOptions::default()).map_err(|e| e.to_string())?;
    let json = checked.trace.to_json().map_err(|e| e.to_string())?;
    emit(&o.out, &json)
}

fn check_cmd(args: &[String]) -> Result<(), String> {
    let o = parse(args)?;
    let m = load(&o.sources)?;
    let checked = run_and_check(&m, &o.entry, VmOptions::default()).map_err(|e| e.to_string())?;
    print!("{}", checked.report.render());
    if checked.report.is_clean() {
        Ok(())
    } else {
        Err(format!(
            "{} durability bug(s) found",
            checked.report.deduped_bugs().len()
        ))
    }
}

fn fix_cmd(args: &[String]) -> Result<(), String> {
    let o = parse(args)?;
    let mut m = load(&o.sources)?;
    let opts = RepairOptions {
        hoisting: !o.intra_only,
        marking: if o.trace_aa {
            MarkingMode::TraceAa
        } else {
            MarkingMode::FullAa
        },
        portable_fixes: o.portable,
        ..RepairOptions::default()
    };
    let outcome = Hippocrates::new(opts)
        .repair_until_clean(&mut m, &o.entry)
        .map_err(|e| e.to_string())?;
    for fix in &outcome.fixes {
        eprintln!("applied: {fix}");
    }
    eprintln!(
        "-- {} fix(es), {} interprocedural, {} iteration(s); report clean",
        outcome.fixes.len(),
        outcome.interprocedural_count(),
        outcome.iterations
    );
    let text = pmir::display::print_module(&m);
    emit(&o.out, &text)
}

fn emit(out: &Option<String>, text: &str) -> Result<(), String> {
    match out {
        Some(path) => std::fs::write(path, text).map_err(|e| format!("{path}: {e}")),
        None => {
            print!("{text}");
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_flags() {
        let args: Vec<String> = ["a.pmc", "--entry", "go", "-o", "out.ir", "--intra-only"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let o = parse(&args).unwrap();
        assert_eq!(o.sources, vec!["a.pmc"]);
        assert_eq!(o.entry, "go");
        assert_eq!(o.out.as_deref(), Some("out.ir"));
        assert!(o.intra_only);
        assert!(!o.trace_aa);
    }

    #[test]
    fn parse_rejects_unknown_flags_and_empty() {
        assert!(parse(&["--bogus".to_string()]).is_err());
        assert!(parse(&[]).is_err());
    }

    #[test]
    fn dispatch_rejects_unknown_command() {
        assert!(dispatch(&["frobnicate".to_string()]).is_err());
        assert!(dispatch(&[]).is_err());
    }
}
