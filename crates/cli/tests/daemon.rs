//! System tests for the repair-as-a-service daemon, driven through the
//! real `hippoctl` binary and a real Unix socket:
//!
//! - N concurrent fix campaigns on distinct apps produce artifacts
//!   byte-identical to standalone `hippoctl fix` runs over the same files;
//! - `kill -9` on the daemon mid-campaign, then a restart on the same
//!   journal, resumes every in-flight job to the same committed result;
//! - a concurrent `hippoctl fix --journal` against a daemon-held journal
//!   refuses with the holder's pid.

use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

const CAMPAIGNS: usize = 4;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hippoctl_daemon_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Distinct buggy apps: different pools, offsets, and values, each with
/// one unflushed store for the repair loop to fix.
fn write_app(dir: &Path, i: usize) -> String {
    let path = dir.join(format!("app{i}.pmc"));
    std::fs::write(
        &path,
        format!(
            "fn main() {{\n    var p: ptr = pmem_map({i}, 4096);\n    store8(p, 0, {});\n    clwb(p);\n    sfence();\n    store8(p, {}, {});\n    print(load8(p, 0));\n}}\n",
            i + 1,
            64 * (i + 1),
            i + 10,
        ),
    )
    .unwrap();
    path.to_string_lossy().to_string()
}

fn hippoctl(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_hippoctl"))
        .args(args)
        .output()
        .unwrap()
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Standalone references: what the daemon's artifacts must match, byte
/// for byte.
fn reference_fixes(dir: &Path, apps: &[String]) -> Vec<String> {
    apps.iter()
        .enumerate()
        .map(|(i, app)| {
            let out_ir = dir.join(format!("ref{i}.ir"));
            let out = hippoctl(&["fix", app, "-o", &out_ir.to_string_lossy()]);
            assert!(out.status.success(), "{}", stderr_of(&out));
            std::fs::read_to_string(&out_ir).unwrap()
        })
        .collect()
}

fn spawn_daemon(socket: &Path, journal: &Path, extra: &[&str]) -> Child {
    let mut args = vec![
        "serve".to_string(),
        "--socket".to_string(),
        socket.to_string_lossy().to_string(),
        "--journal".to_string(),
        journal.to_string_lossy().to_string(),
        "--workers".to_string(),
        "2".to_string(),
    ];
    args.extend(extra.iter().map(|s| s.to_string()));
    let child = Command::new(env!("CARGO_BIN_EXE_hippoctl"))
        .args(&args)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    // Wait for the socket to answer.
    let deadline = Instant::now() + Duration::from_secs(10);
    while UnixStream::connect(socket).is_err() {
        assert!(Instant::now() < deadline, "daemon never bound its socket");
        std::thread::sleep(Duration::from_millis(10));
    }
    child
}

fn shutdown_daemon(socket: &Path, mut child: Child) {
    let out = hippoctl(&["shutdown", "--socket", &socket.to_string_lossy()]);
    assert!(out.status.success(), "{}", stderr_of(&out));
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if child.try_wait().unwrap().is_some() {
            return;
        }
        assert!(Instant::now() < deadline, "daemon never drained");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn concurrent_campaigns_are_byte_identical_to_standalone_runs() {
    let dir = scratch("concurrent");
    let apps: Vec<String> = (0..CAMPAIGNS).map(|i| write_app(&dir, i)).collect();
    let references = reference_fixes(&dir, &apps);

    let socket = dir.join("hippod.sock");
    let journal = dir.join("jobs.journal");
    let daemon = spawn_daemon(&socket, &journal, &[]);

    // All campaigns in flight at once, each through its own client.
    std::thread::scope(|s| {
        for (i, app) in apps.iter().enumerate() {
            let socket = socket.clone();
            let out_ir = dir.join(format!("daemon{i}.ir"));
            s.spawn(move || {
                let out = hippoctl(&[
                    "submit",
                    "--socket",
                    &socket.to_string_lossy(),
                    app,
                    "--kind",
                    "fix",
                    "--wait",
                    "-o",
                    &out_ir.to_string_lossy(),
                ]);
                assert!(out.status.success(), "{}", stderr_of(&out));
            });
        }
    });
    for (i, reference) in references.iter().enumerate() {
        let daemon_ir = std::fs::read_to_string(dir.join(format!("daemon{i}.ir"))).unwrap();
        assert_eq!(
            &daemon_ir, reference,
            "campaign {i}: daemon artifact differs from the standalone run"
        );
    }

    // Resubmitting an identical campaign is served warm — and still
    // byte-identical.
    let warm_ir = dir.join("warm0.ir");
    let warm = hippoctl(&[
        "submit",
        "--socket",
        &socket.to_string_lossy(),
        &apps[0],
        "--kind",
        "fix",
        "--wait",
        "-o",
        &warm_ir.to_string_lossy(),
    ]);
    assert!(warm.status.success(), "{}", stderr_of(&warm));
    assert!(
        stderr_of(&warm).contains("warm cache"),
        "identical resubmission must hit the result cache: {}",
        stderr_of(&warm)
    );
    assert_eq!(std::fs::read_to_string(&warm_ir).unwrap(), references[0]);

    // Health reflects the finished campaigns.
    let health = hippoctl(&["health", "--socket", &socket.to_string_lossy()]);
    assert!(health.status.success(), "{}", stderr_of(&health));
    let health_json = String::from_utf8_lossy(&health.stdout).into_owned();
    assert!(health_json.contains("\"ok\":true"), "{health_json}");

    shutdown_daemon(&socket, daemon);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sigkill_mid_campaign_then_restart_resumes_every_job() {
    let dir = scratch("sigkill");
    let apps: Vec<String> = (0..CAMPAIGNS).map(|i| write_app(&dir, i)).collect();
    let references = reference_fixes(&dir, &apps);

    let socket = dir.join("hippod.sock");
    let journal = dir.join("jobs.journal");
    let mut daemon = spawn_daemon(&socket, &journal, &[]);

    // Submit every campaign without waiting, then SIGKILL the daemon while
    // they are in flight. The race is deliberate: any mix of finished and
    // in-flight jobs is a state resume must absorb.
    let mut ids = vec![];
    for app in &apps {
        let out = hippoctl(&[
            "submit",
            "--socket",
            &socket.to_string_lossy(),
            app,
            "--kind",
            "fix",
        ]);
        assert!(out.status.success(), "{}", stderr_of(&out));
        ids.push(String::from_utf8_lossy(&out.stdout).trim().to_string());
    }
    daemon.kill().unwrap(); // SIGKILL on unix
    daemon.wait().unwrap();

    // Restart on the same journal (the dead daemon's stale socket file and
    // journal lock must not get in the way).
    let daemon = spawn_daemon(&socket, &journal, &[]);

    // Every acknowledged job reaches `done` — resumed ones re-run, already
    // finished ones replay their journaled result.
    let deadline = Instant::now() + Duration::from_secs(120);
    for id in &ids {
        loop {
            let out = hippoctl(&["status", "--socket", &socket.to_string_lossy(), id]);
            assert!(out.status.success(), "{}", stderr_of(&out));
            let line = String::from_utf8_lossy(&out.stdout).into_owned();
            if line.contains(" done ")
                || line.trim_end().ends_with(" done")
                || line.contains("done —")
            {
                break;
            }
            assert!(
                !line.contains("failed"),
                "job {id} failed after resume: {line}"
            );
            assert!(
                Instant::now() < deadline,
                "job {id} never settled after resume: {line}"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    // The committed results are the standalone ones: resubmitting each
    // campaign (same spec → same digest) emits byte-identical artifacts,
    // served from the journal-reseeded warm cache.
    for (i, app) in apps.iter().enumerate() {
        let out_ir = dir.join(format!("resumed{i}.ir"));
        let out = hippoctl(&[
            "submit",
            "--socket",
            &socket.to_string_lossy(),
            app,
            "--kind",
            "fix",
            "--wait",
            "-o",
            &out_ir.to_string_lossy(),
        ]);
        assert!(out.status.success(), "{}", stderr_of(&out));
        assert_eq!(
            std::fs::read_to_string(&out_ir).unwrap(),
            references[i],
            "campaign {i}: resumed artifact differs from the standalone run"
        );
    }

    shutdown_daemon(&socket, daemon);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn daemon_held_journal_refuses_a_concurrent_fix_with_the_holder_pid() {
    let dir = scratch("lock");
    let app = write_app(&dir, 0);
    let socket = dir.join("hippod.sock");
    let journal = dir.join("jobs.journal");
    let daemon = spawn_daemon(&socket, &journal, &[]);

    // A standalone journaled fix against the daemon's journal must refuse
    // loudly instead of interleaving appends.
    let out = hippoctl(&["fix", &app, "--journal", &journal.to_string_lossy()]);
    let err = stderr_of(&out);
    assert!(!out.status.success(), "the held journal must refuse");
    assert!(err.contains("held by pid"), "{err}");

    // And a second daemon on the same journal refuses the same way.
    let second = hippoctl(&[
        "serve",
        "--socket",
        &dir.join("other.sock").to_string_lossy(),
        "--journal",
        &journal.to_string_lossy(),
    ]);
    let err2 = stderr_of(&second);
    assert!(!second.status.success());
    assert!(err2.contains("held by pid"), "{err2}");

    shutdown_daemon(&socket, daemon);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn injected_worker_fault_fails_one_campaign_and_spares_the_rest() {
    let dir = scratch("fault");
    let apps: Vec<String> = (0..3).map(|i| write_app(&dir, i)).collect();
    let socket = dir.join("hippod.sock");
    let journal = dir.join("jobs.journal");
    let daemon = spawn_daemon(&socket, &journal, &["--fault-worker", "0"]);

    let mut results = vec![];
    for app in &apps {
        let out = hippoctl(&[
            "submit",
            "--socket",
            &socket.to_string_lossy(),
            app,
            "--kind",
            "fix",
            "--wait",
        ]);
        results.push((out.status.success(), stderr_of(&out)));
    }
    let failures: Vec<_> = results.iter().filter(|(ok, _)| !ok).collect();
    assert_eq!(
        failures.len(),
        1,
        "exactly the injected job fails: {results:?}"
    );
    assert!(
        failures[0].1.contains("injected"),
        "the failure must be attributed to the injection: {}",
        failures[0].1
    );

    // The daemon survived and still answers.
    let health = hippoctl(&["health", "--socket", &socket.to_string_lossy()]);
    assert!(health.status.success(), "{}", stderr_of(&health));
    shutdown_daemon(&socket, daemon);
    std::fs::remove_dir_all(&dir).ok();
}
