//! System tests for the repair-as-a-service daemon, driven through the
//! real `hippoctl` binary and a real Unix socket:
//!
//! - N concurrent fix campaigns on distinct apps produce artifacts
//!   byte-identical to standalone `hippoctl fix` runs over the same files;
//! - `kill -9` on the daemon mid-campaign, then a restart on the same
//!   journal, resumes every in-flight job to the same committed result;
//! - a concurrent `hippoctl fix --journal` against a daemon-held journal
//!   refuses with the holder's pid.

use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

const CAMPAIGNS: usize = 4;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hippoctl_daemon_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Distinct buggy apps: different pools, offsets, and values, each with
/// one unflushed store for the repair loop to fix.
fn write_app(dir: &Path, i: usize) -> String {
    let path = dir.join(format!("app{i}.pmc"));
    std::fs::write(
        &path,
        format!(
            "fn main() {{\n    var p: ptr = pmem_map({i}, 4096);\n    store8(p, 0, {});\n    clwb(p);\n    sfence();\n    store8(p, {}, {});\n    print(load8(p, 0));\n}}\n",
            i + 1,
            64 * (i + 1),
            i + 10,
        ),
    )
    .unwrap();
    path.to_string_lossy().to_string()
}

fn hippoctl(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_hippoctl"))
        .args(args)
        .output()
        .unwrap()
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Standalone references: what the daemon's artifacts must match, byte
/// for byte.
fn reference_fixes(dir: &Path, apps: &[String]) -> Vec<String> {
    apps.iter()
        .enumerate()
        .map(|(i, app)| {
            let out_ir = dir.join(format!("ref{i}.ir"));
            let out = hippoctl(&["fix", app, "-o", &out_ir.to_string_lossy()]);
            assert!(out.status.success(), "{}", stderr_of(&out));
            std::fs::read_to_string(&out_ir).unwrap()
        })
        .collect()
}

fn spawn_daemon(socket: &Path, journal: &Path, extra: &[&str]) -> Child {
    let mut args = vec![
        "serve".to_string(),
        "--socket".to_string(),
        socket.to_string_lossy().to_string(),
        "--journal".to_string(),
        journal.to_string_lossy().to_string(),
        "--workers".to_string(),
        "2".to_string(),
    ];
    args.extend(extra.iter().map(|s| s.to_string()));
    let child = Command::new(env!("CARGO_BIN_EXE_hippoctl"))
        .args(&args)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    // Wait for the socket to answer.
    let deadline = Instant::now() + Duration::from_secs(10);
    while UnixStream::connect(socket).is_err() {
        assert!(Instant::now() < deadline, "daemon never bound its socket");
        std::thread::sleep(Duration::from_millis(10));
    }
    child
}

fn shutdown_daemon(socket: &Path, mut child: Child) {
    let out = hippoctl(&["shutdown", "--socket", &socket.to_string_lossy()]);
    assert!(out.status.success(), "{}", stderr_of(&out));
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if child.try_wait().unwrap().is_some() {
            return;
        }
        assert!(Instant::now() < deadline, "daemon never drained");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn concurrent_campaigns_are_byte_identical_to_standalone_runs() {
    let dir = scratch("concurrent");
    let apps: Vec<String> = (0..CAMPAIGNS).map(|i| write_app(&dir, i)).collect();
    let references = reference_fixes(&dir, &apps);

    let socket = dir.join("hippod.sock");
    let journal = dir.join("jobs.journal");
    let daemon = spawn_daemon(&socket, &journal, &[]);

    // All campaigns in flight at once, each through its own client.
    std::thread::scope(|s| {
        for (i, app) in apps.iter().enumerate() {
            let socket = socket.clone();
            let out_ir = dir.join(format!("daemon{i}.ir"));
            s.spawn(move || {
                let out = hippoctl(&[
                    "submit",
                    "--socket",
                    &socket.to_string_lossy(),
                    app,
                    "--kind",
                    "fix",
                    "--wait",
                    "-o",
                    &out_ir.to_string_lossy(),
                ]);
                assert!(out.status.success(), "{}", stderr_of(&out));
            });
        }
    });
    for (i, reference) in references.iter().enumerate() {
        let daemon_ir = std::fs::read_to_string(dir.join(format!("daemon{i}.ir"))).unwrap();
        assert_eq!(
            &daemon_ir, reference,
            "campaign {i}: daemon artifact differs from the standalone run"
        );
    }

    // Resubmitting an identical campaign is served warm — and still
    // byte-identical.
    let warm_ir = dir.join("warm0.ir");
    let warm = hippoctl(&[
        "submit",
        "--socket",
        &socket.to_string_lossy(),
        &apps[0],
        "--kind",
        "fix",
        "--wait",
        "-o",
        &warm_ir.to_string_lossy(),
    ]);
    assert!(warm.status.success(), "{}", stderr_of(&warm));
    assert!(
        stderr_of(&warm).contains("warm cache"),
        "identical resubmission must hit the result cache: {}",
        stderr_of(&warm)
    );
    assert_eq!(std::fs::read_to_string(&warm_ir).unwrap(), references[0]);

    // Health reflects the finished campaigns.
    let health = hippoctl(&["health", "--socket", &socket.to_string_lossy()]);
    assert!(health.status.success(), "{}", stderr_of(&health));
    let health_json = String::from_utf8_lossy(&health.stdout).into_owned();
    assert!(health_json.contains("\"ok\":true"), "{health_json}");

    shutdown_daemon(&socket, daemon);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sigkill_mid_campaign_then_restart_resumes_every_job() {
    let dir = scratch("sigkill");
    let apps: Vec<String> = (0..CAMPAIGNS).map(|i| write_app(&dir, i)).collect();
    let references = reference_fixes(&dir, &apps);

    let socket = dir.join("hippod.sock");
    let journal = dir.join("jobs.journal");
    let mut daemon = spawn_daemon(&socket, &journal, &[]);

    // Submit every campaign without waiting, then SIGKILL the daemon while
    // they are in flight. The race is deliberate: any mix of finished and
    // in-flight jobs is a state resume must absorb.
    let mut ids = vec![];
    for app in &apps {
        let out = hippoctl(&[
            "submit",
            "--socket",
            &socket.to_string_lossy(),
            app,
            "--kind",
            "fix",
        ]);
        assert!(out.status.success(), "{}", stderr_of(&out));
        ids.push(String::from_utf8_lossy(&out.stdout).trim().to_string());
    }
    daemon.kill().unwrap(); // SIGKILL on unix
    daemon.wait().unwrap();

    // Restart on the same journal (the dead daemon's stale socket file and
    // journal lock must not get in the way).
    let daemon = spawn_daemon(&socket, &journal, &[]);

    // Every acknowledged job reaches `done` — resumed ones re-run, already
    // finished ones replay their journaled result.
    let deadline = Instant::now() + Duration::from_secs(120);
    for id in &ids {
        loop {
            let out = hippoctl(&["status", "--socket", &socket.to_string_lossy(), id]);
            assert!(out.status.success(), "{}", stderr_of(&out));
            let line = String::from_utf8_lossy(&out.stdout).into_owned();
            if line.contains(" done ")
                || line.trim_end().ends_with(" done")
                || line.contains("done —")
            {
                break;
            }
            assert!(
                !line.contains("failed"),
                "job {id} failed after resume: {line}"
            );
            assert!(
                Instant::now() < deadline,
                "job {id} never settled after resume: {line}"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    // The committed results are the standalone ones: resubmitting each
    // campaign (same spec → same digest) emits byte-identical artifacts,
    // served from the journal-reseeded warm cache.
    for (i, app) in apps.iter().enumerate() {
        let out_ir = dir.join(format!("resumed{i}.ir"));
        let out = hippoctl(&[
            "submit",
            "--socket",
            &socket.to_string_lossy(),
            app,
            "--kind",
            "fix",
            "--wait",
            "-o",
            &out_ir.to_string_lossy(),
        ]);
        assert!(out.status.success(), "{}", stderr_of(&out));
        assert_eq!(
            std::fs::read_to_string(&out_ir).unwrap(),
            references[i],
            "campaign {i}: resumed artifact differs from the standalone run"
        );
    }

    shutdown_daemon(&socket, daemon);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn daemon_held_journal_refuses_a_concurrent_fix_with_the_holder_pid() {
    let dir = scratch("lock");
    let app = write_app(&dir, 0);
    let socket = dir.join("hippod.sock");
    let journal = dir.join("jobs.journal");
    let daemon = spawn_daemon(&socket, &journal, &[]);

    // A standalone journaled fix against the daemon's journal must refuse
    // loudly instead of interleaving appends.
    let out = hippoctl(&["fix", &app, "--journal", &journal.to_string_lossy()]);
    let err = stderr_of(&out);
    assert!(!out.status.success(), "the held journal must refuse");
    assert!(err.contains("held by pid"), "{err}");

    // And a second daemon on the same journal refuses the same way.
    let second = hippoctl(&[
        "serve",
        "--socket",
        &dir.join("other.sock").to_string_lossy(),
        "--journal",
        &journal.to_string_lossy(),
    ]);
    let err2 = stderr_of(&second);
    assert!(!second.status.success());
    assert!(err2.contains("held by pid"), "{err2}");

    shutdown_daemon(&socket, daemon);
    std::fs::remove_dir_all(&dir).ok();
}

/// A multi-persist explore workload: four shards each get real frontiers.
fn write_explore_app(dir: &Path) -> String {
    let path = dir.join("explore.pmc");
    std::fs::write(
        &path,
        "fn main() {\n    var p: ptr = pmem_map(9, 4096);\n    store8(p, 0, 1);\n    clwb(p);\n    sfence();\n    store8(p, 64, 2);\n    clwb(p + 64);\n    sfence();\n    store8(p, 128, 3);\n    print(load8(p, 0) + load8(p, 64) + load8(p, 128));\n}\n",
    )
    .unwrap();
    path.to_string_lossy().to_string()
}

fn health_of(socket: &Path) -> Option<String> {
    let out = hippoctl(&["health", "--socket", &socket.to_string_lossy()]);
    out.status
        .success()
        .then(|| String::from_utf8_lossy(&out.stdout).into_owned())
}

fn epoch_in(health: &str) -> u64 {
    let tail = &health[health.find("\"epoch\":").expect("health reports an epoch") + 8..];
    tail.chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap()
}

/// Polls the given sockets until exactly one answers as a non-standby
/// primary, returning its index and election epoch.
fn find_primary(sockets: &[PathBuf]) -> (usize, u64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        for (i, socket) in sockets.iter().enumerate() {
            if let Some(h) = health_of(socket) {
                if h.contains("\"standby\":false") {
                    return (i, epoch_in(&h));
                }
            }
        }
        assert!(Instant::now() < deadline, "no primary emerged");
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn triple_standby_election_survives_five_primary_kills() {
    let dir = scratch("election");
    let journal = dir.join("jobs.journal");
    let apps: Vec<String> = (0..5).map(|i| write_app(&dir, i)).collect();
    let references = reference_fixes(&dir, &apps);

    // One primary, three standbys, all contending for the same journal.
    let mut sockets: Vec<PathBuf> = vec![dir.join("d0.sock")];
    let mut daemons = vec![spawn_daemon(&sockets[0], &journal, &[])];
    for i in 1..4 {
        let socket = dir.join(format!("d{i}.sock"));
        daemons.push(spawn_daemon(&socket, &journal, &["--standby"]));
        sockets.push(socket);
    }

    let mut last_epoch = 0u64;
    for round in 0..5 {
        // Whoever holds the primaryship serves a real campaign,
        // byte-identical to the standalone run...
        let (leader, epoch) = find_primary(&sockets);
        assert!(
            epoch > last_epoch,
            "round {round}: epoch {epoch} did not grow past {last_epoch}"
        );
        last_epoch = epoch;
        let out_ir = dir.join(format!("round{round}.ir"));
        let out = hippoctl(&[
            "submit",
            "--socket",
            &sockets[leader].to_string_lossy(),
            &apps[round],
            "--kind",
            "fix",
            "--wait",
            "-o",
            &out_ir.to_string_lossy(),
        ]);
        assert!(out.status.success(), "round {round}: {}", stderr_of(&out));
        assert_eq!(
            std::fs::read_to_string(&out_ir).unwrap(),
            references[round],
            "round {round}: artifact differs from the standalone run"
        );

        // ...then dies without warning. A fresh standby joins the pool so
        // the election always has three contenders.
        let mut dead = daemons.remove(leader);
        sockets.remove(leader);
        dead.kill().unwrap(); // SIGKILL
        dead.wait().unwrap();
        let socket = dir.join(format!("r{round}.sock"));
        daemons.push(spawn_daemon(&socket, &journal, &["--standby"]));
        sockets.push(socket);
    }

    // Five murders later the pool still elects a primary and still serves.
    let (leader, epoch) = find_primary(&sockets);
    assert!(epoch > last_epoch);
    let health = health_of(&sockets[leader]).unwrap();
    assert!(health.contains("\"ok\":true"), "{health}");

    // Standbys first, so nobody takes over mid-teardown.
    for i in (0..daemons.len()).rev() {
        if i != leader {
            shutdown_daemon(&sockets[i], daemons.remove(i));
            sockets.remove(i);
        }
    }
    shutdown_daemon(&sockets[0], daemons.remove(0));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sigkill_mid_sharded_campaign_resumes_byte_identically() {
    let dir = scratch("shardkill");
    let app = write_explore_app(&dir);

    // Reference: the same 4-shard campaign on an undisturbed daemon.
    let ref_socket = dir.join("ref.sock");
    let ref_daemon = spawn_daemon(&ref_socket, &dir.join("ref.journal"), &[]);
    let ref_ir = dir.join("ref.out");
    let out = hippoctl(&[
        "submit",
        "--socket",
        &ref_socket.to_string_lossy(),
        &app,
        "--kind",
        "explore",
        "--shards",
        "4",
        "--wait",
        "-o",
        &ref_ir.to_string_lossy(),
    ]);
    assert!(out.status.success(), "{}", stderr_of(&out));
    let reference = std::fs::read_to_string(&ref_ir).unwrap();
    assert!(reference.contains("== shard 0/4 =="), "{reference}");
    shutdown_daemon(&ref_socket, ref_daemon);

    // The real run: SIGKILL the daemon while shards are in flight.
    let socket = dir.join("hippod.sock");
    let journal = dir.join("jobs.journal");
    let mut daemon = spawn_daemon(&socket, &journal, &[]);
    let out = hippoctl(&[
        "submit",
        "--socket",
        &socket.to_string_lossy(),
        &app,
        "--kind",
        "explore",
        "--shards",
        "4",
    ]);
    assert!(out.status.success(), "{}", stderr_of(&out));
    let id = String::from_utf8_lossy(&out.stdout).trim().to_string();
    std::thread::sleep(Duration::from_millis(150)); // let some shards commit
    daemon.kill().unwrap();
    daemon.wait().unwrap();

    // The successor replays the journal, re-leases the unfinished shards,
    // and settles the campaign.
    let daemon = spawn_daemon(&socket, &journal, &[]);
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let out = hippoctl(&["status", "--socket", &socket.to_string_lossy(), &id]);
        assert!(out.status.success(), "{}", stderr_of(&out));
        let line = String::from_utf8_lossy(&out.stdout).into_owned();
        if line.contains(" done ") || line.trim_end().ends_with(" done") || line.contains("done —")
        {
            break;
        }
        assert!(
            !line.contains("failed"),
            "campaign failed after resume: {line}"
        );
        assert!(
            Instant::now() < deadline,
            "campaign never settled after resume: {line}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // The merged artifact is byte-identical to the undisturbed run.
    let resumed_ir = dir.join("resumed.out");
    let out = hippoctl(&[
        "submit",
        "--socket",
        &socket.to_string_lossy(),
        &app,
        "--kind",
        "explore",
        "--shards",
        "4",
        "--wait",
        "-o",
        &resumed_ir.to_string_lossy(),
    ]);
    assert!(out.status.success(), "{}", stderr_of(&out));
    assert_eq!(
        std::fs::read_to_string(&resumed_ir).unwrap(),
        reference,
        "a SIGKILLed campaign must heal to the undisturbed bytes"
    );

    // Both elections (original and successor) are on the journal record.
    let raw = std::fs::read_to_string(&journal).unwrap();
    assert!(
        raw.matches("Epoch").count() >= 2,
        "both elections journaled"
    );
    shutdown_daemon(&socket, daemon);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn injected_worker_fault_fails_one_campaign_and_spares_the_rest() {
    let dir = scratch("fault");
    let apps: Vec<String> = (0..3).map(|i| write_app(&dir, i)).collect();
    let socket = dir.join("hippod.sock");
    let journal = dir.join("jobs.journal");
    let daemon = spawn_daemon(&socket, &journal, &["--fault-worker", "0"]);

    let mut results = vec![];
    for app in &apps {
        let out = hippoctl(&[
            "submit",
            "--socket",
            &socket.to_string_lossy(),
            app,
            "--kind",
            "fix",
            "--wait",
        ]);
        results.push((out.status.success(), stderr_of(&out)));
    }
    let failures: Vec<_> = results.iter().filter(|(ok, _)| !ok).collect();
    assert_eq!(
        failures.len(),
        1,
        "exactly the injected job fails: {results:?}"
    );
    assert!(
        failures[0].1.contains("injected"),
        "the failure must be attributed to the injection: {}",
        failures[0].1
    );

    // The daemon survived and still answers.
    let health = hippoctl(&["health", "--socket", &socket.to_string_lossy()]);
    assert!(health.status.success(), "{}", stderr_of(&health));
    shutdown_daemon(&socket, daemon);
    std::fs::remove_dir_all(&dir).ok();
}
