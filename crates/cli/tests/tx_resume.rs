//! Kill-and-resume integration tests for `hippoctl fix --journal --resume`:
//! a repair killed mid-run (deterministically via `--crash-after-commit`,
//! and with a real SIGKILL) resumes from its write-ahead journal and
//! converges to the byte-identical module an uninterrupted run produces.
//! Corrupted or foreign journals are refused with a clear diagnostic.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// A program with bugs at two checkpoints, so the journal records real work.
const BUGGY_SRC: &str = r#"
fn main() {
    var p: ptr = pmem_map(0, 4096);
    store8(p, 0, 1);
    crashpoint();
    store8(p, 8, 2);
}
"#;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hippoctl_tx_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_src(dir: &Path, src: &str) -> String {
    let path = dir.join("buggy.pmc");
    std::fs::write(&path, src).unwrap();
    path.to_string_lossy().to_string()
}

fn hippoctl(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_hippoctl"))
        .args(args)
        .output()
        .unwrap()
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// An uninterrupted journaled run, the reference for byte-identity checks.
fn reference_fix(dir: &Path, src: &str) -> String {
    let out_ir = dir.join("ref.ir");
    let journal = dir.join("ref.journal");
    let out = hippoctl(&[
        "fix",
        src,
        "--journal",
        &journal.to_string_lossy(),
        "-o",
        &out_ir.to_string_lossy(),
    ]);
    assert!(out.status.success(), "{}", stderr_of(&out));
    std::fs::read_to_string(&out_ir).unwrap()
}

#[test]
fn crash_after_commit_then_resume_is_byte_identical() {
    let dir = scratch("crash_resume");
    let src = write_src(&dir, BUGGY_SRC);
    let reference = reference_fix(&dir, &src);

    // Crash run: the process aborts right after the first committed round,
    // before any output is written.
    let journal = dir.join("kr.journal").to_string_lossy().to_string();
    let crashed_out = dir.join("never.ir");
    let crashed = hippoctl(&[
        "fix",
        &src,
        "--journal",
        &journal,
        "--crash-after-commit",
        "1",
        "-o",
        &crashed_out.to_string_lossy(),
    ]);
    assert!(!crashed.status.success(), "the crash run must die");
    assert!(!crashed_out.exists(), "a killed run must not emit output");

    // Resume: committed rounds replay from the journal, the run finishes,
    // and the module is byte-identical to the uninterrupted run's.
    let out_ir = dir.join("resumed.ir");
    let metrics = dir.join("m.json");
    let resumed = hippoctl(&[
        "fix",
        &src,
        "--journal",
        &journal,
        "--resume",
        "-o",
        &out_ir.to_string_lossy(),
        "--metrics",
        &metrics.to_string_lossy(),
    ]);
    let err = stderr_of(&resumed);
    assert!(resumed.status.success(), "{err}");
    assert!(err.contains("resumed from journal"), "{err}");
    assert!(err.contains("replayed from journal"), "{err}");
    assert_eq!(std::fs::read_to_string(&out_ir).unwrap(), reference);
    // The replay is visible in the metrics snapshot too.
    let snap = pmobs::Snapshot::from_json(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
    assert!(
        snap.counters
            .get("journal.replayed_rounds")
            .copied()
            .unwrap_or(0)
            >= 1,
        "{:?}",
        snap.counters
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sigkill_mid_run_then_resume_converges() {
    let dir = scratch("sigkill");
    let src = write_src(&dir, BUGGY_SRC);
    let reference = reference_fix(&dir, &src);

    let journal = dir.join("kill.journal").to_string_lossy().to_string();
    let dead_out = dir.join("dead.ir");
    let mut child = Command::new(env!("CARGO_BIN_EXE_hippoctl"))
        .args([
            "fix",
            &src,
            "--journal",
            &journal,
            "-o",
            &dead_out.to_string_lossy(),
        ])
        .spawn()
        .unwrap();
    // The kill races the repair on purpose: landing before the header, after
    // a commit, or after the run finished are all states resume must absorb.
    std::thread::sleep(std::time::Duration::from_millis(5));
    child.kill().ok();
    child.wait().unwrap();

    let out_ir = dir.join("resumed.ir");
    let resumed = hippoctl(&[
        "fix",
        &src,
        "--journal",
        &journal,
        "--resume",
        "-o",
        &out_ir.to_string_lossy(),
    ]);
    assert!(resumed.status.success(), "{}", stderr_of(&resumed));
    assert_eq!(std::fs::read_to_string(&out_ir).unwrap(), reference);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn step_quota_exhaustion_reports_partial_outcome() {
    let dir = scratch("quota");
    let src = write_src(&dir, BUGGY_SRC);
    // Quota 1: the initial detection spends it, the re-verification trips
    // it, and (with the static source, which honors the budget) the run
    // stops with a partial-but-committed outcome instead of hanging.
    let out = hippoctl(&[
        "fix",
        &src,
        "--bug-source",
        "static",
        "--step-quota",
        "1",
        "-o",
        &dir.join("part.ir").to_string_lossy(),
    ]);
    let err = stderr_of(&out);
    assert!(!out.status.success());
    assert!(err.contains("budget exhausted"), "{err}");
    assert!(err.contains("NOT clean"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_journal_is_refused() {
    let dir = scratch("corrupt");
    let src = write_src(&dir, BUGGY_SRC);
    let journal = dir.join("c.journal");
    let first = hippoctl(&[
        "fix",
        &src,
        "--journal",
        &journal.to_string_lossy(),
        "-o",
        &dir.join("first.ir").to_string_lossy(),
    ]);
    assert!(first.status.success(), "{}", stderr_of(&first));

    // Flip a byte in the header line. Because committed rounds follow it,
    // this is interior corruption — not a tolerable torn tail.
    let mut bytes = std::fs::read(&journal).unwrap();
    assert!(
        bytes.iter().filter(|&&b| b == b'\n').count() >= 2,
        "journal has no rounds"
    );
    bytes[10] ^= 0x01;
    std::fs::write(&journal, &bytes).unwrap();

    let resumed = hippoctl(&[
        "fix",
        &src,
        "--journal",
        &journal.to_string_lossy(),
        "--resume",
    ]);
    let err = stderr_of(&resumed);
    assert!(!resumed.status.success());
    assert!(err.contains("refusing to resume"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn foreign_module_refuses_resume_with_digest_diagnostic() {
    let dir = scratch("foreign");
    let src = write_src(&dir, BUGGY_SRC);
    let journal = dir.join("f.journal");
    let first = hippoctl(&[
        "fix",
        &src,
        "--journal",
        &journal.to_string_lossy(),
        "-o",
        &dir.join("first.ir").to_string_lossy(),
    ]);
    assert!(first.status.success(), "{}", stderr_of(&first));

    let other = dir.join("other.pmc");
    std::fs::write(
        &other,
        "fn main() { var p: ptr = pmem_map(0, 4096); store8(p, 64, 3); }\n",
    )
    .unwrap();
    let resumed = hippoctl(&[
        "fix",
        &other.to_string_lossy(),
        "--journal",
        &journal.to_string_lossy(),
        "--resume",
    ]);
    let err = stderr_of(&resumed);
    assert!(!resumed.status.success());
    assert!(err.contains("refusing to resume"), "{err}");
    assert!(err.contains("module digest"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn show_quarantine_is_accepted_on_a_healthy_run() {
    let dir = scratch("showq");
    let src = write_src(&dir, BUGGY_SRC);
    let out = hippoctl(&[
        "fix",
        &src,
        "--show-quarantine",
        "-o",
        &dir.join("out.ir").to_string_lossy(),
    ]);
    let err = stderr_of(&out);
    assert!(out.status.success(), "{err}");
    assert!(err.contains("0 quarantined"), "{err}");
    assert!(err.contains("report clean"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}
