//! `system-tests` — hosts the repository-level integration tests
//! (`/tests`) and runnable examples (`/examples`); see those directories.
//!
//! The crate itself only re-exports the workspace members so the test and
//! example binaries have a single dependency root.
