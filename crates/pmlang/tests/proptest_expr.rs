//! Property tests: randomly generated `pmlang` expressions compile and
//! evaluate to the same value as a Rust reference evaluator (differential
//! testing of the lexer, parser, lowering, and interpreter together).

use pmvm::{Vm, VmOptions};
use proptest::prelude::*;

/// A random integer-expression tree with its reference value.
#[derive(Debug, Clone)]
enum E {
    Lit(i32),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Div(Box<E>, Box<E>),
    Rem(Box<E>, Box<E>),
    And(Box<E>, Box<E>),
    Or(Box<E>, Box<E>),
    Xor(Box<E>, Box<E>),
    Shl(Box<E>, u8),
    Shr(Box<E>, u8),
    Lt(Box<E>, Box<E>),
    Eq(Box<E>, Box<E>),
    Not(Box<E>),
    Neg(Box<E>),
    LogAnd(Box<E>, Box<E>),
    LogOr(Box<E>, Box<E>),
}

fn expr_strategy() -> impl Strategy<Value = E> {
    let leaf = (-1000i32..1000).prop_map(E::Lit);
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Div(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Rem(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::And(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Or(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Xor(a.into(), b.into())),
            (inner.clone(), 0u8..8).prop_map(|(a, s)| E::Shl(a.into(), s)),
            (inner.clone(), 0u8..8).prop_map(|(a, s)| E::Shr(a.into(), s)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Lt(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Eq(a.into(), b.into())),
            inner.clone().prop_map(|a| E::Not(a.into())),
            inner.clone().prop_map(|a| E::Neg(a.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::LogAnd(a.into(), b.into())),
            (inner.clone(), inner).prop_map(|(a, b)| E::LogOr(a.into(), b.into())),
        ]
    })
}

/// Renders the tree as `pmlang` source (fully parenthesized).
fn render(e: &E) -> String {
    match e {
        E::Lit(v) => {
            if *v < 0 {
                format!("(0 - {})", -i64::from(*v))
            } else {
                v.to_string()
            }
        }
        E::Add(a, b) => format!("({} + {})", render(a), render(b)),
        E::Sub(a, b) => format!("({} - {})", render(a), render(b)),
        E::Mul(a, b) => format!("({} * {})", render(a), render(b)),
        E::Div(a, b) => format!("({} / (({} * {}) + 7919))", render(a), render(b), render(b)),
        E::Rem(a, b) => format!("({} % (({} * {}) + 7919))", render(a), render(b), render(b)),
        E::And(a, b) => format!("({} & {})", render(a), render(b)),
        E::Or(a, b) => format!("({} | {})", render(a), render(b)),
        E::Xor(a, b) => format!("({} ^ {})", render(a), render(b)),
        E::Shl(a, s) => format!("({} << {s})", render(a)),
        E::Shr(a, s) => format!("({} >> {s})", render(a)),
        E::Lt(a, b) => format!("({} < {})", render(a), render(b)),
        E::Eq(a, b) => format!("({} == {})", render(a), render(b)),
        E::Not(a) => format!("(!{})", render(a)),
        E::Neg(a) => format!("(-{})", render(a)),
        E::LogAnd(a, b) => format!("({} && {})", render(a), render(b)),
        E::LogOr(a, b) => format!("({} || {})", render(a), render(b)),
    }
}

/// Reference semantics (matching the language definition: wrapping 64-bit,
/// arithmetic shift right, non-short-circuit logicals).
fn eval(e: &E) -> i64 {
    match e {
        E::Lit(v) => i64::from(*v),
        E::Add(a, b) => eval(a).wrapping_add(eval(b)),
        E::Sub(a, b) => eval(a).wrapping_sub(eval(b)),
        E::Mul(a, b) => eval(a).wrapping_mul(eval(b)),
        E::Div(a, b) => {
            let d = eval(b).wrapping_mul(eval(b)).wrapping_add(7919);
            if d == 0 {
                0
            } else {
                eval(a).wrapping_div(d)
            }
        }
        E::Rem(a, b) => {
            let d = eval(b).wrapping_mul(eval(b)).wrapping_add(7919);
            if d == 0 {
                0
            } else {
                eval(a).wrapping_rem(d)
            }
        }
        E::And(a, b) => eval(a) & eval(b),
        E::Or(a, b) => eval(a) | eval(b),
        E::Xor(a, b) => eval(a) ^ eval(b),
        E::Shl(a, s) => eval(a).wrapping_shl(u32::from(*s)),
        E::Shr(a, s) => eval(a).wrapping_shr(u32::from(*s)),
        E::Lt(a, b) => i64::from(eval(a) < eval(b)),
        E::Eq(a, b) => i64::from(eval(a) == eval(b)),
        E::Not(a) => i64::from(eval(a) == 0),
        E::Neg(a) => 0i64.wrapping_sub(eval(a)),
        E::LogAnd(a, b) => i64::from(eval(a) != 0 && eval(b) != 0),
        E::LogOr(a, b) => i64::from(eval(a) != 0 || eval(b) != 0),
    }
}

// The denominator guard `b*b + 7919` can still be zero for adversarial
// 64-bit `b`; our literals are < 1000 in magnitude and depth <= 4, so the
// product stays far below overflow into zero. The reference handles the
// impossible case with 0 to keep eval total.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn expressions_match_reference(e in expr_strategy()) {
        let src = format!("fn main() {{ print({}); }}", render(&e));
        let m = pmlang::compile_one("e.pmc", &src)
            .unwrap_or_else(|err| panic!("{err}\n{src}"));
        let out = Vm::new(VmOptions::default())
            .run(&m, "main")
            .unwrap_or_else(|err| panic!("{err}\n{src}"))
            .output;
        prop_assert_eq!(out, vec![eval(&e)], "source: {}", src);
    }

    /// Variables round-trip through stores/loads: assigning the expression
    /// to a variable and reading it back is identity.
    #[test]
    fn variables_preserve_values(e in expr_strategy()) {
        let src = format!(
            "fn main() {{ var x: int = {}; var y: int = x; print(y); }}",
            render(&e)
        );
        let m = pmlang::compile_one("v.pmc", &src).unwrap();
        let out = Vm::new(VmOptions::default()).run(&m, "main").unwrap().output;
        prop_assert_eq!(out, vec![eval(&e)]);
    }

    /// Function-call round trip: passing through an identity function and
    /// returning preserves the value.
    #[test]
    fn call_roundtrip_preserves_values(e in expr_strategy()) {
        let src = format!(
            "fn id(x: int) -> int {{ return x; }}\nfn main() {{ print(id({})); }}",
            render(&e)
        );
        let m = pmlang::compile_one("c.pmc", &src).unwrap();
        let out = Vm::new(VmOptions::default()).run(&m, "main").unwrap().output;
        prop_assert_eq!(out, vec![eval(&e)]);
    }
}
