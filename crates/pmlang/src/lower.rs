//! Lowering from AST to `pmir`, with type checking.
//!
//! Mirrors `clang -O0` structure (the paper collects traces with
//! optimizations disabled, §5.1): every named variable becomes an `alloca`
//! slot hoisted to the function entry, and every statement carries a
//! line-accurate debug location.

use crate::ast::{self, Block, Expr, ExprKind, FnDecl, LTy, Stmt, StmtKind};
use crate::error::LangError;
use pmir::{
    BinOp as IrBin, CmpPred, FenceKind, FlushKind, FunctionBuilder, Module, Operand, SrcLoc, Type,
    ValueId,
};
use std::collections::HashMap;

/// A function signature visible to callers.
#[derive(Debug, Clone)]
pub struct Signature {
    /// Parameter types.
    pub params: Vec<LTy>,
    /// Return type.
    pub ret: LTy,
}

/// Builds the signature table for a set of declarations.
///
/// # Errors
///
/// Rejects duplicate definitions and names that collide with intrinsics.
pub fn signatures(file: &str, fns: &[FnDecl]) -> Result<HashMap<String, Signature>, LangError> {
    const RESERVED: &[&str] = &[
        "store1",
        "store2",
        "store4",
        "store8",
        "storep",
        "load1",
        "load2",
        "load4",
        "load8",
        "loadp",
        "memcpy",
        "memset",
        "clwb",
        "clflushopt",
        "clflush",
        "sfence",
        "mfence",
        "free",
        "print",
        "crashpoint",
        "abort",
        "alloc",
        "pmem_map",
        "bytes",
        "null",
        "var",
        "if",
        "else",
        "while",
        "return",
        "fn",
        "int",
        "ptr",
        "void",
    ];
    let mut sigs = HashMap::new();
    for f in fns {
        if RESERVED.contains(&f.name.as_str()) {
            return Err(LangError::new(
                file,
                f.line,
                format!("`{}` is a reserved name", f.name),
            ));
        }
        if sigs
            .insert(
                f.name.clone(),
                Signature {
                    params: f.params.iter().map(|p| p.ty).collect(),
                    ret: f.ret,
                },
            )
            .is_some()
        {
            return Err(LangError::new(
                file,
                f.line,
                format!("function `{}` defined twice", f.name),
            ));
        }
    }
    Ok(sigs)
}

fn to_ir_ty(ty: LTy) -> Type {
    match ty {
        LTy::Int => Type::int(8),
        LTy::Ptr => Type::Ptr,
        LTy::Void => Type::Void,
    }
}

/// Lowers one function body into an already-declared `pmir` function.
///
/// `sigs` must contain every callee (across all linked sources).
///
/// # Errors
///
/// Returns the first type or name-resolution error.
pub fn lower_fn(
    module: &mut Module,
    file: &str,
    sigs: &HashMap<String, Signature>,
    decl: &FnDecl,
) -> Result<(), LangError> {
    let file_id = module.intern_file(file);
    let func_id = module
        .function_by_name(&decl.name)
        .expect("function declared before lowering");
    let mut lw = Lowerer {
        b: FunctionBuilder::new(module, func_id),
        file: file.to_string(),
        file_id,
        sigs,
        ret: decl.ret,
        scopes: vec![HashMap::new()],
        slots: vec![],
        slot_cursor: 0,
        str_globals: HashMap::new(),
    };
    lw.lower_body(decl)
}

#[derive(Debug, Clone, Copy)]
struct VarSlot {
    ptr: ValueId,
    ty: LTy,
}

struct Lowerer<'m, 's> {
    b: FunctionBuilder<'m>,
    file: String,
    file_id: pmir::FileId,
    sigs: &'s HashMap<String, Signature>,
    ret: LTy,
    scopes: Vec<HashMap<String, VarSlot>>,
    /// Hoisted alloca slots, one per `var` declaration in AST order.
    slots: Vec<ValueId>,
    slot_cursor: usize,
    str_globals: HashMap<String, pmir::GlobalId>,
}

fn count_decls(block: &Block) -> usize {
    let mut n = 0;
    for s in &block.stmts {
        match &s.kind {
            StmtKind::VarDecl { .. } => n += 1,
            StmtKind::If {
                then_blk, else_blk, ..
            } => {
                n += count_decls(then_blk);
                if let Some(e) = else_blk {
                    n += count_decls(e);
                }
            }
            StmtKind::While { body, .. } => n += count_decls(body),
            _ => {}
        }
    }
    n
}

impl Lowerer<'_, '_> {
    fn err<T>(&self, line: u32, msg: impl Into<String>) -> Result<T, LangError> {
        Err(LangError::new(&self.file, line, msg))
    }

    fn loc(&mut self, line: u32) {
        self.b.set_loc(SrcLoc::line(self.file_id, line));
    }

    fn lower_body(&mut self, decl: &FnDecl) -> Result<(), LangError> {
        let entry = self.b.entry_block();
        self.b.switch_to(entry);
        self.loc(decl.line);
        // Hoist one alloca per declaration site.
        for _ in 0..count_decls(&decl.body) {
            let slot = self.b.alloca(8);
            self.slots.push(slot);
        }
        // Bind parameters (by value, like C).
        for (i, p) in decl.params.iter().enumerate() {
            let slot = self.b.alloca(8);
            let arg = self.b.arg(i);
            self.b.store(to_ir_ty(p.ty), slot, arg);
            self.scopes.last_mut().expect("scope").insert(
                p.name.clone(),
                VarSlot {
                    ptr: slot,
                    ty: p.ty,
                },
            );
        }
        self.lower_block(&decl.body)?;
        // Fall-through handling.
        if self.b.current_block().is_some() {
            match self.ret {
                LTy::Void => self.b.ret(None),
                // Falling off the end of a non-void function is a runtime
                // error, matching C's UB with a deterministic trap.
                _ => self.b.abort(100),
            }
        }
        let func_id = self.b.func_id();
        assert!(
            self.b.module().function(func_id).blocks_well_formed(),
            "lowering produced well-formed blocks"
        );
        Ok(())
    }

    fn lower_block(&mut self, block: &Block) -> Result<(), LangError> {
        self.scopes.push(HashMap::new());
        let mut dead = false;
        for s in &block.stmts {
            if dead || self.b.current_block().is_none() {
                // Unreachable code: skip it, but keep the slot cursor in sync.
                self.slot_cursor += count_decls(&Block {
                    stmts: vec![s.clone()],
                });
                continue;
            }
            self.lower_stmt(s)?;
            if self.b.current_block().is_none() {
                dead = true;
            }
        }
        self.scopes.pop();
        Ok(())
    }

    fn lookup(&self, name: &str) -> Option<VarSlot> {
        self.scopes.iter().rev().find_map(|s| s.get(name)).copied()
    }

    fn lower_stmt(&mut self, s: &Stmt) -> Result<(), LangError> {
        self.loc(s.line);
        match &s.kind {
            StmtKind::VarDecl { name, ty, init } => {
                let slot = self.slots[self.slot_cursor];
                self.slot_cursor += 1;
                let (v, vt) = self.lower_expr(init)?;
                if vt != *ty {
                    return self.err(
                        s.line,
                        format!("type mismatch: `{name}` is {ty} but initializer is {vt}"),
                    );
                }
                self.loc(s.line);
                self.b.store(to_ir_ty(*ty), slot, v);
                self.scopes
                    .last_mut()
                    .expect("scope")
                    .insert(name.clone(), VarSlot { ptr: slot, ty: *ty });
                Ok(())
            }
            StmtKind::Assign { name, value } => {
                let Some(slot) = self.lookup(name) else {
                    return self.err(s.line, format!("assignment to undefined variable `{name}`"));
                };
                let (v, vt) = self.lower_expr(value)?;
                if vt != slot.ty {
                    return self.err(
                        s.line,
                        format!("type mismatch: `{name}` is {} but value is {vt}", slot.ty),
                    );
                }
                self.loc(s.line);
                self.b.store(to_ir_ty(slot.ty), slot.ptr, v);
                Ok(())
            }
            StmtKind::StoreInt {
                width,
                base,
                off,
                value,
            } => {
                let addr = self.lower_addr(base, off, s.line)?;
                let (v, vt) = self.lower_expr(value)?;
                if vt != LTy::Int {
                    return self.err(s.line, format!("stored value must be int, got {vt}"));
                }
                self.loc(s.line);
                self.b.store(Type::int(*width), addr, v);
                Ok(())
            }
            StmtKind::StorePtr { base, off, value } => {
                let addr = self.lower_addr(base, off, s.line)?;
                let (v, vt) = self.lower_expr(value)?;
                if vt != LTy::Ptr {
                    return self.err(s.line, format!("storep value must be ptr, got {vt}"));
                }
                self.loc(s.line);
                self.b.store(Type::Ptr, addr, v);
                Ok(())
            }
            StmtKind::Memcpy { dst, src, len } => {
                let (d, dt) = self.lower_expr(dst)?;
                let (sr, st) = self.lower_expr(src)?;
                let (l, lt) = self.lower_expr(len)?;
                if dt != LTy::Ptr || st != LTy::Ptr || lt != LTy::Int {
                    return self.err(s.line, "memcpy expects (ptr, ptr, int)");
                }
                self.loc(s.line);
                self.b.memcpy(d, sr, l);
                Ok(())
            }
            StmtKind::Memset { dst, val, len } => {
                let (d, dt) = self.lower_expr(dst)?;
                let (v, vt) = self.lower_expr(val)?;
                let (l, lt) = self.lower_expr(len)?;
                if dt != LTy::Ptr || vt != LTy::Int || lt != LTy::Int {
                    return self.err(s.line, "memset expects (ptr, int, int)");
                }
                self.loc(s.line);
                self.b.memset(d, v, l);
                Ok(())
            }
            StmtKind::Flush { kind, addr } => {
                let (a, at) = self.lower_expr(addr)?;
                if at != LTy::Ptr {
                    return self.err(s.line, format!("flush target must be a pointer, got {at}"));
                }
                let kind = match kind {
                    ast::FlushKind::Clwb => FlushKind::Clwb,
                    ast::FlushKind::ClflushOpt => FlushKind::ClflushOpt,
                    ast::FlushKind::Clflush => FlushKind::Clflush,
                };
                self.loc(s.line);
                self.b.flush(kind, a);
                Ok(())
            }
            StmtKind::Fence { kind } => {
                let kind = match kind {
                    ast::FenceKind::Sfence => FenceKind::Sfence,
                    ast::FenceKind::Mfence => FenceKind::Mfence,
                };
                self.b.fence(kind);
                Ok(())
            }
            StmtKind::Free { ptr } => {
                let (p, pt) = self.lower_expr(ptr)?;
                if pt != LTy::Ptr {
                    return self.err(s.line, format!("free expects a pointer, got {pt}"));
                }
                self.loc(s.line);
                self.b.heap_free(p);
                Ok(())
            }
            StmtKind::Print { value } => {
                let (v, _) = self.lower_expr(value)?;
                self.loc(s.line);
                self.b.print(v);
                Ok(())
            }
            StmtKind::CrashPoint => {
                self.b.crash_point();
                Ok(())
            }
            StmtKind::Abort { code } => {
                self.b.abort(*code);
                Ok(())
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let (c, _) = self.lower_cond(cond)?;
                let then_bb = self.b.new_block("then");
                let else_bb = else_blk.as_ref().map(|_| self.b.new_block("else"));
                let join = self.b.new_block("join");
                self.loc(s.line);
                self.b.cond_br(c, then_bb, else_bb.unwrap_or(join));
                self.b.switch_to(then_bb);
                self.lower_block(then_blk)?;
                let mut reaches_join = false;
                if self.b.current_block().is_some() {
                    self.b.br(join);
                    reaches_join = true;
                }
                if let (Some(else_bb), Some(else_blk)) = (else_bb, else_blk) {
                    self.b.switch_to(else_bb);
                    self.lower_block(else_blk)?;
                    if self.b.current_block().is_some() {
                        self.b.br(join);
                        reaches_join = true;
                    }
                } else {
                    reaches_join = true;
                }
                self.b.switch_to(join);
                if !reaches_join {
                    // Unreachable join; terminate it so the IR stays
                    // well-formed, then deselect.
                    self.b.abort(101);
                }
                Ok(())
            }
            StmtKind::While { cond, body } => {
                let header = self.b.new_block("while.header");
                let body_bb = self.b.new_block("while.body");
                let exit = self.b.new_block("while.exit");
                self.loc(s.line);
                self.b.br(header);
                self.b.switch_to(header);
                let (c, _) = self.lower_cond(cond)?;
                self.loc(s.line);
                self.b.cond_br(c, body_bb, exit);
                self.b.switch_to(body_bb);
                self.lower_block(body)?;
                if self.b.current_block().is_some() {
                    self.b.br(header);
                }
                self.b.switch_to(exit);
                Ok(())
            }
            StmtKind::Return { value } => {
                match (value, self.ret) {
                    (None, LTy::Void) => self.b.ret(None),
                    (None, _) => return self.err(s.line, "missing return value"),
                    (Some(_), LTy::Void) => {
                        return self.err(s.line, "void function cannot return a value")
                    }
                    (Some(e), want) => {
                        let (v, vt) = self.lower_expr(e)?;
                        if vt != want {
                            return self.err(
                                s.line,
                                format!("return type mismatch: expected {want}, got {vt}"),
                            );
                        }
                        self.loc(s.line);
                        self.b.ret(Some(v));
                    }
                }
                Ok(())
            }
            StmtKind::ExprStmt { expr } => {
                self.lower_expr(expr)?;
                Ok(())
            }
        }
    }

    /// Lowers `base + off` into an address operand, checking types.
    fn lower_addr(&mut self, base: &Expr, off: &Expr, line: u32) -> Result<Operand, LangError> {
        let (b, bt) = self.lower_expr(base)?;
        if bt != LTy::Ptr {
            return self.err(line, format!("base must be a pointer, got {bt}"));
        }
        let (o, ot) = self.lower_expr(off)?;
        if ot != LTy::Int {
            return self.err(line, format!("offset must be an int, got {ot}"));
        }
        // Fold the common `+ 0` so single-store lines stay compact.
        if o == Operand::Const(0) {
            return Ok(b);
        }
        self.loc(line);
        Ok(Operand::Value(self.b.gep(b, o)))
    }

    /// Lowers a condition, normalizing pointers to `!= null`.
    fn lower_cond(&mut self, e: &Expr) -> Result<(Operand, LTy), LangError> {
        let (v, t) = self.lower_expr(e)?;
        match t {
            LTy::Int => Ok((v, LTy::Int)),
            LTy::Ptr => {
                self.loc(e.line);
                let c = self.b.cmp(CmpPred::Ne, v, Operand::Null);
                Ok((Operand::Value(c), LTy::Int))
            }
            LTy::Void => self.err(e.line, "condition has no value"),
        }
    }

    fn lower_expr(&mut self, e: &Expr) -> Result<(Operand, LTy), LangError> {
        match &e.kind {
            ExprKind::Int(v) => Ok((Operand::Const(*v), LTy::Int)),
            ExprKind::Null => Ok((Operand::Null, LTy::Ptr)),
            ExprKind::Var(name) => {
                let Some(slot) = self.lookup(name) else {
                    return self.err(e.line, format!("undefined variable `{name}`"));
                };
                self.loc(e.line);
                let v = self.b.load(to_ir_ty(slot.ty), slot.ptr);
                Ok((Operand::Value(v), slot.ty))
            }
            ExprKind::Unary { op, expr } => {
                let (v, t) = self.lower_expr(expr)?;
                self.loc(e.line);
                match op {
                    ast::UnOp::Neg => {
                        if t != LTy::Int {
                            return self.err(e.line, format!("cannot negate a {t}"));
                        }
                        let r = self.b.bin(IrBin::Sub, 0i64, v);
                        Ok((Operand::Value(r), LTy::Int))
                    }
                    ast::UnOp::Not => {
                        let zero = if t == LTy::Ptr {
                            Operand::Null
                        } else {
                            Operand::Const(0)
                        };
                        let r = self.b.cmp(CmpPred::Eq, v, zero);
                        Ok((Operand::Value(r), LTy::Int))
                    }
                }
            }
            ExprKind::Binary { op, lhs, rhs } => self.lower_binary(e.line, *op, lhs, rhs),
            ExprKind::Call { name, args } => {
                let Some(sig) = self.sigs.get(name).cloned() else {
                    return self.err(e.line, format!("call to undefined function `{name}`"));
                };
                if sig.params.len() != args.len() {
                    return self.err(
                        e.line,
                        format!(
                            "`{name}` expects {} argument(s), got {}",
                            sig.params.len(),
                            args.len()
                        ),
                    );
                }
                let mut ops = vec![];
                for (i, (a, want)) in args.iter().zip(&sig.params).enumerate() {
                    let (v, t) = self.lower_expr(a)?;
                    if t != *want {
                        return self.err(
                            a.line,
                            format!("argument {i} of `{name}` expects {want}, got {t}"),
                        );
                    }
                    ops.push(v);
                }
                self.loc(e.line);
                let r = self.b.call_named(name, ops);
                match sig.ret {
                    LTy::Void => Ok((Operand::Const(0), LTy::Void)),
                    ty => Ok((Operand::Value(r.expect("non-void call")), ty)),
                }
            }
            ExprKind::LoadInt { width, base, off } => {
                let addr = self.lower_addr(base, off, e.line)?;
                self.loc(e.line);
                let v = self.b.load(Type::int(*width), addr);
                Ok((Operand::Value(v), LTy::Int))
            }
            ExprKind::LoadPtr { base, off } => {
                let addr = self.lower_addr(base, off, e.line)?;
                self.loc(e.line);
                let v = self.b.load(Type::Ptr, addr);
                Ok((Operand::Value(v), LTy::Ptr))
            }
            ExprKind::Alloc { size } => {
                let (v, t) = self.lower_expr(size)?;
                if t != LTy::Int {
                    return self.err(e.line, format!("alloc size must be int, got {t}"));
                }
                self.loc(e.line);
                let r = self.b.heap_alloc(v);
                Ok((Operand::Value(r), LTy::Ptr))
            }
            ExprKind::PmemMap { pool, size } => {
                let (v, t) = self.lower_expr(size)?;
                if t != LTy::Int {
                    return self.err(e.line, format!("pmem_map size must be int, got {t}"));
                }
                self.loc(e.line);
                let r = self.b.pmem_map(v, *pool);
                Ok((Operand::Value(r), LTy::Ptr))
            }
            ExprKind::Bytes { data } => {
                let gid = match self.str_globals.get(data) {
                    Some(&g) => g,
                    None => {
                        let n = self.b.module().global_count();
                        let g = self.b.module().add_global(
                            format!("str.{n}"),
                            data.len().max(1) as u64,
                            data.as_bytes().to_vec(),
                        );
                        self.str_globals.insert(data.clone(), g);
                        g
                    }
                };
                self.loc(e.line);
                let r = self.b.global_addr(gid);
                Ok((Operand::Value(r), LTy::Ptr))
            }
        }
    }

    fn lower_binary(
        &mut self,
        line: u32,
        op: ast::BinOp,
        lhs: &Expr,
        rhs: &Expr,
    ) -> Result<(Operand, LTy), LangError> {
        use ast::BinOp as B;
        let (a, at) = self.lower_expr(lhs)?;
        let (b, bt) = self.lower_expr(rhs)?;
        self.loc(line);

        // Comparisons work on both ints and pointers (same-typed).
        if let Some(pred) = match op {
            B::Lt => Some(CmpPred::SLt),
            B::Le => Some(CmpPred::SLe),
            B::Gt => Some(CmpPred::SGt),
            B::Ge => Some(CmpPred::SGe),
            B::Eq => Some(CmpPred::Eq),
            B::Ne => Some(CmpPred::Ne),
            _ => None,
        } {
            if at != bt {
                return self.err(line, format!("cannot compare {at} with {bt}"));
            }
            let r = self.b.cmp(pred, a, b);
            return Ok((Operand::Value(r), LTy::Int));
        }

        // Pointer arithmetic.
        if matches!(op, B::Add) && at == LTy::Ptr && bt == LTy::Int {
            let r = self.b.gep(a, b);
            return Ok((Operand::Value(r), LTy::Ptr));
        }
        if matches!(op, B::Add) && at == LTy::Int && bt == LTy::Ptr {
            let r = self.b.gep(b, a);
            return Ok((Operand::Value(r), LTy::Ptr));
        }
        if matches!(op, B::Sub) && at == LTy::Ptr && bt == LTy::Int {
            let neg = self.b.bin(IrBin::Sub, 0i64, b);
            let r = self.b.gep(a, neg);
            return Ok((Operand::Value(r), LTy::Ptr));
        }

        // Logical operators normalize to 0/1 first (non-short-circuiting).
        if matches!(op, B::LogAnd | B::LogOr) {
            let na = self.normalize_bool(a, at);
            let nb = self.normalize_bool(b, bt);
            let ir = if matches!(op, B::LogAnd) {
                IrBin::And
            } else {
                IrBin::Or
            };
            let r = self.b.bin(ir, na, nb);
            return Ok((Operand::Value(r), LTy::Int));
        }

        // Everything else is integer arithmetic.
        if at != LTy::Int || bt != LTy::Int {
            return self.err(
                line,
                format!("type error: cannot apply {op:?} to {at} and {bt}"),
            );
        }
        let ir = match op {
            B::Add => IrBin::Add,
            B::Sub => IrBin::Sub,
            B::Mul => IrBin::Mul,
            B::Div => IrBin::SDiv,
            B::Rem => IrBin::SRem,
            B::And => IrBin::And,
            B::Or => IrBin::Or,
            B::Xor => IrBin::Xor,
            B::Shl => IrBin::Shl,
            B::Shr => IrBin::AShr,
            _ => unreachable!("handled above"),
        };
        let r = self.b.bin(ir, a, b);
        Ok((Operand::Value(r), LTy::Int))
    }

    fn normalize_bool(&mut self, v: Operand, t: LTy) -> Operand {
        let zero = if t == LTy::Ptr {
            Operand::Null
        } else {
            Operand::Const(0)
        };
        Operand::Value(self.b.cmp(CmpPred::Ne, v, zero))
    }
}
