//! The compiler driver: multi-source "linking", attribute filtering, and the
//! public entry points.

use crate::ast::{Block, FnDecl, Stmt, StmtKind};
use crate::error::LangError;
use crate::lexer::tokenize;
use crate::lower::{lower_fn, signatures, Signature};
use crate::parser::parse;
use pmir::Module;
use std::collections::{HashMap, HashSet};

/// Compiles several sources into one [`Module`], with bug-corpus attribute
/// handling.
///
/// * [`Compiler::elide_tag`] drops every statement carrying the matching
///   `#[tag("…")]` — used to *remove* a flush or fence and seed a durability
///   bug.
/// * [`Compiler::feature`] enables statements gated with `#[when("…")]` —
///   used to express developer-fix variants.
#[derive(Debug, Clone, Default)]
pub struct Compiler {
    sources: Vec<(String, String)>,
    elide: HashSet<String>,
    features: HashSet<String>,
}

impl Compiler {
    /// A compiler with no sources.
    pub fn new() -> Self {
        Compiler::default()
    }

    /// Adds a source file (builder-style).
    pub fn source(mut self, name: impl Into<String>, text: impl Into<String>) -> Self {
        self.sources.push((name.into(), text.into()));
        self
    }

    /// Drops statements tagged `#[tag(name)]`.
    pub fn elide_tag(mut self, name: impl Into<String>) -> Self {
        self.elide.insert(name.into());
        self
    }

    /// Drops every statement tagged with any of `names`.
    pub fn elide_tags<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.elide.extend(names.into_iter().map(Into::into));
        self
    }

    /// Enables statements gated `#[when(name)]`.
    pub fn feature(mut self, name: impl Into<String>) -> Self {
        self.features.insert(name.into());
        self
    }

    /// Compiles and links all sources.
    ///
    /// # Errors
    ///
    /// Returns the first lexing/parsing/semantic error.
    pub fn compile(&self) -> Result<Module, LangError> {
        let mut module = Module::new();
        let mut per_file: Vec<(String, Vec<FnDecl>)> = vec![];
        for (name, text) in &self.sources {
            let toks = tokenize(name, text)?;
            let mut fns = parse(name, toks)?;
            for f in &mut fns {
                filter_block(&mut f.body, &self.elide, &self.features);
            }
            per_file.push((name.clone(), fns));
        }

        // Build the cross-file signature table, rejecting duplicates.
        let mut sigs: HashMap<String, Signature> = HashMap::new();
        for (file, fns) in &per_file {
            let file_sigs = signatures(file, fns)?;
            for (name, sig) in file_sigs {
                if sigs.insert(name.clone(), sig).is_some() {
                    let line = fns
                        .iter()
                        .find(|f| f.name == name)
                        .map(|f| f.line)
                        .unwrap_or(1);
                    return Err(LangError::new(
                        file,
                        line,
                        format!("function `{name}` defined in more than one source"),
                    ));
                }
            }
        }

        // Declare everything, then lower bodies (forward calls resolve).
        for (_, fns) in &per_file {
            for f in fns {
                module.declare_function(
                    &f.name,
                    f.params.iter().map(|p| crate::lower_ty(p.ty)).collect(),
                    crate::lower_ty(f.ret),
                );
            }
        }
        for (file, fns) in &per_file {
            for f in fns {
                lower_fn(&mut module, file, &sigs, f)?;
            }
        }
        pmir::verify::verify_module(&module).map_err(|e| {
            LangError::new(
                "<lowering>",
                0,
                format!("internal error: lowered module failed verification: {e}"),
            )
        })?;
        Ok(module)
    }
}

/// Compiles a single source with default options.
///
/// # Errors
///
/// Returns the first lexing/parsing/semantic error.
pub fn compile_one(name: &str, text: &str) -> Result<Module, LangError> {
    Compiler::new().source(name, text).compile()
}

fn filter_block(block: &mut Block, elide: &HashSet<String>, features: &HashSet<String>) {
    block.stmts.retain(|s| {
        if s.tags.iter().any(|t| elide.contains(t)) {
            return false;
        }
        match &s.when {
            Some(feature) => features.contains(feature),
            None => true,
        }
    });
    for s in &mut block.stmts {
        match &mut s.kind {
            StmtKind::If {
                then_blk, else_blk, ..
            } => {
                filter_block(then_blk, elide, features);
                if let Some(e) = else_blk {
                    filter_block(e, elide, features);
                }
            }
            StmtKind::While { body, .. } => filter_block(body, elide, features),
            _ => {}
        }
    }
}

/// Recursively collects tags declared anywhere in a source (useful for
/// corpus sanity checks: every bug id must exist in the source it claims to
/// mutate).
pub fn collect_tags(fns: &[FnDecl]) -> HashSet<String> {
    fn walk(b: &Block, out: &mut HashSet<String>) {
        for s in &b.stmts {
            out.extend(s.tags.iter().cloned());
            match &s.kind {
                StmtKind::If {
                    then_blk, else_blk, ..
                } => {
                    walk(then_blk, out);
                    if let Some(e) = else_blk {
                        walk(e, out);
                    }
                }
                StmtKind::While { body, .. } => walk(body, out),
                _ => {}
            }
        }
    }
    let mut out = HashSet::new();
    for f in fns {
        walk(&f.body, &mut out);
    }
    out
}

/// Parses a source and returns the set of `#[tag(…)]` names it declares.
///
/// # Errors
///
/// Returns lexing/parsing errors.
pub fn tags_in_source(name: &str, text: &str) -> Result<HashSet<String>, LangError> {
    let toks = tokenize(name, text)?;
    let fns = parse(name, toks)?;
    Ok(collect_tags(&fns))
}

/// Helper used by filtering-aware statements tests: whether a statement
/// survives the given elide/feature sets.
pub fn stmt_survives(s: &Stmt, elide: &HashSet<String>, features: &HashSet<String>) -> bool {
    !s.tags.iter().any(|t| elide.contains(t))
        && s.when
            .as_ref()
            .map(|w| features.contains(w))
            .unwrap_or(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_across_sources_rejected() {
        let err = Compiler::new()
            .source("a.pmc", "fn f() {}")
            .source("b.pmc", "fn f() {}")
            .compile()
            .unwrap_err();
        assert!(err.message.contains("more than one source"), "{err}");
    }

    #[test]
    fn reserved_names_rejected() {
        let err = compile_one("a.pmc", "fn memcpy() {}").unwrap_err();
        assert!(err.message.contains("reserved"), "{err}");
    }

    #[test]
    fn tags_collected() {
        let tags = tags_in_source(
            "a.pmc",
            "fn f() { #[tag(\"x\")] sfence(); if (1) { #[tag(\"y\")] sfence(); } }",
        )
        .unwrap();
        assert!(tags.contains("x") && tags.contains("y"));
    }

    #[test]
    fn nested_filtering() {
        let src = r#"
            fn main() {
                if (1) {
                    #[tag("inner")] print(1);
                    print(2);
                }
            }
        "#;
        let m = Compiler::new()
            .source("t.pmc", src)
            .elide_tag("inner")
            .compile()
            .unwrap();
        let out = pmvm::Vm::new(pmvm::VmOptions::default())
            .run(&m, "main")
            .unwrap()
            .output;
        assert_eq!(out, vec![2]);
    }
}
