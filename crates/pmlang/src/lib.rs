//! `pmlang` — a small C-like language that compiles to `pmir`.
//!
//! The Hippocrates evaluation targets (PMDK, Redis, memcached, P-CLHT) are C
//! programs; this crate is the stand-in front end that lets this
//! reproduction express the same *shapes* of code — PM stores reached
//! through multiple call frames, helper routines shared between volatile and
//! persistent callers, explicit `clwb`/`sfence` persistence — with
//! line-accurate debug info so the repair pipeline can map trace events back
//! to source.
//!
//! # Language sketch
//!
//! ```text
//! fn update(addr: ptr, idx: int, val: int) {
//!     store1(addr, idx, val);
//! }
//! fn main() {
//!     var pool: ptr = pmem_map(0, 4096);
//!     update(pool, 0, 7);
//!     #[tag("fix")] clwb(pool);
//!     #[tag("fix")] sfence();
//! }
//! ```
//!
//! Types are `int` (i64), `ptr`, and `void` returns. Memory access is
//! explicit and byte-addressed: `store8(p, off, v)` / `load8(p, off)` move
//! 8-byte integers, `storep`/`loadp` move pointers, `store1`/`load1` bytes,
//! and `memcpy`/`memset` move ranges. `alloc`/`free` manage the volatile
//! heap, `pmem_map(id, size)` maps a persistent pool.
//!
//! Statement attributes drive the bug corpus: `#[tag("name")]` marks a
//! statement that [`Compiler::elide_tag`] can drop (seeding a durability bug
//! by *removing* a flush or fence), and `#[when("feature")]` includes a
//! statement only when [`Compiler::feature`] enabled it (expressing
//! developer-fix variants in the same source).
//!
//! # Example
//!
//! ```
//! let src = r#"
//!     fn main() {
//!         var p: ptr = pmem_map(0, 4096);
//!         store8(p, 0, 41);
//!         clwb(p);
//!         sfence();
//!         print(load8(p, 0));
//!     }
//! "#;
//! let module = pmlang::compile_one("ex.pmc", src).unwrap();
//! let run = pmvm::Vm::new(pmvm::VmOptions::default()).run(&module, "main").unwrap();
//! assert_eq!(run.output, vec![41]);
//! ```

pub mod ast;
pub mod compile;
pub mod error;
pub mod lexer;
pub mod lower;
pub mod parser;

pub use compile::{compile_one, Compiler};
pub use error::LangError;

/// Maps a surface type to its IR type (shared by the driver and lowering).
pub fn lower_ty(ty: ast::LTy) -> pmir::Type {
    match ty {
        ast::LTy::Int => pmir::Type::int(8),
        ast::LTy::Ptr => pmir::Type::Ptr,
        ast::LTy::Void => pmir::Type::Void,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmvm::{Vm, VmOptions};

    fn run_src(src: &str) -> Vec<i64> {
        let m = compile_one("t.pmc", src).unwrap_or_else(|e| panic!("{e}"));
        pmir::verify::verify_module(&m).expect("lowered module verifies");
        Vm::new(VmOptions::default())
            .run(&m, "main")
            .unwrap_or_else(|e| panic!("{e}"))
            .output
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(run_src("fn main() { print(2 + 3 * 4); }"), vec![14]);
        assert_eq!(run_src("fn main() { print((2 + 3) * 4); }"), vec![20]);
        assert_eq!(run_src("fn main() { print(10 % 3 + 10 / 3); }"), vec![4]);
        assert_eq!(run_src("fn main() { print(1 << 4 | 1); }"), vec![17]);
        assert_eq!(run_src("fn main() { print(-5 + 2); }"), vec![-3]);
        assert_eq!(run_src("fn main() { print(!0); print(!7); }"), vec![1, 0]);
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(
            run_src("fn main() { print(3 < 4); print(4 < 3); }"),
            vec![1, 0]
        );
        assert_eq!(
            run_src("fn main() { print(1 && 2); print(1 && 0); print(0 || 3); }"),
            vec![1, 0, 1]
        );
        assert_eq!(
            run_src("fn main() { print(5 == 5); print(5 != 5); }"),
            vec![1, 0]
        );
    }

    #[test]
    fn control_flow() {
        let src = r#"
            fn main() {
                var i: int = 0;
                var sum: int = 0;
                while (i < 10) {
                    if (i % 2 == 0) { sum = sum + i; }
                    i = i + 1;
                }
                print(sum);
            }
        "#;
        assert_eq!(run_src(src), vec![20]);
    }

    #[test]
    fn if_else_chains() {
        let src = r#"
            fn classify(n: int) -> int {
                if (n < 0) { return 0 - 1; }
                else { if (n == 0) { return 0; } else { return 1; } }
            }
            fn main() {
                print(classify(0 - 5));
                print(classify(0));
                print(classify(9));
            }
        "#;
        assert_eq!(run_src(src), vec![-1, 0, 1]);
    }

    #[test]
    fn functions_and_recursion() {
        let src = r#"
            fn fact(n: int) -> int {
                if (n <= 1) { return 1; }
                return n * fact(n - 1);
            }
            fn main() { print(fact(6)); }
        "#;
        assert_eq!(run_src(src), vec![720]);
    }

    #[test]
    fn memory_intrinsics() {
        let src = r#"
            fn main() {
                var buf: ptr = alloc(64);
                store8(buf, 0, 1234);
                store1(buf, 8, 99);
                print(load8(buf, 0));
                print(load1(buf, 8));
                var buf2: ptr = alloc(64);
                memcpy(buf2, buf, 16);
                print(load8(buf2, 0));
                memset(buf2, 7, 8);
                print(load1(buf2, 3));
                free(buf);
                free(buf2);
            }
        "#;
        assert_eq!(run_src(src), vec![1234, 99, 1234, 7]);
    }

    #[test]
    fn pointer_arithmetic_and_storep() {
        let src = r#"
            fn main() {
                var a: ptr = alloc(64);
                var b: ptr = alloc(64);
                storep(a, 0, b);
                var c: ptr = loadp(a, 0);
                store8(c, 0, 5);
                print(load8(b, 0));
                var d: ptr = b + 8;
                store8(d, 0, 6);
                print(load8(b, 8));
                print(b == c);
                print(a == b);
                print(null == null);
            }
        "#;
        assert_eq!(run_src(src), vec![5, 6, 1, 0, 1]);
    }

    #[test]
    fn pm_and_persistence() {
        let src = r#"
            fn main() {
                var p: ptr = pmem_map(3, 4096);
                store8(p, 0, 77);
                clwb(p);
                sfence();
                crashpoint();
                print(load8(p, 0));
            }
        "#;
        assert_eq!(run_src(src), vec![77]);
    }

    #[test]
    fn shadowing_in_nested_scopes() {
        let src = r#"
            fn main() {
                var x: int = 1;
                if (1) {
                    var x: int = 2;
                    print(x);
                }
                print(x);
                while (x < 2) {
                    var x: int = 9;
                    print(x);
                }
            }
        "#;
        // The while loop never runs its body twice: inner x=9 printed once,
        // but loop condition uses outer x which never changes... so guard:
        // outer x is 1, body sets nothing; infinite loop avoided by break
        // condition? It would loop forever. Use a bounded variant instead.
        let _ = src;
        let src = r#"
            fn main() {
                var x: int = 1;
                if (1) { var x: int = 2; print(x); }
                print(x);
            }
        "#;
        assert_eq!(run_src(src), vec![2, 1]);
    }

    #[test]
    fn elide_tags_removes_statements() {
        let src = r#"
            fn main() {
                var p: ptr = pmem_map(0, 4096);
                store8(p, 0, 1);
                #[tag("bug1")] clwb(p);
                sfence();
            }
        "#;
        let full = Compiler::new().source("t.pmc", src).compile().unwrap();
        let buggy = Compiler::new()
            .source("t.pmc", src)
            .elide_tag("bug1")
            .compile()
            .unwrap();
        let count_flushes = |m: &pmir::Module| pmir::ModuleMetrics::measure(m).flushes;
        assert_eq!(count_flushes(&full), 1);
        assert_eq!(count_flushes(&buggy), 0);
    }

    #[test]
    fn when_features_gate_statements() {
        let src = r#"
            fn main() {
                #[when("devfix")] print(1);
                print(2);
            }
        "#;
        let plain = compile_one("t.pmc", src).unwrap();
        let dev = Compiler::new()
            .source("t.pmc", src)
            .feature("devfix")
            .compile()
            .unwrap();
        let run = |m: &pmir::Module| Vm::new(VmOptions::default()).run(m, "main").unwrap().output;
        assert_eq!(run(&plain), vec![2]);
        assert_eq!(run(&dev), vec![1, 2]);
    }

    #[test]
    fn multi_source_linking() {
        let lib = "fn helper(x: int) -> int { return x * 2; }";
        let app = "fn main() { print(helper(21)); }";
        let m = Compiler::new()
            .source("lib.pmc", lib)
            .source("app.pmc", app)
            .compile()
            .unwrap();
        let out = Vm::new(VmOptions::default())
            .run(&m, "main")
            .unwrap()
            .output;
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn debug_lines_attached() {
        let src = "fn main() {\n    var p: ptr = pmem_map(0, 4096);\n    store8(p, 0, 1);\n}";
        let m = compile_one("dbg.pmc", src).unwrap();
        let f = m.function_by_name("main").unwrap();
        let func = m.function(f);
        // The last store lowered is the `store8` on source line 3 (earlier
        // stores initialize the `p` variable slot on line 2).
        let store_loc = func
            .linked_insts()
            .map(|(_, i)| func.inst(i))
            .filter(|i| matches!(i.op, pmir::Op::Store { .. }))
            .last()
            .and_then(|i| i.loc)
            .expect("store has a loc");
        assert_eq!(store_loc.line, 3);
        assert_eq!(m.file_name(store_loc.file), "dbg.pmc");
    }

    #[test]
    fn errors_report_lines() {
        let err = compile_one("e.pmc", "fn main() { print(undefined_var); }").unwrap_err();
        assert!(err.to_string().contains("undefined_var"), "{err}");
        let err = compile_one("e.pmc", "fn main() { foo(); }").unwrap_err();
        assert!(err.to_string().contains("foo"), "{err}");
        let err = compile_one("e.pmc", "fn f(x: int) {}\nfn main() { f(); }").unwrap_err();
        assert!(err.to_string().contains("argument"), "{err}");
        let err = compile_one("e.pmc", "fn main() { var x: int = null; }").unwrap_err();
        assert!(err.to_string().contains("type"), "{err}");
    }

    #[test]
    fn type_errors_for_pointer_misuse() {
        // Arithmetic multiply on a pointer is rejected.
        let err = compile_one(
            "e.pmc",
            "fn main() { var p: ptr = alloc(8); print(p * 2); }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("type"), "{err}");
        // store8 base must be a pointer.
        let err = compile_one("e.pmc", "fn main() { store8(1, 0, 2); }").unwrap_err();
        assert!(err.to_string().contains("pointer"), "{err}");
    }

    #[test]
    fn non_void_fallthrough_aborts() {
        let src = r#"
            fn f(n: int) -> int {
                if (n > 0) { return 1; }
            }
            fn main() { print(f(0)); }
        "#;
        let m = compile_one("t.pmc", src).unwrap();
        let res = Vm::new(VmOptions::default()).run(&m, "main").unwrap();
        assert!(matches!(res.ended, pmvm::Ended::Aborted(_)));
    }

    #[test]
    fn globals_via_string_literals() {
        let src = r#"
            fn main() {
                var s: ptr = bytes("hey");
                print(load1(s, 0));
                print(load1(s, 2));
            }
        "#;
        assert_eq!(run_src(src), vec![i64::from(b'h'), i64::from(b'y')]);
    }
}
