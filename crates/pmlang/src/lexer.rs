//! The tokenizer.

use crate::error::LangError;

/// A token kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// String literal (for the `bytes("…")` intrinsic).
    Str(String),
    // Punctuation and operators.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Colon,
    Arrow,
    Hash,
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    AmpAmp,
    PipePipe,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    Ne,
    Bang,
    /// End of input.
    Eof,
}

/// A token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// 1-based line number.
    pub line: u32,
}

/// Tokenizes `src`.
///
/// # Errors
///
/// Returns a [`LangError`] on an unrecognized character or unterminated
/// string/comment.
pub fn tokenize(file: &str, src: &str) -> Result<Vec<Token>, LangError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line: u32 = 1;
    let err = |line: u32, msg: String| LangError::new(file, line, msg);

    macro_rules! push {
        ($t:expr) => {
            out.push(Token { tok: $t, line })
        };
    }

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                let start_line = line;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(err(start_line, "unterminated block comment".into()));
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || bytes[i] == b'x'
                        || (bytes[i].is_ascii_hexdigit() && src[start..].starts_with("0x")))
                {
                    i += 1;
                }
                let text = &src[start..i];
                let v = if let Some(hex) = text.strip_prefix("0x") {
                    i64::from_str_radix(hex, 16)
                } else {
                    text.parse()
                };
                match v {
                    Ok(v) => push!(Tok::Int(v)),
                    Err(_) => return Err(err(line, format!("bad integer literal: {text}"))),
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                push!(Tok::Ident(src[start..i].to_string()));
            }
            b'"' => {
                i += 1;
                let start = i;
                while i < bytes.len() && bytes[i] != b'"' {
                    if bytes[i] == b'\n' {
                        return Err(err(line, "unterminated string literal".into()));
                    }
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(err(line, "unterminated string literal".into()));
                }
                push!(Tok::Str(src[start..i].to_string()));
                i += 1;
            }
            b'(' => {
                push!(Tok::LParen);
                i += 1;
            }
            b')' => {
                push!(Tok::RParen);
                i += 1;
            }
            b'{' => {
                push!(Tok::LBrace);
                i += 1;
            }
            b'}' => {
                push!(Tok::RBrace);
                i += 1;
            }
            b'[' => {
                push!(Tok::LBracket);
                i += 1;
            }
            b']' => {
                push!(Tok::RBracket);
                i += 1;
            }
            b',' => {
                push!(Tok::Comma);
                i += 1;
            }
            b';' => {
                push!(Tok::Semi);
                i += 1;
            }
            b':' => {
                push!(Tok::Colon);
                i += 1;
            }
            b'#' => {
                push!(Tok::Hash);
                i += 1;
            }
            b'+' => {
                push!(Tok::Plus);
                i += 1;
            }
            b'*' => {
                push!(Tok::Star);
                i += 1;
            }
            b'/' => {
                push!(Tok::Slash);
                i += 1;
            }
            b'%' => {
                push!(Tok::Percent);
                i += 1;
            }
            b'^' => {
                push!(Tok::Caret);
                i += 1;
            }
            b'-' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    push!(Tok::Arrow);
                    i += 2;
                } else {
                    push!(Tok::Minus);
                    i += 1;
                }
            }
            b'&' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'&' {
                    push!(Tok::AmpAmp);
                    i += 2;
                } else {
                    push!(Tok::Amp);
                    i += 1;
                }
            }
            b'|' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'|' {
                    push!(Tok::PipePipe);
                    i += 2;
                } else {
                    push!(Tok::Pipe);
                    i += 1;
                }
            }
            b'<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'<' {
                    push!(Tok::Shl);
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push!(Tok::Le);
                    i += 2;
                } else {
                    push!(Tok::Lt);
                    i += 1;
                }
            }
            b'>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    push!(Tok::Shr);
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push!(Tok::Ge);
                    i += 2;
                } else {
                    push!(Tok::Gt);
                    i += 1;
                }
            }
            b'=' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push!(Tok::EqEq);
                    i += 2;
                } else {
                    push!(Tok::Assign);
                    i += 1;
                }
            }
            b'!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push!(Tok::Ne);
                    i += 2;
                } else {
                    push!(Tok::Bang);
                    i += 1;
                }
            }
            other => {
                return Err(err(
                    line,
                    format!("unexpected character: {:?}", other as char),
                ))
            }
        }
    }
    out.push(Token {
        tok: Tok::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        tokenize("t", src)
            .unwrap()
            .into_iter()
            .map(|t| t.tok)
            .collect()
    }

    #[test]
    fn basics() {
        assert_eq!(
            toks("fn f() -> int { return 1+2; }"),
            vec![
                Tok::Ident("fn".into()),
                Tok::Ident("f".into()),
                Tok::LParen,
                Tok::RParen,
                Tok::Arrow,
                Tok::Ident("int".into()),
                Tok::LBrace,
                Tok::Ident("return".into()),
                Tok::Int(1),
                Tok::Plus,
                Tok::Int(2),
                Tok::Semi,
                Tok::RBrace,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            toks("== != <= >= << >> && ||"),
            vec![
                Tok::EqEq,
                Tok::Ne,
                Tok::Le,
                Tok::Ge,
                Tok::Shl,
                Tok::Shr,
                Tok::AmpAmp,
                Tok::PipePipe,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_and_lines() {
        let ts = tokenize("t", "1 // c\n2 /* multi\nline */ 3").unwrap();
        assert_eq!(ts[0].line, 1);
        assert_eq!(ts[1].line, 2);
        assert_eq!(ts[2].line, 3);
    }

    #[test]
    fn hex_and_strings() {
        assert_eq!(toks("0x10"), vec![Tok::Int(16), Tok::Eof]);
        assert_eq!(toks("\"ab\""), vec![Tok::Str("ab".into()), Tok::Eof]);
    }

    #[test]
    fn errors() {
        assert!(tokenize("t", "\"unterminated").is_err());
        assert!(tokenize("t", "/* unterminated").is_err());
        assert!(tokenize("t", "$").is_err());
    }
}
