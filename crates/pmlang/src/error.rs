//! Front-end diagnostics.

use std::fmt;

/// A lexing, parsing, or semantic error with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LangError {
    /// Source file name.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl LangError {
    /// Creates an error.
    pub fn new(file: impl Into<String>, line: u32, message: impl Into<String>) -> Self {
        LangError {
            file: file.into(),
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.file, self.line, self.message)
    }
}

impl std::error::Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = LangError::new("a.pmc", 3, "unexpected token");
        assert_eq!(e.to_string(), "a.pmc:3: unexpected token");
    }
}
