//! The abstract syntax tree.

/// A surface type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LTy {
    /// 64-bit integer.
    Int,
    /// Pointer.
    Ptr,
    /// No value (function returns only).
    Void,
}

impl std::fmt::Display for LTy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            LTy::Int => "int",
            LTy::Ptr => "ptr",
            LTy::Void => "void",
        })
    }
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Parameter type.
    pub ty: LTy,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FnDecl {
    /// Function name.
    pub name: String,
    /// Parameters.
    pub params: Vec<Param>,
    /// Return type.
    pub ret: LTy,
    /// Body.
    pub body: Block,
    /// Declaration line.
    pub line: u32,
}

/// A `{ … }` statement list.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
}

/// A statement with source line and attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// The statement proper.
    pub kind: StmtKind,
    /// 1-based source line.
    pub line: u32,
    /// `#[tag("…")]` labels (elidable by the compiler — bug seeding).
    pub tags: Vec<String>,
    /// `#[when("…")]` feature gate, if any.
    pub when: Option<String>,
}

/// Statement kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// `var name: ty = init;`
    VarDecl {
        /// Variable name.
        name: String,
        /// Declared type.
        ty: LTy,
        /// Initializer.
        init: Expr,
    },
    /// `name = value;`
    Assign {
        /// Target variable.
        name: String,
        /// New value.
        value: Expr,
    },
    /// `storeN(base, off, value);` with N ∈ {1,2,4,8}.
    StoreInt {
        /// Access width in bytes.
        width: u8,
        /// Base pointer.
        base: Expr,
        /// Byte offset.
        off: Expr,
        /// Stored value.
        value: Expr,
    },
    /// `storep(base, off, value);` — stores a pointer.
    StorePtr {
        /// Base pointer.
        base: Expr,
        /// Byte offset.
        off: Expr,
        /// Stored pointer.
        value: Expr,
    },
    /// `memcpy(dst, src, len);`
    Memcpy {
        /// Destination pointer.
        dst: Expr,
        /// Source pointer.
        src: Expr,
        /// Length in bytes.
        len: Expr,
    },
    /// `memset(dst, val, len);`
    Memset {
        /// Destination pointer.
        dst: Expr,
        /// Fill byte.
        val: Expr,
        /// Length in bytes.
        len: Expr,
    },
    /// `clwb(p); clflushopt(p); clflush(p);`
    Flush {
        /// Which flush instruction.
        kind: FlushKind,
        /// Flushed address.
        addr: Expr,
    },
    /// `sfence(); mfence();`
    Fence {
        /// Which fence instruction.
        kind: FenceKind,
    },
    /// `free(p);`
    Free {
        /// The freed pointer.
        ptr: Expr,
    },
    /// `print(e);`
    Print {
        /// The printed value.
        value: Expr,
    },
    /// `crashpoint();`
    CrashPoint,
    /// `abort(code);`
    Abort {
        /// Exit code.
        code: i64,
    },
    /// `if (cond) { … } else { … }`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_blk: Block,
        /// Optional else branch.
        else_blk: Option<Block>,
    },
    /// `while (cond) { … }`
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Block,
    },
    /// `return;` / `return e;`
    Return {
        /// Returned value, if any.
        value: Option<Expr>,
    },
    /// A bare call used as a statement.
    ExprStmt {
        /// The expression (must be a call).
        expr: Expr,
    },
}

/// Flush families at the surface level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushKind {
    /// `clwb`
    Clwb,
    /// `clflushopt`
    ClflushOpt,
    /// `clflush`
    Clflush,
}

/// Fence families at the surface level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FenceKind {
    /// `sfence`
    Sfence,
    /// `mfence`
    Mfence,
}

/// An expression with source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// The expression proper.
    pub kind: ExprKind,
    /// 1-based source line.
    pub line: u32,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (`!e` is 1 iff `e == 0`).
    Not,
}

/// Binary operators (surface level; `&&`/`||` are *not* short-circuiting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    LogAnd,
    LogOr,
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    Int(i64),
    /// The null pointer.
    Null,
    /// Variable reference.
    Var(String),
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Function call.
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `loadN(base, off)`.
    LoadInt {
        /// Access width in bytes.
        width: u8,
        /// Base pointer.
        base: Box<Expr>,
        /// Byte offset.
        off: Box<Expr>,
    },
    /// `loadp(base, off)`.
    LoadPtr {
        /// Base pointer.
        base: Box<Expr>,
        /// Byte offset.
        off: Box<Expr>,
    },
    /// `alloc(size)` — volatile heap allocation.
    Alloc {
        /// Size in bytes.
        size: Box<Expr>,
    },
    /// `pmem_map(pool, size)` — PM pool mapping.
    PmemMap {
        /// Pool id (compile-time constant).
        pool: u64,
        /// Size in bytes.
        size: Box<Expr>,
    },
    /// `bytes("literal")` — address of a static byte string.
    Bytes {
        /// The literal contents.
        data: String,
    },
}
