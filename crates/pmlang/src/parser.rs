//! Recursive-descent parser.

use crate::ast::*;
use crate::error::LangError;
use crate::lexer::{Tok, Token};

/// Parses a whole source file into function declarations.
///
/// # Errors
///
/// Returns the first syntax error encountered.
pub fn parse(file: &str, tokens: Vec<Token>) -> Result<Vec<FnDecl>, LangError> {
    let mut p = Parser {
        file: file.to_string(),
        toks: tokens,
        pos: 0,
    };
    let mut fns = vec![];
    while !p.at(&Tok::Eof) {
        fns.push(p.fn_decl()?);
    }
    Ok(fns)
}

struct Parser {
    file: String,
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn at(&self, t: &Tok) -> bool {
        self.peek() == t
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, LangError> {
        Err(LangError::new(&self.file, self.line(), msg))
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<(), LangError> {
        if self.at(t) {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {what}, found {:?}", self.peek()))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, LangError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected {what}, found {other:?}")),
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<(), LangError> {
        match self.peek() {
            Tok::Ident(s) if s == kw => {
                self.bump();
                Ok(())
            }
            other => self.err(format!("expected `{kw}`, found {other:?}")),
        }
    }

    fn is_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn ty(&mut self) -> Result<LTy, LangError> {
        let name = self.ident("a type")?;
        match name.as_str() {
            "int" => Ok(LTy::Int),
            "ptr" => Ok(LTy::Ptr),
            "void" => Ok(LTy::Void),
            other => self.err(format!("unknown type `{other}`")),
        }
    }

    fn fn_decl(&mut self) -> Result<FnDecl, LangError> {
        let line = self.line();
        self.keyword("fn")?;
        let name = self.ident("a function name")?;
        self.expect(&Tok::LParen, "`(`")?;
        let mut params = vec![];
        if !self.at(&Tok::RParen) {
            loop {
                let pname = self.ident("a parameter name")?;
                self.expect(&Tok::Colon, "`:`")?;
                let ty = self.ty()?;
                if ty == LTy::Void {
                    return self.err("parameters cannot be void");
                }
                params.push(Param { name: pname, ty });
                if self.at(&Tok::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen, "`)`")?;
        let ret = if self.at(&Tok::Arrow) {
            self.bump();
            self.ty()?
        } else {
            LTy::Void
        };
        let body = self.block()?;
        Ok(FnDecl {
            name,
            params,
            ret,
            body,
            line,
        })
    }

    fn block(&mut self) -> Result<Block, LangError> {
        self.expect(&Tok::LBrace, "`{`")?;
        let mut stmts = vec![];
        while !self.at(&Tok::RBrace) {
            if self.at(&Tok::Eof) {
                return self.err("unterminated block");
            }
            stmts.push(self.stmt()?);
        }
        self.bump(); // }
        Ok(Block { stmts })
    }

    fn stmt(&mut self) -> Result<Stmt, LangError> {
        let mut tags = vec![];
        let mut when = None;
        while self.at(&Tok::Hash) {
            self.bump();
            self.expect(&Tok::LBracket, "`[`")?;
            let attr = self.ident("an attribute")?;
            self.expect(&Tok::LParen, "`(`")?;
            let value = match self.bump() {
                Tok::Str(s) => s,
                other => return self.err(format!("expected a string, found {other:?}")),
            };
            self.expect(&Tok::RParen, "`)`")?;
            self.expect(&Tok::RBracket, "`]`")?;
            match attr.as_str() {
                "tag" => tags.push(value),
                "when" => when = Some(value),
                other => return self.err(format!("unknown attribute `{other}`")),
            }
        }
        let line = self.line();
        let kind = self.stmt_kind()?;
        Ok(Stmt {
            kind,
            line,
            tags,
            when,
        })
    }

    fn stmt_kind(&mut self) -> Result<StmtKind, LangError> {
        if self.is_keyword("var") {
            self.bump();
            let name = self.ident("a variable name")?;
            self.expect(&Tok::Colon, "`:`")?;
            let ty = self.ty()?;
            if ty == LTy::Void {
                return self.err("variables cannot be void");
            }
            self.expect(&Tok::Assign, "`=`")?;
            let init = self.expr()?;
            self.expect(&Tok::Semi, "`;`")?;
            return Ok(StmtKind::VarDecl { name, ty, init });
        }
        if self.is_keyword("if") {
            self.bump();
            self.expect(&Tok::LParen, "`(`")?;
            let cond = self.expr()?;
            self.expect(&Tok::RParen, "`)`")?;
            let then_blk = self.block()?;
            let else_blk = if self.is_keyword("else") {
                self.bump();
                if self.is_keyword("if") {
                    // `else if` sugar: wrap the nested if in a block.
                    let line = self.line();
                    let nested = self.stmt_kind()?;
                    Some(Block {
                        stmts: vec![Stmt {
                            kind: nested,
                            line,
                            tags: vec![],
                            when: None,
                        }],
                    })
                } else {
                    Some(self.block()?)
                }
            } else {
                None
            };
            return Ok(StmtKind::If {
                cond,
                then_blk,
                else_blk,
            });
        }
        if self.is_keyword("while") {
            self.bump();
            self.expect(&Tok::LParen, "`(`")?;
            let cond = self.expr()?;
            self.expect(&Tok::RParen, "`)`")?;
            let body = self.block()?;
            return Ok(StmtKind::While { cond, body });
        }
        if self.is_keyword("return") {
            self.bump();
            let value = if self.at(&Tok::Semi) {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect(&Tok::Semi, "`;`")?;
            return Ok(StmtKind::Return { value });
        }

        // Intrinsic statements and assignments both start with an identifier.
        let Tok::Ident(head) = self.peek().clone() else {
            return self.err(format!("expected a statement, found {:?}", self.peek()));
        };

        // Statement intrinsics.
        let store_width = match head.as_str() {
            "store1" => Some(1u8),
            "store2" => Some(2),
            "store4" => Some(4),
            "store8" => Some(8),
            _ => None,
        };
        if let Some(width) = store_width {
            self.bump();
            let (base, off, value) = self.three_args()?;
            self.expect(&Tok::Semi, "`;`")?;
            return Ok(StmtKind::StoreInt {
                width,
                base,
                off,
                value,
            });
        }
        match head.as_str() {
            "storep" => {
                self.bump();
                let (base, off, value) = self.three_args()?;
                self.expect(&Tok::Semi, "`;`")?;
                Ok(StmtKind::StorePtr { base, off, value })
            }
            "memcpy" => {
                self.bump();
                let (dst, src, len) = self.three_args()?;
                self.expect(&Tok::Semi, "`;`")?;
                Ok(StmtKind::Memcpy { dst, src, len })
            }
            "memset" => {
                self.bump();
                let (dst, val, len) = self.three_args()?;
                self.expect(&Tok::Semi, "`;`")?;
                Ok(StmtKind::Memset { dst, val, len })
            }
            "clwb" | "clflushopt" | "clflush" => {
                self.bump();
                self.expect(&Tok::LParen, "`(`")?;
                let addr = self.expr()?;
                self.expect(&Tok::RParen, "`)`")?;
                self.expect(&Tok::Semi, "`;`")?;
                let kind = match head.as_str() {
                    "clwb" => FlushKind::Clwb,
                    "clflushopt" => FlushKind::ClflushOpt,
                    _ => FlushKind::Clflush,
                };
                Ok(StmtKind::Flush { kind, addr })
            }
            "sfence" | "mfence" => {
                self.bump();
                self.expect(&Tok::LParen, "`(`")?;
                self.expect(&Tok::RParen, "`)`")?;
                self.expect(&Tok::Semi, "`;`")?;
                let kind = if head == "sfence" {
                    FenceKind::Sfence
                } else {
                    FenceKind::Mfence
                };
                Ok(StmtKind::Fence { kind })
            }
            "free" => {
                self.bump();
                self.expect(&Tok::LParen, "`(`")?;
                let ptr = self.expr()?;
                self.expect(&Tok::RParen, "`)`")?;
                self.expect(&Tok::Semi, "`;`")?;
                Ok(StmtKind::Free { ptr })
            }
            "print" => {
                self.bump();
                self.expect(&Tok::LParen, "`(`")?;
                let value = self.expr()?;
                self.expect(&Tok::RParen, "`)`")?;
                self.expect(&Tok::Semi, "`;`")?;
                Ok(StmtKind::Print { value })
            }
            "crashpoint" => {
                self.bump();
                self.expect(&Tok::LParen, "`(`")?;
                self.expect(&Tok::RParen, "`)`")?;
                self.expect(&Tok::Semi, "`;`")?;
                Ok(StmtKind::CrashPoint)
            }
            "abort" => {
                self.bump();
                self.expect(&Tok::LParen, "`(`")?;
                let code = match self.bump() {
                    Tok::Int(v) => v,
                    other => {
                        return self.err(format!("abort takes an integer literal, found {other:?}"))
                    }
                };
                self.expect(&Tok::RParen, "`)`")?;
                self.expect(&Tok::Semi, "`;`")?;
                Ok(StmtKind::Abort { code })
            }
            _ => {
                // Assignment or a call statement.
                let save = self.pos;
                let name = self.ident("a name")?;
                if self.at(&Tok::Assign) {
                    self.bump();
                    let value = self.expr()?;
                    self.expect(&Tok::Semi, "`;`")?;
                    Ok(StmtKind::Assign { name, value })
                } else {
                    self.pos = save;
                    let expr = self.expr()?;
                    if !matches!(expr.kind, ExprKind::Call { .. }) {
                        return self.err("only calls may be used as expression statements");
                    }
                    self.expect(&Tok::Semi, "`;`")?;
                    Ok(StmtKind::ExprStmt { expr })
                }
            }
        }
    }

    fn three_args(&mut self) -> Result<(Expr, Expr, Expr), LangError> {
        self.expect(&Tok::LParen, "`(`")?;
        let a = self.expr()?;
        self.expect(&Tok::Comma, "`,`")?;
        let b = self.expr()?;
        self.expect(&Tok::Comma, "`,`")?;
        let c = self.expr()?;
        self.expect(&Tok::RParen, "`)`")?;
        Ok((a, b, c))
    }

    // ----- expressions, precedence climbing -----------------------------

    fn expr(&mut self) -> Result<Expr, LangError> {
        self.binary(0)
    }

    fn binary(&mut self, min_level: u8) -> Result<Expr, LangError> {
        let mut lhs = self.unary()?;
        while let Some((op, level)) = self.peek_binop() {
            if level < min_level {
                break;
            }
            let line = self.line();
            self.bump();
            let rhs = self.binary(level + 1)?;
            lhs = Expr {
                kind: ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                line,
            };
        }
        Ok(lhs)
    }

    fn peek_binop(&self) -> Option<(BinOp, u8)> {
        Some(match self.peek() {
            Tok::PipePipe => (BinOp::LogOr, 0),
            Tok::AmpAmp => (BinOp::LogAnd, 1),
            Tok::Pipe => (BinOp::Or, 2),
            Tok::Caret => (BinOp::Xor, 3),
            Tok::Amp => (BinOp::And, 4),
            Tok::EqEq => (BinOp::Eq, 5),
            Tok::Ne => (BinOp::Ne, 5),
            Tok::Lt => (BinOp::Lt, 6),
            Tok::Le => (BinOp::Le, 6),
            Tok::Gt => (BinOp::Gt, 6),
            Tok::Ge => (BinOp::Ge, 6),
            Tok::Shl => (BinOp::Shl, 7),
            Tok::Shr => (BinOp::Shr, 7),
            Tok::Plus => (BinOp::Add, 8),
            Tok::Minus => (BinOp::Sub, 8),
            Tok::Star => (BinOp::Mul, 9),
            Tok::Slash => (BinOp::Div, 9),
            Tok::Percent => (BinOp::Rem, 9),
            _ => return None,
        })
    }

    fn unary(&mut self) -> Result<Expr, LangError> {
        let line = self.line();
        match self.peek() {
            Tok::Minus => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr {
                    kind: ExprKind::Unary {
                        op: UnOp::Neg,
                        expr: Box::new(e),
                    },
                    line,
                })
            }
            Tok::Bang => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr {
                    kind: ExprKind::Unary {
                        op: UnOp::Not,
                        expr: Box::new(e),
                    },
                    line,
                })
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr, LangError> {
        let line = self.line();
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::Int(v),
                    line,
                })
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(e)
            }
            Tok::Ident(name) => {
                self.bump();
                match name.as_str() {
                    "null" => {
                        return Ok(Expr {
                            kind: ExprKind::Null,
                            line,
                        })
                    }
                    "load1" | "load2" | "load4" | "load8" => {
                        let width = name
                            .trim_start_matches("load")
                            .parse::<u8>()
                            .expect("digit");
                        self.expect(&Tok::LParen, "`(`")?;
                        let base = self.expr()?;
                        self.expect(&Tok::Comma, "`,`")?;
                        let off = self.expr()?;
                        self.expect(&Tok::RParen, "`)`")?;
                        return Ok(Expr {
                            kind: ExprKind::LoadInt {
                                width,
                                base: Box::new(base),
                                off: Box::new(off),
                            },
                            line,
                        });
                    }
                    "loadp" => {
                        self.expect(&Tok::LParen, "`(`")?;
                        let base = self.expr()?;
                        self.expect(&Tok::Comma, "`,`")?;
                        let off = self.expr()?;
                        self.expect(&Tok::RParen, "`)`")?;
                        return Ok(Expr {
                            kind: ExprKind::LoadPtr {
                                base: Box::new(base),
                                off: Box::new(off),
                            },
                            line,
                        });
                    }
                    "alloc" => {
                        self.expect(&Tok::LParen, "`(`")?;
                        let size = self.expr()?;
                        self.expect(&Tok::RParen, "`)`")?;
                        return Ok(Expr {
                            kind: ExprKind::Alloc {
                                size: Box::new(size),
                            },
                            line,
                        });
                    }
                    "pmem_map" => {
                        self.expect(&Tok::LParen, "`(`")?;
                        let pool = match self.bump() {
                            Tok::Int(v) if v >= 0 => v as u64,
                            other => {
                                return self.err(format!(
                                    "pmem_map pool id must be a non-negative integer literal, found {other:?}"
                                ))
                            }
                        };
                        self.expect(&Tok::Comma, "`,`")?;
                        let size = self.expr()?;
                        self.expect(&Tok::RParen, "`)`")?;
                        return Ok(Expr {
                            kind: ExprKind::PmemMap {
                                pool,
                                size: Box::new(size),
                            },
                            line,
                        });
                    }
                    "bytes" => {
                        self.expect(&Tok::LParen, "`(`")?;
                        let data = match self.bump() {
                            Tok::Str(s) => s,
                            other => {
                                return self
                                    .err(format!("bytes takes a string literal, found {other:?}"))
                            }
                        };
                        self.expect(&Tok::RParen, "`)`")?;
                        return Ok(Expr {
                            kind: ExprKind::Bytes { data },
                            line,
                        });
                    }
                    _ => {}
                }
                if self.at(&Tok::LParen) {
                    self.bump();
                    let mut args = vec![];
                    if !self.at(&Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.at(&Tok::Comma) {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(&Tok::RParen, "`)`")?;
                    Ok(Expr {
                        kind: ExprKind::Call { name, args },
                        line,
                    })
                } else {
                    Ok(Expr {
                        kind: ExprKind::Var(name),
                        line,
                    })
                }
            }
            other => self.err(format!("expected an expression, found {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn parse_src(src: &str) -> Result<Vec<FnDecl>, LangError> {
        parse("t.pmc", tokenize("t.pmc", src)?)
    }

    #[test]
    fn parses_signatures() {
        let fns = parse_src("fn f(a: int, b: ptr) -> int { return a; }").unwrap();
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "f");
        assert_eq!(fns[0].params.len(), 2);
        assert_eq!(fns[0].ret, LTy::Int);
        let fns = parse_src("fn g() {}").unwrap();
        assert_eq!(fns[0].ret, LTy::Void);
    }

    #[test]
    fn precedence_tree() {
        let fns = parse_src("fn f() { print(1 + 2 * 3); }").unwrap();
        let StmtKind::Print { value } = &fns[0].body.stmts[0].kind else {
            panic!()
        };
        let ExprKind::Binary {
            op: BinOp::Add,
            rhs,
            ..
        } = &value.kind
        else {
            panic!("expected + at root, got {value:?}")
        };
        assert!(matches!(rhs.kind, ExprKind::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn attributes_collected() {
        let fns =
            parse_src("fn f() { #[tag(\"a\")] #[tag(\"b\")] #[when(\"x\")] sfence(); }").unwrap();
        let s = &fns[0].body.stmts[0];
        assert_eq!(s.tags, vec!["a", "b"]);
        assert_eq!(s.when.as_deref(), Some("x"));
        assert!(matches!(s.kind, StmtKind::Fence { .. }));
    }

    #[test]
    fn else_if_sugar() {
        let fns = parse_src("fn f(n: int) { if (n) {} else if (n) {} else {} }").unwrap();
        let StmtKind::If { else_blk, .. } = &fns[0].body.stmts[0].kind else {
            panic!()
        };
        let inner = &else_blk.as_ref().unwrap().stmts[0];
        assert!(matches!(inner.kind, StmtKind::If { .. }));
    }

    #[test]
    fn error_positions() {
        let err = parse_src("fn f() {\n  var x int = 1;\n}").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn rejects_non_call_expr_stmt() {
        let err = parse_src("fn f() { 1 + 2; }").unwrap_err();
        assert!(err.message.contains("statement"), "{err}");
    }

    #[test]
    fn intrinsic_statements_parse() {
        let src = r#"
            fn f(p: ptr) {
                store8(p, 0, 1);
                storep(p, 8, null);
                memcpy(p, p, 0);
                memset(p, 0, 8);
                clwb(p);
                clflushopt(p);
                clflush(p);
                sfence();
                mfence();
                free(p);
                crashpoint();
                abort(2);
            }
        "#;
        let fns = parse_src(src).unwrap();
        assert_eq!(fns[0].body.stmts.len(), 12);
    }
}
