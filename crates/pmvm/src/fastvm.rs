//! The fast execution tier: direct-threaded dispatch over a
//! [`DecodedModule`].
//!
//! Semantics are **identical** to the reference interpreter
//! ([`crate::interp`]) — same traces, same machine state, same errors and
//! stats — but the per-step work is a pc-indexed fetch from a flat op array
//! with pre-resolved operands: no block/inst arena walks, no operand
//! `match` on IR enums, no `HashMap` probes, and no allocation on the
//! untraced path.
//!
//! Tracing is abstracted behind [`EventSink`], a compile-time switch: the
//! run loop is monomorphized once over [`TraceSink`] (tracing on) and once
//! over [`NullSink`]. With the null sink, event emission — including the
//! stack capture and its per-event allocations — compiles away entirely,
//! which is what makes recovery-oracle boots during crash-state exploration
//! nearly free.

use crate::decode::{DecOp, DecodedFunc, DecodedModule, OpMeta, Src, NO_DST};
use crate::options::VmOptions;
use crate::result::{Ended, RunResult, VmError};
use pmem_sim::{layout, Machine};
use pmir::{FuncId, Module};
use pmtrace::{DataLog, Event, EventKind, IrRef, Trace, TraceLoc};

/// Compile-time tracing switch for the fast tier's run loop.
pub(crate) trait EventSink {
    /// Whether events are recorded at all. `false` makes every emission
    /// site compile away.
    const ENABLED: bool;
    fn push(&mut self, ev: Event);
    fn into_trace(self) -> Option<Trace>;
}

/// Tracing disabled: all event work is dead code.
pub(crate) struct NullSink;

impl EventSink for NullSink {
    const ENABLED: bool = false;
    fn push(&mut self, _ev: Event) {}
    fn into_trace(self) -> Option<Trace> {
        None
    }
}

/// Tracing enabled: events accumulate into a [`Trace`].
pub(crate) struct TraceSink(Trace);

impl EventSink for TraceSink {
    const ENABLED: bool = true;
    fn push(&mut self, ev: Event) {
        self.0.push(ev);
    }
    fn into_trace(self) -> Option<Trace> {
        Some(self.0)
    }
}

/// Runs `entry` on the fast tier. Called by [`crate::Vm::run`] after option
/// validation and machine/injector setup (shared with the interpreter).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run(
    module: &Module,
    entry: FuncId,
    opts: &VmOptions,
    machine: Machine,
    injector: Option<pmfault::Injector>,
    fuel: u64,
    deadline: Option<std::time::Instant>,
    decoded: Option<&DecodedModule>,
) -> Result<RunResult, VmError> {
    let owned;
    let decoded = match decoded {
        Some(d) => d,
        None => {
            owned = DecodedModule::decode(module);
            &owned
        }
    };
    if opts.trace {
        // Traces run to thousands of events; growing from empty pays a
        // dozen reallocations that each memmove the whole log.
        let mut t = Trace::new();
        t.events.reserve(1024);
        go(
            module,
            decoded,
            entry,
            opts,
            machine,
            injector,
            fuel,
            deadline,
            TraceSink(t),
        )
    } else {
        go(
            module, decoded, entry, opts, machine, injector, fuel, deadline, NullSink,
        )
    }
}

#[allow(clippy::too_many_arguments)]
fn go<S: EventSink>(
    module: &Module,
    decoded: &DecodedModule,
    entry: FuncId,
    opts: &VmOptions,
    machine: Machine,
    injector: Option<pmfault::Injector>,
    fuel: u64,
    deadline: Option<std::time::Instant>,
    sink: S,
) -> Result<RunResult, VmError> {
    let mut exec = FastExec {
        module,
        decoded,
        machine,
        frames: Vec::with_capacity(16),
        vals: Vec::with_capacity(256),
        globals: Vec::new(),
        output: vec![],
        sink,
        pm_data: opts.capture_pm_data.then(|| {
            let mut d = DataLog::new();
            d.records.reserve(256);
            d
        }),
        steps: 0,
        seq: 0,
        crash_points: 0,
        pm_stores_seen: 0,
        fuel,
        deadline,
        injector,
        opts,
    };
    exec.install_globals()?;
    exec.push_call(entry.0);
    let (ended, return_value) = exec.run_loop()?;
    if ended == Ended::Returned {
        exec.emit(EventKind::ProgramEnd, None);
    }
    crate::interp::record_run_obs(
        opts,
        exec.steps,
        exec.machine.stats(),
        exec.fuel,
        &exec.injector,
    );
    Ok(RunResult {
        output: exec.output,
        return_value,
        ended,
        stats: *exec.machine.stats(),
        trace: exec.sink.into_trace(),
        pm_data: exec.pm_data,
        machine: exec.machine,
        steps: exec.steps,
    })
}

/// One activation record: the function, its pc, and the base of its value
/// window in the shared slot stack.
struct FastFrame {
    func: u32,
    pc: u32,
    base: u32,
}

struct FastExec<'m, 'o, S: EventSink> {
    module: &'m Module,
    decoded: &'m DecodedModule,
    machine: Machine,
    frames: Vec<FastFrame>,
    /// Value slots for every live frame, contiguously — a call extends it,
    /// a return truncates it. No per-call allocation once warm.
    vals: Vec<Option<i64>>,
    /// Dense global address table, indexed by `GlobalId.0`.
    globals: Vec<u64>,
    output: Vec<i64>,
    sink: S,
    pm_data: Option<DataLog>,
    steps: u64,
    seq: u64,
    crash_points: u64,
    pm_stores_seen: u64,
    fuel: u64,
    deadline: Option<std::time::Instant>,
    injector: Option<pmfault::Injector>,
    opts: &'o VmOptions,
}

impl<S: EventSink> FastExec<'_, '_, S> {
    fn install_globals(&mut self) -> Result<(), VmError> {
        for (_, g) in self.module.globals() {
            let addr = self.machine.add_global(g.size, &g.init)?;
            self.globals.push(addr);
        }
        Ok(())
    }

    fn push_call(&mut self, func: u32) {
        let df = &self.decoded.funcs[func as usize];
        let base = self.vals.len() as u32;
        self.vals
            .resize(self.vals.len() + df.n_values as usize, None);
        for slot in &mut self.vals[base as usize..(base + df.n_params) as usize] {
            *slot = Some(0);
        }
        self.machine.push_frame();
        self.frames.push(FastFrame {
            func,
            pc: df.entry_pc,
            base,
        });
    }

    fn cur_func_name(&self) -> String {
        self.frames
            .last()
            .map(|f| self.decoded.funcs[f.func as usize].name.clone())
            .unwrap_or_default()
    }

    #[inline(always)]
    fn read(&self, base: u32, s: Src) -> Result<i64, VmError> {
        match s {
            Src::Const(c) => Ok(c),
            Src::Slot(n) => self.vals[(base + n) as usize].ok_or_else(|| VmError::UndefinedValue {
                function: self.cur_func_name(),
            }),
        }
    }

    #[inline(always)]
    fn write(&mut self, base: u32, dst: u32, v: i64) {
        if dst != NO_DST {
            self.vals[(base + dst) as usize] = Some(v);
        }
    }

    fn trace_loc(&self, loc: Option<pmir::SrcLoc>) -> Option<TraceLoc> {
        loc.map(|l| TraceLoc {
            file: self.module.file_name(l.file).to_string(),
            line: l.line,
            col: l.col,
        })
    }

    /// Captures the current call stack, innermost first (cold: only called
    /// from emission sites, which the null sink compiles away).
    fn capture_stack(&self) -> Vec<pmtrace::Frame> {
        let mut out = Vec::with_capacity(self.frames.len());
        for (depth, fr) in self.frames.iter().enumerate().rev() {
            let df = &self.decoded.funcs[fr.func as usize];
            let innermost = depth == self.frames.len() - 1;
            let (call_inst, loc) = if innermost {
                (None, None)
            } else {
                // This frame is suspended at its call op.
                let m = &df.meta[fr.pc as usize];
                (Some(m.inst), self.trace_loc(m.loc))
            };
            out.push(pmtrace::Frame {
                function: df.name.clone(),
                call_inst,
                loc,
            });
        }
        out
    }

    fn emit(&mut self, kind: EventKind, at: Option<&OpMeta>) -> Option<u64> {
        if !S::ENABLED {
            return None;
        }
        let stack = self.capture_stack();
        let (at, loc) = match at {
            Some(m) => (
                Some(IrRef {
                    function: self.cur_func_name(),
                    inst: m.inst,
                }),
                self.trace_loc(m.loc),
            ),
            None => (None, None),
        };
        let seq = self.seq;
        self.seq += 1;
        self.sink.push(Event {
            seq,
            kind,
            at,
            loc,
            stack,
        });
        Some(seq)
    }

    /// Records the post-store cache bytes of a PM write into the data log.
    fn capture_pm_write(&mut self, seq: Option<u64>, addr: u64, len: u64) {
        if !S::ENABLED {
            return;
        }
        let (Some(seq), Some(_)) = (seq, self.pm_data.as_ref()) else {
            return;
        };
        let bytes = self.machine.peek(addr, len).unwrap_or_default();
        self.pm_data
            .as_mut()
            .expect("checked")
            .push(seq, addr, bytes);
    }

    fn after_pm_store(&mut self, addr: u64) {
        self.pm_stores_seen += 1;
        if let Some(k) = self.opts.evict_period {
            if k > 0 && self.pm_stores_seen.is_multiple_of(k) {
                self.machine.evict(addr);
            }
        }
    }

    fn check_watchdog(&self) -> Result<(), VmError> {
        if let Some(d) = self.deadline {
            if std::time::Instant::now() >= d {
                return Err(VmError::Watchdog {
                    limit_ms: self.opts.watchdog_ms.unwrap_or(0),
                });
            }
        }
        Ok(())
    }

    /// An injected divergence: spin until the watchdog fires (validated
    /// armed whenever a stuck-loop fault is planned).
    fn stuck_loop(&self) -> Result<(Ended, Option<i64>), VmError> {
        loop {
            self.check_watchdog()?;
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
    }

    fn run_loop(&mut self) -> Result<(Ended, Option<i64>), VmError> {
        let mut last_ret: Option<i64> = None;
        while let Some(frame) = self.frames.last() {
            // `stop_at_event`: the previous op emitted event `n` and
            // completed; crash here, before the next op runs.
            if let Some(n) = self.opts.stop_at_event {
                if self.seq > n {
                    return Ok((Ended::AtEvent(n), None));
                }
            }
            self.steps += 1;
            if self.steps > self.fuel {
                return Err(VmError::FuelExhausted { limit: self.fuel });
            }
            // Wall-clock watchdog on a coarse stride: no syscalls in the
            // hot loop.
            if self.steps & 0x3FF == 0 {
                self.check_watchdog()?;
            }
            if self.injector.is_some() {
                if let Some(pmfault::FaultKind::StuckLoop) = self
                    .injector
                    .as_mut()
                    .and_then(|i| i.fire(pmfault::FaultSite::VmDiverge))
                {
                    return self.stuck_loop();
                }
            }
            let func = frame.func;
            let pc = frame.pc;
            let base = frame.base;
            // Copy the decoded-module reference out of `self` so the op
            // borrow is tied to 'm rather than to `self` — the dispatch
            // below calls &mut self methods while holding `op`.
            let decoded = self.decoded;
            let df: &DecodedFunc = &decoded.funcs[func as usize];
            self.machine.charge_inst();

            let op: &DecOp = &df.ops[pc as usize];
            match op {
                DecOp::Bin { op, a, b, dst } => {
                    let (a, b) = (self.read(base, *a)?, self.read(base, *b)?);
                    let r = op.eval(a, b).ok_or_else(|| VmError::DivisionByZero {
                        function: self.cur_func_name(),
                    })?;
                    self.write(base, *dst, r);
                    self.advance();
                }
                DecOp::Cmp { pred, a, b, dst } => {
                    let r = pred.eval(self.read(base, *a)?, self.read(base, *b)?);
                    self.write(base, *dst, r);
                    self.advance();
                }
                DecOp::Alloca { size, dst } => {
                    let addr = self.machine.stack_alloc(*size)?;
                    self.write(base, *dst, addr as i64);
                    self.advance();
                }
                DecOp::HeapAlloc { size, dst } => {
                    let size = self.read(base, *size)? as u64;
                    let addr = self.machine.heap_alloc(size)?;
                    self.write(base, *dst, addr as i64);
                    self.advance();
                }
                DecOp::HeapFree { ptr } => {
                    let addr = self.read(base, *ptr)? as u64;
                    self.machine.heap_free(addr)?;
                    self.advance();
                }
                DecOp::PmemMap {
                    size,
                    pool_hint,
                    dst,
                } => {
                    let pool_hint = *pool_hint;
                    let dst = *dst;
                    let size = self.read(base, *size)? as u64;
                    let pm_base = self.machine.map_pool(pool_hint, size)?;
                    self.write(base, dst, pm_base as i64);
                    let meta = &df.meta[pc as usize];
                    self.emit(
                        EventKind::RegisterPool {
                            hint: pool_hint,
                            base: pm_base,
                            size,
                        },
                        Some(meta),
                    );
                    self.advance();
                }
                DecOp::Gep {
                    base: b0,
                    offset,
                    dst,
                } => {
                    let r = (self.read(base, *b0)? as u64)
                        .wrapping_add(self.read(base, *offset)? as u64);
                    self.write(base, *dst, r as i64);
                    self.advance();
                }
                DecOp::Load { width, addr, dst } => {
                    let a = self.read(base, *addr)? as u64;
                    let v = self.machine.load_int(a, *width)?;
                    self.write(base, *dst, v);
                    self.advance();
                }
                DecOp::Store { width, addr, value } => {
                    let width = *width;
                    let a = self.read(base, *addr)? as u64;
                    let v = self.read(base, *value)?;
                    self.machine.store_int(a, width, v)?;
                    if layout::is_pm_addr(a) {
                        let seq = self.emit(
                            EventKind::Store {
                                addr: a,
                                len: width as u64,
                            },
                            Some(&df.meta[pc as usize]),
                        );
                        self.capture_pm_write(seq, a, width as u64);
                        self.after_pm_store(a);
                    }
                    self.advance();
                }
                DecOp::Memcpy { dst_addr, src, len } => {
                    let d = self.read(base, *dst_addr)? as u64;
                    let s = self.read(base, *src)? as u64;
                    let n = self.read(base, *len)? as u64;
                    self.machine.memcpy(d, s, n)?;
                    if n > 0 && layout::is_pm_addr(d) {
                        let seq = self.emit(
                            EventKind::Store { addr: d, len: n },
                            Some(&df.meta[pc as usize]),
                        );
                        self.capture_pm_write(seq, d, n);
                        self.after_pm_store(d);
                    }
                    self.advance();
                }
                DecOp::Memset { dst_addr, val, len } => {
                    let d = self.read(base, *dst_addr)? as u64;
                    let v = self.read(base, *val)? as u8;
                    let n = self.read(base, *len)? as u64;
                    self.machine.memset(d, v, n)?;
                    if n > 0 && layout::is_pm_addr(d) {
                        let seq = self.emit(
                            EventKind::Store { addr: d, len: n },
                            Some(&df.meta[pc as usize]),
                        );
                        self.capture_pm_write(seq, d, n);
                        self.after_pm_store(d);
                    }
                    self.advance();
                }
                DecOp::Flush { sim, trace, addr } => {
                    let (sim, trace) = (*sim, *trace);
                    let a = self.read(base, *addr)? as u64;
                    self.machine.flush(sim, a)?;
                    if layout::is_pm_addr(a) {
                        self.emit(
                            EventKind::Flush {
                                kind: trace,
                                addr: a,
                            },
                            Some(&df.meta[pc as usize]),
                        );
                    }
                    self.advance();
                }
                DecOp::Fence { sim, trace } => {
                    let (sim, trace) = (*sim, *trace);
                    self.machine.fence(sim);
                    self.emit(
                        EventKind::Fence { kind: trace },
                        Some(&df.meta[pc as usize]),
                    );
                    self.advance();
                }
                DecOp::Call {
                    callee,
                    args,
                    dst: _,
                } => {
                    let callee = *callee;
                    // Arguments are read from the caller's window *before*
                    // the callee's window is pushed (the push may
                    // reallocate `vals`).
                    let argc = args.len();
                    let mut argv = [0i64; 8];
                    let mut spill: Vec<i64> = Vec::new();
                    if argc <= 8 {
                        for (i, &a) in args.iter().enumerate() {
                            argv[i] = self.read(base, a)?;
                        }
                    } else {
                        spill.reserve(argc);
                        for &a in args.iter() {
                            spill.push(self.read(base, a)?);
                        }
                    }
                    self.machine.charge_call();
                    self.push_call(callee);
                    let nb = self.frames.last().expect("just pushed").base as usize;
                    let src: &[i64] = if argc <= 8 { &argv[..argc] } else { &spill };
                    for (i, &v) in src.iter().enumerate() {
                        self.vals[nb + i] = Some(v);
                    }
                }
                DecOp::Ret { value } => {
                    let v = match value {
                        Some(v) => Some(self.read(base, *v)?),
                        None => None,
                    };
                    self.machine.pop_frame();
                    let done = self.frames.pop().expect("active frame");
                    self.vals.truncate(done.base as usize);
                    last_ret = v;
                    if let Some(caller) = self.frames.last() {
                        let (cf, cpc, cb) = (caller.func, caller.pc, caller.base);
                        let cdf = &decoded.funcs[cf as usize];
                        if let DecOp::Call { dst, .. } = &cdf.ops[cpc as usize] {
                            if let Some(v) = v {
                                self.write(cb, *dst, v);
                            }
                        }
                        self.advance();
                    }
                }
                DecOp::Br { target } => {
                    let target = *target;
                    self.frames.last_mut().expect("active").pc = target;
                }
                DecOp::CondBr {
                    cond,
                    then_pc,
                    else_pc,
                } => {
                    let (then_pc, else_pc) = (*then_pc, *else_pc);
                    let c = self.read(base, *cond)?;
                    self.frames.last_mut().expect("active").pc =
                        if c != 0 { then_pc } else { else_pc };
                }
                DecOp::GlobalAddr { global, dst } => {
                    let addr = self.globals[*global as usize];
                    self.write(base, *dst, addr as i64);
                    self.advance();
                }
                DecOp::Print { value } => {
                    let v = self.read(base, *value)?;
                    self.output.push(v);
                    self.advance();
                }
                DecOp::CrashPoint => {
                    self.crash_points += 1;
                    self.emit(EventKind::CrashPoint, Some(&df.meta[pc as usize]));
                    if self.opts.stop_at_crash_point == Some(self.crash_points) {
                        return Ok((Ended::CrashPoint(self.crash_points), None));
                    }
                    self.advance();
                }
                DecOp::Abort { code } => {
                    return Ok((Ended::Aborted(*code), None));
                }
                DecOp::TrapFallthrough => {
                    // Matches the interpreter's behavior on malformed IR: it
                    // panics indexing past the block's instruction list.
                    panic!(
                        "control fell off the end of a block in `{}` (malformed IR)",
                        df.name
                    );
                }
            }
        }
        Ok((Ended::Returned, last_ret))
    }

    #[inline(always)]
    fn advance(&mut self) {
        self.frames.last_mut().expect("active frame").pc += 1;
    }
}

#[cfg(test)]
mod tests {
    use crate::options::ExecTier;
    use crate::{Vm, VmOptions};
    use pmir::{BinOp, CmpPred, FenceKind, FlushKind, FunctionBuilder, Module, Operand, Type};

    /// A module exercising every op family: arithmetic, control flow,
    /// calls/recursion, globals, heap, PM stores/memops/flushes/fences,
    /// crash points, and source locations.
    fn kitchen_sink() -> Module {
        let mut m = Module::new();
        let file = m.intern_file("sink.pmc");
        let g = m.add_global("seed", 16, b"abcdefgh".to_vec());
        let fib = m.declare_function("fib", vec![Type::int(8)], Type::int(8));
        {
            let mut b = FunctionBuilder::new(&mut m, fib);
            let e = b.entry_block();
            let rec = b.new_block("rec");
            let base = b.new_block("base");
            b.switch_to(e);
            let n = b.arg(0);
            let c = b.cmp(CmpPred::SLt, n, 2i64);
            b.cond_br(c, base, rec);
            b.switch_to(base);
            b.ret(Some(Operand::Value(n)));
            b.switch_to(rec);
            let n1 = b.bin(BinOp::Sub, n, 1i64);
            let n2 = b.bin(BinOp::Sub, n, 2i64);
            let a = b.call(fib, vec![Operand::Value(n1)]).unwrap();
            let bb = b.call(fib, vec![Operand::Value(n2)]).unwrap();
            let s = b.bin(BinOp::Add, a, bb);
            b.ret(Some(Operand::Value(s)));
            b.finish();
        }
        let touch = m.declare_function("touch", vec![Type::Ptr], Type::Void);
        {
            let mut b = FunctionBuilder::new(&mut m, touch);
            let e = b.entry_block();
            b.switch_to(e);
            b.set_loc(pmir::SrcLoc::line(file, 7));
            let p = b.arg(0);
            b.store(Type::int(8), p, 0x1122334455667788i64);
            b.flush(FlushKind::Clwb, p);
            b.fence(FenceKind::Sfence);
            b.ret(None);
            b.finish();
        }
        let f = m.declare_function("main", vec![], Type::int(8));
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.entry_block();
        b.switch_to(e);
        b.set_loc(pmir::SrcLoc::line(file, 30));
        let pool = b.pmem_map(4096i64, 0);
        let ga = b.global_addr(g);
        b.memcpy(pool, ga, 8i64);
        let off = b.gep(pool, 64i64);
        b.call(touch, vec![Operand::Value(off)]);
        b.memset(pool, 0x5ai64, 4i64);
        b.flush(FlushKind::Clflush, pool);
        b.crash_point();
        let h = b.heap_alloc(64i64);
        b.store(Type::int(8), h, 7i64);
        let hv = b.load(Type::int(8), h);
        b.heap_free(h);
        let slot = b.alloca(8);
        b.store(Type::int(8), slot, 0i64);
        let fv = b.call(fib, vec![Operand::Const(9)]).unwrap();
        b.print(fv);
        b.print(hv);
        let r = b.bin(BinOp::Add, fv, hv);
        b.fence(FenceKind::Mfence);
        b.ret(Some(Operand::Value(r)));
        b.finish();
        m
    }

    fn run_tier(m: &Module, opts: VmOptions, tier: ExecTier) -> crate::RunResult {
        Vm::new(opts.with_tier(tier)).run(m, "main").unwrap()
    }

    /// The strictest comparison: both tiers must agree on every observable.
    fn assert_identical(m: &Module, opts: VmOptions) {
        let a = run_tier(m, opts.clone(), ExecTier::Interp);
        let b = run_tier(m, opts, ExecTier::Fast);
        assert_eq!(a.output, b.output, "output");
        assert_eq!(a.return_value, b.return_value, "return value");
        assert_eq!(a.ended, b.ended, "ended");
        assert_eq!(a.steps, b.steps, "steps");
        assert_eq!(a.stats, b.stats, "machine stats");
        assert_eq!(a.trace, b.trace, "trace");
        assert_eq!(a.pm_data, b.pm_data, "pm data");
        assert_eq!(
            a.machine.crash_image(),
            b.machine.crash_image(),
            "crash image"
        );
        assert_eq!(
            a.machine.dirty_pm_lines(),
            b.machine.dirty_pm_lines(),
            "dirty lines"
        );
        assert_eq!(
            a.machine.pending_pm_lines(),
            b.machine.pending_pm_lines(),
            "pending lines"
        );
    }

    #[test]
    fn tiers_agree_on_kitchen_sink() {
        assert_identical(&kitchen_sink(), VmOptions::default().capture_pm_data());
    }

    #[test]
    fn tiers_agree_untraced() {
        assert_identical(&kitchen_sink(), VmOptions::bench());
    }

    #[test]
    fn tiers_agree_at_crash_point_stop() {
        assert_identical(&kitchen_sink(), VmOptions::default().stop_at(1));
    }

    #[test]
    fn tiers_agree_at_every_event_stop() {
        let m = kitchen_sink();
        let full = run_tier(&m, VmOptions::default(), ExecTier::Interp);
        let n_events = full.trace.as_ref().unwrap().len() as u64;
        assert!(n_events > 5, "sink module must emit a real trace");
        for seq in 0..n_events {
            assert_identical(&m, VmOptions::default().stop_at_event(seq));
        }
    }

    #[test]
    fn tiers_agree_with_eviction_pressure() {
        let opts = VmOptions {
            evict_period: Some(2),
            ..VmOptions::default()
        };
        assert_identical(&kitchen_sink(), opts);
    }

    #[test]
    fn tiers_agree_on_errors() {
        // Division by zero carries the trapping function's name.
        let mut m = Module::new();
        let f = m.declare_function("main", vec![], Type::Void);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.entry_block();
        b.switch_to(e);
        let v = b.bin(BinOp::SDiv, 1i64, 0i64);
        b.print(v);
        b.ret(None);
        b.finish();
        let ea = Vm::new(VmOptions::default().with_tier(ExecTier::Interp))
            .run(&m, "main")
            .unwrap_err();
        let eb = Vm::new(VmOptions::default().with_tier(ExecTier::Fast))
            .run(&m, "main")
            .unwrap_err();
        assert_eq!(format!("{ea}"), format!("{eb}"));

        // Fuel exhaustion reports the same limit.
        let spin = {
            let mut m = Module::new();
            let f = m.declare_function("main", vec![], Type::Void);
            let mut b = FunctionBuilder::new(&mut m, f);
            let e = b.entry_block();
            let s = b.new_block("s");
            b.switch_to(e);
            b.br(s);
            b.switch_to(s);
            b.br(s);
            b.finish();
            m
        };
        let opts = VmOptions {
            max_steps: 100,
            ..VmOptions::default()
        };
        let ea = Vm::new(opts.clone().with_tier(ExecTier::Interp))
            .run(&spin, "main")
            .unwrap_err();
        let eb = Vm::new(opts.with_tier(ExecTier::Fast))
            .run(&spin, "main")
            .unwrap_err();
        assert_eq!(format!("{ea}"), format!("{eb}"));
    }

    #[test]
    fn tiers_agree_on_abort_and_restart() {
        // Run to a crash, reboot each tier on its own medium, and compare
        // the recovery run too.
        let m = kitchen_sink();
        let a = run_tier(&m, VmOptions::default().stop_at(1), ExecTier::Interp);
        let b = run_tier(&m, VmOptions::default().stop_at(1), ExecTier::Fast);
        let ma = a.machine.into_media();
        let mb = b.machine.into_media();
        let ra = run_tier(&m, VmOptions::default().with_media(ma), ExecTier::Interp);
        let rb = run_tier(&m, VmOptions::default().with_media(mb), ExecTier::Fast);
        assert_eq!(ra.output, rb.output);
        assert_eq!(ra.trace, rb.trace);
        assert_eq!(ra.machine.crash_image(), rb.machine.crash_image());
    }
}
