//! VM configuration.

use pmem_sim::{CostModel, PmMedia};

/// Configuration for a [`crate::Vm`] run.
#[derive(Debug, Clone)]
pub struct VmOptions {
    /// Cycle-cost model for the simulated machine.
    pub cost: CostModel,
    /// Whether to record a [`pmtrace::Trace`] (bug finding needs it; pure
    /// performance runs turn it off).
    pub trace: bool,
    /// Abort execution after this many executed instructions (runaway
    /// guard).
    pub max_steps: u64,
    /// Boot against an existing persistent medium (crash-recovery runs).
    pub media: Option<PmMedia>,
    /// Stop execution at the n-th (1-based) `crashpoint` instruction,
    /// simulating a crash there. `None` runs to completion.
    pub stop_at_crash_point: Option<u64>,
    /// If set, spontaneously evict the stored-to line after every k-th PM
    /// store — models cache pressure (used by do-no-harm property tests).
    pub evict_period: Option<u64>,
}

impl Default for VmOptions {
    fn default() -> Self {
        VmOptions {
            cost: CostModel::default(),
            trace: true,
            max_steps: 200_000_000,
            media: None,
            stop_at_crash_point: None,
            evict_period: None,
        }
    }
}

impl VmOptions {
    /// Options tuned for benchmarking: no trace collection.
    pub fn bench() -> Self {
        VmOptions {
            trace: false,
            ..VmOptions::default()
        }
    }

    /// Replaces the persistent medium (builder-style).
    pub fn with_media(mut self, media: PmMedia) -> Self {
        self.media = Some(media);
        self
    }

    /// Sets the crash-point stop (builder-style).
    pub fn stop_at(mut self, nth_crash_point: u64) -> Self {
        self.stop_at_crash_point = Some(nth_crash_point);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        let o = VmOptions::bench();
        assert!(!o.trace);
        let o = VmOptions::default().stop_at(2);
        assert_eq!(o.stop_at_crash_point, Some(2));
        let o = VmOptions::default().with_media(PmMedia::new());
        assert!(o.media.is_some());
    }
}
