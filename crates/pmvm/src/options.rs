//! VM configuration.

use pmem_sim::{CostModel, PmMedia};

/// Which execution engine runs the program.
///
/// Both tiers implement identical semantics — same traces, same machine
/// state, same errors, same observability counters — and the differential
/// tier gate (`tests/tier_differential.rs`) holds them byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecTier {
    /// The reference interpreter: walks the pmir arenas directly. Slower,
    /// but the semantics baseline — keep it for debugging decoder issues
    /// and for bringing up new opcodes before teaching the fast tier.
    Interp,
    /// Pre-decoded direct-threaded dispatch: the module is lowered to a
    /// flat, register-indexed op array ([`crate::decode::DecodedModule`])
    /// once per run, then executed with no per-step name lookups and no
    /// per-event allocation on the untraced path.
    #[default]
    Fast,
}

impl ExecTier {
    /// Parses the CLI spelling (`interp` | `fast`).
    pub fn parse(s: &str) -> Option<ExecTier> {
        match s {
            "interp" => Some(ExecTier::Interp),
            "fast" => Some(ExecTier::Fast),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ExecTier::Interp => "interp",
            ExecTier::Fast => "fast",
        }
    }
}

/// Configuration for a [`crate::Vm`] run.
#[derive(Debug, Clone)]
pub struct VmOptions {
    /// Cycle-cost model for the simulated machine.
    pub cost: CostModel,
    /// Whether to record a [`pmtrace::Trace`] (bug finding needs it; pure
    /// performance runs turn it off).
    pub trace: bool,
    /// Abort execution after this many executed instructions (runaway
    /// guard).
    pub max_steps: u64,
    /// Boot against an existing persistent medium (crash-recovery runs).
    pub media: Option<PmMedia>,
    /// Stop execution at the n-th `crashpoint` instruction, simulating a
    /// crash there. Crash points are numbered **from 1**: `Some(1)` stops
    /// at the first `crashpoint` executed. `Some(0)` is rejected with
    /// [`crate::VmError::BadOptions`] — it can never match and used to
    /// silently behave like "never crash". `None` runs to completion.
    pub stop_at_crash_point: Option<u64>,
    /// Stop execution right after the trace event with this sequence
    /// number has been emitted (the instruction that produced it completes
    /// first). Lets crash-state exploration re-run a program to an exact
    /// trace position and inspect the machine there. Requires `trace`.
    pub stop_at_event: Option<u64>,
    /// Capture the bytes of every PM write into a [`pmtrace::DataLog`]
    /// (returned in [`crate::RunResult::pm_data`]), keyed by the store
    /// event's sequence number. Requires `trace`; used by crash-state
    /// exploration to replay durable contents without re-running the VM.
    pub capture_pm_data: bool,
    /// If set, spontaneously evict the stored-to line after every k-th PM
    /// store — models cache pressure (used by do-no-harm property tests).
    pub evict_period: Option<u64>,
    /// Wall-clock watchdog: abort with [`crate::VmError::Watchdog`] if the
    /// run has not finished within this many milliseconds. Fuel
    /// (`max_steps`) bounds *progress*; the watchdog bounds *time*, so a
    /// run that stops making progress (a diverging `recover()` oracle)
    /// cannot hang its worker. Validated up front: requires fuel > 0 and a
    /// non-zero budget.
    pub watchdog_ms: Option<u64>,
    /// Deterministic fault plan ([`pmfault::FaultPlan`]) armed for this run:
    /// sim-level faults are forwarded to the machine, VM-level faults
    /// (fuel tightening, stuck loops) are applied by the interpreter.
    /// `None` (production) costs one branch per step.
    pub fault: Option<pmfault::FaultPlan>,
    /// Observability handle: when attached to a [`pmobs::Registry`], the VM
    /// records a `vm.run` span and `vm.*` counters (instructions retired,
    /// PM stores/flushes/fences, cycles, remaining fuel). The disabled
    /// default costs a single branch per run.
    pub obs: pmobs::Obs,
    /// Execution engine. [`ExecTier::Fast`] by default; [`ExecTier::Interp`]
    /// is the reference interpreter.
    pub tier: ExecTier,
}

impl Default for VmOptions {
    fn default() -> Self {
        VmOptions {
            cost: CostModel::default(),
            trace: true,
            max_steps: 200_000_000,
            media: None,
            stop_at_crash_point: None,
            stop_at_event: None,
            capture_pm_data: false,
            evict_period: None,
            watchdog_ms: None,
            fault: None,
            obs: pmobs::Obs::default(),
            tier: ExecTier::default(),
        }
    }
}

impl VmOptions {
    /// Options tuned for benchmarking: no trace collection.
    pub fn bench() -> Self {
        VmOptions {
            trace: false,
            ..VmOptions::default()
        }
    }

    /// Replaces the persistent medium (builder-style).
    pub fn with_media(mut self, media: PmMedia) -> Self {
        self.media = Some(media);
        self
    }

    /// Sets the crash-point stop (builder-style). 1-based: `stop_at(1)`
    /// crashes at the first `crashpoint`.
    pub fn stop_at(mut self, nth_crash_point: u64) -> Self {
        self.stop_at_crash_point = Some(nth_crash_point);
        self
    }

    /// Stops right after trace event `seq` (builder-style).
    pub fn stop_at_event(mut self, seq: u64) -> Self {
        self.stop_at_event = Some(seq);
        self
    }

    /// Enables PM write-data capture (builder-style).
    pub fn capture_pm_data(mut self) -> Self {
        self.capture_pm_data = true;
        self
    }

    /// Arms the wall-clock watchdog (builder-style).
    pub fn watchdog(mut self, ms: u64) -> Self {
        self.watchdog_ms = Some(ms);
        self
    }

    /// Arms a fault plan (builder-style).
    pub fn with_fault(mut self, plan: pmfault::FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Attaches an observability handle (builder-style).
    pub fn with_obs(mut self, obs: pmobs::Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Selects the execution tier (builder-style).
    pub fn with_tier(mut self, tier: ExecTier) -> Self {
        self.tier = tier;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        let o = VmOptions::bench();
        assert!(!o.trace);
        let o = VmOptions::default().stop_at(2);
        assert_eq!(o.stop_at_crash_point, Some(2));
        let o = VmOptions::default().with_media(PmMedia::new());
        assert!(o.media.is_some());
        let o = VmOptions::default().stop_at_event(7).capture_pm_data();
        assert_eq!(o.stop_at_event, Some(7));
        assert!(o.capture_pm_data);
        let o = VmOptions::default().with_tier(ExecTier::Interp);
        assert_eq!(o.tier, ExecTier::Interp);
    }

    #[test]
    fn tier_parses_and_defaults_to_fast() {
        assert_eq!(ExecTier::default(), ExecTier::Fast);
        assert_eq!(ExecTier::parse("interp"), Some(ExecTier::Interp));
        assert_eq!(ExecTier::parse("fast"), Some(ExecTier::Fast));
        assert_eq!(ExecTier::parse("turbo"), None);
        assert_eq!(ExecTier::Interp.as_str(), "interp");
        assert_eq!(ExecTier::Fast.as_str(), "fast");
    }
}
