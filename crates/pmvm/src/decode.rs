//! Pre-decoding: lowers a [`pmir::Module`] into flat, register-indexed op
//! arrays for the fast execution tier (the crate-private `fastvm` module,
//! selected by [`crate::ExecTier::Fast`]).
//!
//! The reference interpreter walks the pmir arenas on every step: block
//! lookup, instruction lookup, operand `match`, and a `HashMap` probe per
//! `global_addr`. [`DecodedModule`] pays all of that exactly once per run:
//!
//! * every function becomes one contiguous `Vec<DecOp>` indexed by a
//!   program counter, blocks laid out in id order with branch targets
//!   resolved to pc indices;
//! * operands are pre-resolved to [`Src::Slot`] (a register index into the
//!   frame's value array) or [`Src::Const`] — `Operand::Null` folds to
//!   `Const(0)`, exactly the interpreter's evaluation;
//! * callees are table offsets into [`DecodedModule::funcs`], globals are
//!   offsets into a dense address table, flush/fence kinds are pre-split
//!   into their simulator and trace spellings;
//! * everything the hot loop does **not** need — instruction ids and source
//!   locations, used only when emitting trace events — lives in a parallel
//!   cold array ([`DecodedFunc::meta`]) so the dispatch path never touches
//!   it untraced.
//!
//! Decoding is semantics-free: each `DecOp` corresponds 1:1 to a pmir
//! instruction, and the differential tier gate holds the decoded execution
//! byte-identical to the interpreter.

use pmir::{BinOp, CmpPred, FuncId, Module, Op, Operand, SrcLoc};

/// Sentinel for "this op produces no result value".
pub const NO_DST: u32 = u32::MAX;

/// A pre-resolved operand.
#[derive(Debug, Clone, Copy)]
pub enum Src {
    /// Read frame value slot `n`.
    Slot(u32),
    /// An immediate (`Operand::Null` decodes to `Const(0)`).
    Const(i64),
}

impl Src {
    fn of(op: Operand) -> Src {
        match op {
            Operand::Value(v) => Src::Slot(v.0),
            Operand::Const(c) => Src::Const(c),
            Operand::Null => Src::Const(0),
        }
    }
}

/// One decoded instruction. Fields mirror [`pmir::Op`] with all lookups
/// pre-resolved; `dst` is the result slot or [`NO_DST`].
#[derive(Debug, Clone)]
pub enum DecOp {
    Bin {
        op: BinOp,
        a: Src,
        b: Src,
        dst: u32,
    },
    Cmp {
        pred: CmpPred,
        a: Src,
        b: Src,
        dst: u32,
    },
    Alloca {
        size: u64,
        dst: u32,
    },
    HeapAlloc {
        size: Src,
        dst: u32,
    },
    HeapFree {
        ptr: Src,
    },
    PmemMap {
        size: Src,
        pool_hint: u64,
        dst: u32,
    },
    Gep {
        base: Src,
        offset: Src,
        dst: u32,
    },
    Load {
        width: u8,
        addr: Src,
        dst: u32,
    },
    Store {
        width: u8,
        addr: Src,
        value: Src,
    },
    Memcpy {
        dst_addr: Src,
        src: Src,
        len: Src,
    },
    Memset {
        dst_addr: Src,
        val: Src,
        len: Src,
    },
    Flush {
        sim: pmem_sim::FlushKind,
        trace: pmtrace::FlushKind,
        addr: Src,
    },
    Fence {
        sim: pmem_sim::FenceKind,
        trace: pmtrace::FenceKind,
    },
    Call {
        callee: u32,
        args: Box<[Src]>,
        dst: u32,
    },
    Ret {
        value: Option<Src>,
    },
    Br {
        target: u32,
    },
    CondBr {
        cond: Src,
        then_pc: u32,
        else_pc: u32,
    },
    GlobalAddr {
        global: u32,
        dst: u32,
    },
    Print {
        value: Src,
    },
    CrashPoint,
    Abort {
        code: i64,
    },
    /// A block ended without a terminator. The interpreter panics on such
    /// (malformed) IR when control falls off the block; in a flat op array
    /// control would silently run into the next block instead, so decoding
    /// plants an explicit trap to keep the tiers behaviorally identical.
    TrapFallthrough,
}

/// Cold per-op metadata, only touched when emitting trace events.
#[derive(Debug, Clone, Copy)]
pub struct OpMeta {
    /// The originating instruction id (`pmir::InstId.0`).
    pub inst: u32,
    /// Its source location, if any.
    pub loc: Option<SrcLoc>,
}

/// One decoded function.
#[derive(Debug, Clone)]
pub struct DecodedFunc {
    /// Function name (cold: cloned into trace events).
    pub name: String,
    /// Total value slots a frame needs.
    pub n_values: u32,
    /// Leading slots that are parameters.
    pub n_params: u32,
    /// pc of the entry block's first op.
    pub entry_pc: u32,
    /// The flat op array, blocks laid out in id order.
    pub ops: Vec<DecOp>,
    /// Parallel cold array: `meta[pc]` describes `ops[pc]`.
    pub meta: Vec<OpMeta>,
}

/// A fully decoded module. Indexed by `FuncId.0` / `GlobalId.0`.
#[derive(Debug, Clone)]
pub struct DecodedModule {
    pub funcs: Vec<DecodedFunc>,
}

impl DecodedModule {
    /// Decodes every function of `module`.
    pub fn decode(module: &Module) -> DecodedModule {
        let funcs = module
            .functions()
            .map(|(_, f)| decode_function(f))
            .collect();
        DecodedModule { funcs }
    }
}

fn decode_function(f: &pmir::Function) -> DecodedFunc {
    // Pass 1: lay blocks out in id order and record each block's start pc.
    // A block missing a terminator gets one extra trap slot.
    let mut starts = Vec::with_capacity(f.block_count());
    let mut pc = 0u32;
    for b in f.block_ids() {
        starts.push(pc);
        let insts = &f.block(b).insts;
        pc += insts.len() as u32;
        if !block_terminated(f, b) {
            pc += 1;
        }
    }
    let total = pc as usize;

    // Pass 2: lower each instruction with targets resolved to pcs.
    let mut ops = Vec::with_capacity(total);
    let mut meta = Vec::with_capacity(total);
    for b in f.block_ids() {
        for &inst_id in &f.block(b).insts {
            let inst = f.inst(inst_id);
            let dst = inst.result.map_or(NO_DST, |r| r.0);
            ops.push(lower(&inst.op, dst, &starts));
            meta.push(OpMeta {
                inst: inst_id.0,
                loc: inst.loc,
            });
        }
        if !block_terminated(f, b) {
            ops.push(DecOp::TrapFallthrough);
            meta.push(OpMeta {
                inst: u32::MAX,
                loc: None,
            });
        }
    }
    debug_assert_eq!(ops.len(), total);

    DecodedFunc {
        name: f.name().to_string(),
        n_values: f.value_count() as u32,
        n_params: f.params().len() as u32,
        entry_pc: starts[f.entry().0 as usize],
        ops,
        meta,
    }
}

fn block_terminated(f: &pmir::Function, b: pmir::BlockId) -> bool {
    f.block(b)
        .insts
        .last()
        .is_some_and(|&i| f.inst(i).op.is_terminator())
}

fn lower(op: &Op, dst: u32, starts: &[u32]) -> DecOp {
    match op {
        Op::Bin { op, a, b } => DecOp::Bin {
            op: *op,
            a: Src::of(*a),
            b: Src::of(*b),
            dst,
        },
        Op::Cmp { pred, a, b } => DecOp::Cmp {
            pred: *pred,
            a: Src::of(*a),
            b: Src::of(*b),
            dst,
        },
        Op::Alloca { size } => DecOp::Alloca { size: *size, dst },
        Op::HeapAlloc { size } => DecOp::HeapAlloc {
            size: Src::of(*size),
            dst,
        },
        Op::HeapFree { ptr } => DecOp::HeapFree { ptr: Src::of(*ptr) },
        Op::PmemMap { size, pool_hint } => DecOp::PmemMap {
            size: Src::of(*size),
            pool_hint: *pool_hint,
            dst,
        },
        Op::Gep { base, offset } => DecOp::Gep {
            base: Src::of(*base),
            offset: Src::of(*offset),
            dst,
        },
        Op::Load { ty, addr } => DecOp::Load {
            width: ty.size() as u8,
            addr: Src::of(*addr),
            dst,
        },
        Op::Store { ty, addr, value } => DecOp::Store {
            width: ty.size() as u8,
            addr: Src::of(*addr),
            value: Src::of(*value),
        },
        Op::Memcpy { dst: d, src, len } => DecOp::Memcpy {
            dst_addr: Src::of(*d),
            src: Src::of(*src),
            len: Src::of(*len),
        },
        Op::Memset { dst: d, val, len } => DecOp::Memset {
            dst_addr: Src::of(*d),
            val: Src::of(*val),
            len: Src::of(*len),
        },
        Op::Flush { kind, addr } => DecOp::Flush {
            sim: crate::interp::to_sim_flush(*kind),
            trace: crate::interp::to_trace_flush(*kind),
            addr: Src::of(*addr),
        },
        Op::Fence { kind } => DecOp::Fence {
            sim: crate::interp::to_sim_fence(*kind),
            trace: crate::interp::to_trace_fence(*kind),
        },
        Op::Call { callee, args } => DecOp::Call {
            callee: fid(*callee),
            args: args.iter().map(|&a| Src::of(a)).collect(),
            dst,
        },
        Op::Ret { value } => DecOp::Ret {
            value: value.map(Src::of),
        },
        Op::Br { target } => DecOp::Br {
            target: starts[target.0 as usize],
        },
        Op::CondBr {
            cond,
            then_bb,
            else_bb,
        } => DecOp::CondBr {
            cond: Src::of(*cond),
            then_pc: starts[then_bb.0 as usize],
            else_pc: starts[else_bb.0 as usize],
        },
        Op::GlobalAddr { global } => DecOp::GlobalAddr {
            global: global.0,
            dst,
        },
        Op::Print { value } => DecOp::Print {
            value: Src::of(*value),
        },
        Op::CrashPoint => DecOp::CrashPoint,
        Op::Abort { code } => DecOp::Abort { code: *code },
    }
}

fn fid(id: FuncId) -> u32 {
    id.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmir::{FunctionBuilder, Type};

    #[test]
    fn lays_blocks_out_flat_with_pc_targets() {
        let mut m = Module::new();
        let f = m.declare_function("main", vec![], Type::Void);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.entry_block();
        let t = b.new_block("t");
        let x = b.new_block("x");
        b.switch_to(e);
        let c = b.cmp(pmir::CmpPred::Eq, 1i64, 1i64);
        b.cond_br(c, t, x);
        b.switch_to(t);
        b.br(x);
        b.switch_to(x);
        b.ret(None);
        b.finish();

        let d = DecodedModule::decode(&m);
        let df = &d.funcs[0];
        assert_eq!(df.name, "main");
        assert_eq!(df.entry_pc, 0);
        assert_eq!(df.ops.len(), 4, "cmp, cond_br, br, ret");
        assert_eq!(df.meta.len(), df.ops.len());
        match &df.ops[1] {
            DecOp::CondBr {
                then_pc, else_pc, ..
            } => {
                assert_eq!(*then_pc, 2, "block t starts after entry's 2 ops");
                assert_eq!(*else_pc, 3, "block x starts after t's 1 op");
            }
            other => panic!("expected CondBr, got {other:?}"),
        }
        match &df.ops[2] {
            DecOp::Br { target } => assert_eq!(*target, 3),
            other => panic!("expected Br, got {other:?}"),
        }
    }

    #[test]
    fn operands_resolve_to_slots_and_consts() {
        let mut m = Module::new();
        let f = m.declare_function("main", vec![], Type::Void);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.entry_block();
        b.switch_to(e);
        let v = b.bin(pmir::BinOp::Add, 1i64, 2i64);
        b.store(Type::int(8), Operand::Null, Operand::Value(v));
        b.ret(None);
        b.finish();

        let d = DecodedModule::decode(&m);
        let df = &d.funcs[0];
        match &df.ops[0] {
            DecOp::Bin { a, b, dst, .. } => {
                assert!(matches!(a, Src::Const(1)));
                assert!(matches!(b, Src::Const(2)));
                assert_ne!(*dst, NO_DST);
            }
            other => panic!("expected Bin, got {other:?}"),
        }
        match &df.ops[1] {
            DecOp::Store { addr, value, .. } => {
                assert!(matches!(addr, Src::Const(0)), "Null folds to Const(0)");
                assert!(matches!(value, Src::Slot(_)));
            }
            other => panic!("expected Store, got {other:?}"),
        }
    }

    #[test]
    fn unterminated_block_gets_a_trap() {
        // Built by hand: FunctionBuilder::finish rejects unterminated
        // blocks, but decode must stay total on malformed IR.
        let mut m = Module::new();
        let f = m.declare_function("main", vec![], Type::Void);
        let fun = m.function_mut(f);
        let entry = fun.entry();
        let inst = fun.alloc_inst(pmir::Inst {
            op: Op::Print {
                value: Operand::Const(1),
            },
            loc: None,
            result: None,
        });
        fun.block_mut(entry).insts.push(inst);
        let d = DecodedModule::decode(&m);
        assert!(matches!(
            d.funcs[0].ops.last(),
            Some(DecOp::TrapFallthrough)
        ));
    }
}
