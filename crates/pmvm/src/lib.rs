//! `pmvm` — the interpreter that executes `pmir` programs on the `pmem-sim`
//! machine.
//!
//! The VM plays the role of the instrumented native execution in the
//! original Hippocrates toolchain: it runs the program, routes every memory
//! operation through the simulated cache/PM model, and (optionally) emits
//! the pmemcheck-style [`pmtrace::Trace`] the repair pipeline starts from.
//!
//! # Example
//!
//! ```
//! use pmir::{Module, FunctionBuilder, Type, Operand, FlushKind, FenceKind};
//! use pmvm::{Vm, VmOptions};
//!
//! let mut m = Module::new();
//! let f = m.declare_function("main", vec![], Type::Void);
//! let mut b = FunctionBuilder::new(&mut m, f);
//! let e = b.entry_block();
//! b.switch_to(e);
//! let pool = b.pmem_map(4096i64, 0);
//! b.store(Type::int(8), pool, 41i64);
//! b.flush(FlushKind::Clwb, pool);
//! b.fence(FenceKind::Sfence);
//! let v = b.load(Type::int(8), pool);
//! b.print(v);
//! b.ret(None);
//! b.finish();
//!
//! let result = Vm::new(VmOptions::default()).run(&m, "main").unwrap();
//! assert_eq!(result.output, vec![41]);
//! assert_eq!(result.trace.as_ref().unwrap().count(
//!     |k| matches!(k, pmtrace::EventKind::Store { .. })), 1);
//! ```

pub mod decode;
mod fastvm;
pub mod interp;
pub mod options;
pub mod result;

pub use decode::DecodedModule;
pub use interp::Vm;
pub use options::{ExecTier, VmOptions};
pub use result::{Ended, RunResult, VmError};
