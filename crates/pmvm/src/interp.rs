//! The reference interpreter loop (the `ExecTier::Interp` tier), plus the
//! shared [`Vm`] entry point that validates options and dispatches to the
//! selected tier.

use crate::options::{ExecTier, VmOptions};
use crate::result::{Ended, RunResult, VmError};
use pmem_sim::{layout, Machine};
use pmir::{BlockId, FenceKind, FlushKind, FuncId, GlobalId, InstId, Module, Op, Operand};
use pmtrace::{DataLog, Event, EventKind, IrRef, Trace, TraceLoc};
use std::collections::HashMap;

/// The virtual machine. Cheap to construct; one [`Vm::run`] call executes a
/// program from `main` (or any other zero-argument entry point) to
/// completion.
#[derive(Debug, Clone)]
pub struct Vm {
    opts: VmOptions,
}

impl Vm {
    /// Creates a VM with the given options.
    pub fn new(opts: VmOptions) -> Self {
        Vm { opts }
    }

    /// Runs `entry` (a zero-parameter function) in `module`.
    ///
    /// Takes `&mut self` so a boot medium in the options is *moved* into
    /// the machine, not copied — recovery boots are the explorer's hot
    /// path, and pool buffers are hundreds of kilobytes. A second `run` on
    /// the same `Vm` therefore boots factory-fresh; every call site
    /// constructs `Vm::new(opts).run(..)` per run.
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] if the program traps (memory fault, division by
    /// zero, step limit) or the entry point is unsuitable.
    pub fn run(&mut self, module: &Module, entry: &str) -> Result<RunResult, VmError> {
        self.run_prepared(module, entry, None)
    }

    /// [`Vm::run`], reusing a pre-decoded program. `decoded` must be
    /// `DecodedModule::decode(module)` for this exact `module` — callers
    /// that boot the same program many times (the exploration oracle) pay
    /// the decode once. Ignored by the reference tier. `None` decodes on
    /// demand, which is what [`Vm::run`] does.
    pub fn run_prepared(
        &mut self,
        module: &Module,
        entry: &str,
        decoded: Option<&crate::DecodedModule>,
    ) -> Result<RunResult, VmError> {
        let _span = self.opts.obs.span("vm.run");
        if self.opts.stop_at_crash_point == Some(0) {
            return Err(VmError::BadOptions {
                reason: "stop_at_crash_point is 1-based; 0 never matches any crash point"
                    .to_string(),
            });
        }
        if (self.opts.capture_pm_data || self.opts.stop_at_event.is_some()) && !self.opts.trace {
            return Err(VmError::BadOptions {
                reason: "capture_pm_data / stop_at_event require tracing".to_string(),
            });
        }
        if self.opts.max_steps == 0 {
            let reason = if self.opts.watchdog_ms.is_some() {
                "watchdog requires fuel > 0 (max_steps = 0 can never run)"
            } else {
                "max_steps must be > 0"
            };
            return Err(VmError::BadOptions {
                reason: reason.to_string(),
            });
        }
        if self.opts.watchdog_ms == Some(0) {
            return Err(VmError::BadOptions {
                reason: "watchdog_ms must be > 0".to_string(),
            });
        }
        let stuck_planned = self
            .opts
            .fault
            .as_ref()
            .is_some_and(|p| p.targets(pmfault::FaultSite::VmDiverge));
        if stuck_planned && self.opts.watchdog_ms.is_none() {
            return Err(VmError::BadOptions {
                reason: "a stuck-loop fault plan requires a wall-clock watchdog (watchdog_ms)"
                    .to_string(),
            });
        }
        let entry_id = module
            .function_by_name(entry)
            .ok_or_else(|| VmError::NoSuchFunction {
                name: entry.to_string(),
            })?;
        if !module.function(entry_id).params().is_empty() {
            return Err(VmError::EntryHasParams {
                name: entry.to_string(),
            });
        }
        let mut machine = match self.opts.media.take() {
            Some(media) => Machine::with_media(media, self.opts.cost),
            None => Machine::new(self.opts.cost),
        };
        // Arm fault injection: the machine gets its own injector clone for
        // the sim-level sites (store/flush/media-read); the interpreter
        // keeps one for the VM-level sites. Counters are per-site, so the
        // split never double-counts.
        let mut injector = self.opts.fault.clone().map(pmfault::Injector::new);
        let mut fuel = self.opts.max_steps;
        if let Some(inj) = injector.as_mut() {
            machine.set_injector(Some(inj.clone()));
            if let Some(pmfault::FaultKind::FuelExhaustion { max_steps }) =
                inj.fire(pmfault::FaultSite::VmFuel)
            {
                fuel = fuel.min(max_steps.max(1));
            }
        }
        let deadline = self
            .opts
            .watchdog_ms
            .map(|ms| std::time::Instant::now() + std::time::Duration::from_millis(ms));
        if self.opts.tier == ExecTier::Fast {
            return crate::fastvm::run(
                module, entry_id, &self.opts, machine, injector, fuel, deadline, decoded,
            );
        }
        let mut exec = Exec {
            module,
            machine,
            frames: vec![],
            globals: HashMap::new(),
            output: vec![],
            trace: self.opts.trace.then(Trace::new),
            pm_data: self.opts.capture_pm_data.then(DataLog::new),
            steps: 0,
            seq: 0,
            crash_points: 0,
            pm_stores_seen: 0,
            fuel,
            deadline,
            injector,
            opts: &self.opts,
        };
        exec.install_globals()?;
        exec.push_call(entry_id);
        let (ended, return_value) = exec.run_loop()?;
        if ended == Ended::Returned {
            exec.emit(EventKind::ProgramEnd, None);
        }
        record_run_obs(
            &self.opts,
            exec.steps,
            exec.machine.stats(),
            exec.fuel,
            &exec.injector,
        );
        Ok(RunResult {
            output: exec.output,
            return_value,
            ended,
            stats: *exec.machine.stats(),
            trace: exec.trace,
            pm_data: exec.pm_data,
            machine: exec.machine,
            steps: exec.steps,
        })
    }
}

/// One activation record.
struct Frame {
    func: FuncId,
    vals: Vec<Option<i64>>,
    block: BlockId,
    idx: usize,
}

struct Exec<'m, 'o> {
    module: &'m Module,
    machine: Machine,
    frames: Vec<Frame>,
    globals: HashMap<GlobalId, u64>,
    output: Vec<i64>,
    trace: Option<Trace>,
    pm_data: Option<DataLog>,
    steps: u64,
    seq: u64,
    crash_points: u64,
    pm_stores_seen: u64,
    fuel: u64,
    deadline: Option<std::time::Instant>,
    injector: Option<pmfault::Injector>,
    opts: &'o VmOptions,
}

impl Exec<'_, '_> {
    fn install_globals(&mut self) -> Result<(), VmError> {
        for (id, g) in self.module.globals() {
            let addr = self.machine.add_global(g.size, &g.init)?;
            self.globals.insert(id, addr);
        }
        Ok(())
    }

    fn push_call(&mut self, func: FuncId) {
        let f = self.module.function(func);
        let mut vals = vec![None; f.value_count()];
        // Argument values are filled by the caller before push for non-entry
        // frames; the entry has none.
        for slot in vals.iter_mut().take(f.params().len()) {
            *slot = Some(0);
        }
        self.machine.push_frame();
        self.frames.push(Frame {
            func,
            vals,
            block: f.entry(),
            idx: 0,
        });
    }

    fn cur_func_name(&self) -> String {
        self.frames
            .last()
            .map(|f| self.module.function(f.func).name().to_string())
            .unwrap_or_default()
    }

    fn eval(&self, op: Operand) -> Result<i64, VmError> {
        match op {
            Operand::Const(c) => Ok(c),
            Operand::Null => Ok(0),
            Operand::Value(v) => {
                let frame = self.frames.last().expect("active frame");
                frame.vals[v.0 as usize].ok_or_else(|| VmError::UndefinedValue {
                    function: self.cur_func_name(),
                })
            }
        }
    }

    fn set_result(&mut self, inst: InstId, value: i64) {
        let frame = self.frames.last_mut().expect("active frame");
        let f = self.module.function(frame.func);
        if let Some(r) = f.inst(inst).result {
            frame.vals[r.0 as usize] = Some(value);
        }
    }

    fn trace_loc(&self, loc: Option<pmir::SrcLoc>) -> Option<TraceLoc> {
        loc.map(|l| TraceLoc {
            file: self.module.file_name(l.file).to_string(),
            line: l.line,
            col: l.col,
        })
    }

    /// Captures the current call stack, innermost first.
    fn capture_stack(&self) -> Vec<pmtrace::Frame> {
        let mut out = Vec::with_capacity(self.frames.len());
        for (depth, fr) in self.frames.iter().enumerate().rev() {
            let f = self.module.function(fr.func);
            let innermost = depth == self.frames.len() - 1;
            let (call_inst, loc) = if innermost {
                (None, None)
            } else {
                // This frame is suspended at its call instruction.
                let inst = f.block(fr.block).insts[fr.idx];
                (Some(inst.0), self.trace_loc(f.inst(inst).loc))
            };
            out.push(pmtrace::Frame {
                function: f.name().to_string(),
                call_inst,
                loc,
            });
        }
        out
    }

    fn emit(&mut self, kind: EventKind, at: Option<(InstId, Option<pmir::SrcLoc>)>) -> Option<u64> {
        self.trace.as_ref()?;
        let stack = self.capture_stack();
        let (at, loc) = match at {
            Some((inst, loc)) => (
                Some(IrRef {
                    function: self.cur_func_name(),
                    inst: inst.0,
                }),
                self.trace_loc(loc),
            ),
            None => (None, None),
        };
        let seq = self.seq;
        self.seq += 1;
        self.trace.as_mut().expect("checked").push(Event {
            seq,
            kind,
            at,
            loc,
            stack,
        });
        Some(seq)
    }

    /// Records the post-store cache bytes of a PM write into the data log,
    /// keyed by the store event's sequence number.
    fn capture_pm_write(&mut self, seq: Option<u64>, addr: u64, len: u64) {
        let (Some(seq), Some(_)) = (seq, self.pm_data.as_ref()) else {
            return;
        };
        let bytes = self.machine.peek(addr, len).unwrap_or_default();
        self.pm_data
            .as_mut()
            .expect("checked")
            .push(seq, addr, bytes);
    }

    fn after_pm_store(&mut self, addr: u64) {
        self.pm_stores_seen += 1;
        if let Some(k) = self.opts.evict_period {
            if k > 0 && self.pm_stores_seen.is_multiple_of(k) {
                self.machine.evict(addr);
            }
        }
    }

    fn check_watchdog(&self) -> Result<(), VmError> {
        if let Some(d) = self.deadline {
            if std::time::Instant::now() >= d {
                return Err(VmError::Watchdog {
                    limit_ms: self.opts.watchdog_ms.unwrap_or(0),
                });
            }
        }
        Ok(())
    }

    /// An injected divergence: spin (politely) until the watchdog fires.
    /// `Vm::run` validated that a watchdog is armed whenever a stuck-loop
    /// fault is planned, so this always terminates.
    fn stuck_loop(&self) -> Result<(Ended, Option<i64>), VmError> {
        loop {
            self.check_watchdog()?;
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
    }

    fn run_loop(&mut self) -> Result<(Ended, Option<i64>), VmError> {
        let mut last_ret: Option<i64> = None;
        while let Some(frame) = self.frames.last() {
            // `stop_at_event`: the previous iteration's instruction emitted
            // event `n` (and finished executing); crash here, before the
            // next instruction runs.
            if let Some(n) = self.opts.stop_at_event {
                if self.seq > n {
                    return Ok((Ended::AtEvent(n), None));
                }
            }
            self.steps += 1;
            if self.steps > self.fuel {
                return Err(VmError::FuelExhausted { limit: self.fuel });
            }
            // The wall-clock watchdog is checked on a coarse step stride so
            // the hot loop stays free of syscalls.
            if self.steps & 0x3FF == 0 {
                self.check_watchdog()?;
            }
            if self.injector.is_some() {
                if let Some(pmfault::FaultKind::StuckLoop) = self
                    .injector
                    .as_mut()
                    .and_then(|i| i.fire(pmfault::FaultSite::VmDiverge))
                {
                    // The interpreter stops making progress: only the
                    // wall-clock watchdog (validated present up front) can
                    // end this run.
                    return self.stuck_loop();
                }
            }
            let func_id = frame.func;
            // Copy the module reference out of `self` so instruction borrows
            // are tied to 'm rather than to `self` — the hot loop must not
            // clone ops (call argument vectors would allocate per step).
            let module = self.module;
            let f = module.function(func_id);
            let inst_id = f.block(frame.block).insts[frame.idx];
            let inst = f.inst(inst_id);
            let loc = inst.loc;
            self.machine.charge_inst();

            match &inst.op {
                Op::Bin { op, a, b } => {
                    let (a, b) = (self.eval(*a)?, self.eval(*b)?);
                    let r = op.eval(a, b).ok_or_else(|| VmError::DivisionByZero {
                        function: self.cur_func_name(),
                    })?;
                    self.set_result(inst_id, r);
                    self.advance();
                }
                Op::Cmp { pred, a, b } => {
                    let r = pred.eval(self.eval(*a)?, self.eval(*b)?);
                    self.set_result(inst_id, r);
                    self.advance();
                }
                Op::Alloca { size } => {
                    let addr = self.machine.stack_alloc(*size)?;
                    self.set_result(inst_id, addr as i64);
                    self.advance();
                }
                Op::HeapAlloc { size } => {
                    let size = self.eval(*size)? as u64;
                    let addr = self.machine.heap_alloc(size)?;
                    self.set_result(inst_id, addr as i64);
                    self.advance();
                }
                Op::HeapFree { ptr } => {
                    let addr = self.eval(*ptr)? as u64;
                    self.machine.heap_free(addr)?;
                    self.advance();
                }
                Op::PmemMap { size, pool_hint } => {
                    let pool_hint = *pool_hint;
                    let size = self.eval(*size)? as u64;
                    let base = self.machine.map_pool(pool_hint, size)?;
                    self.set_result(inst_id, base as i64);
                    self.emit(
                        EventKind::RegisterPool {
                            hint: pool_hint,
                            base,
                            size,
                        },
                        Some((inst_id, loc)),
                    );
                    self.advance();
                }
                Op::Gep { base, offset } => {
                    let r = (self.eval(*base)? as u64).wrapping_add(self.eval(*offset)? as u64);
                    self.set_result(inst_id, r as i64);
                    self.advance();
                }
                Op::Load { ty, addr } => {
                    let a = self.eval(*addr)? as u64;
                    let v = self.machine.load_int(a, ty.size() as u8)?;
                    self.set_result(inst_id, v);
                    self.advance();
                }
                Op::Store { ty, addr, value } => {
                    let a = self.eval(*addr)? as u64;
                    let v = self.eval(*value)?;
                    self.machine.store_int(a, ty.size() as u8, v)?;
                    if layout::is_pm_addr(a) {
                        let seq = self.emit(
                            EventKind::Store {
                                addr: a,
                                len: ty.size(),
                            },
                            Some((inst_id, loc)),
                        );
                        self.capture_pm_write(seq, a, ty.size());
                        self.after_pm_store(a);
                    }
                    self.advance();
                }
                Op::Memcpy { dst, src, len } => {
                    let d = self.eval(*dst)? as u64;
                    let s = self.eval(*src)? as u64;
                    let n = self.eval(*len)? as u64;
                    self.machine.memcpy(d, s, n)?;
                    if n > 0 && layout::is_pm_addr(d) {
                        let seq =
                            self.emit(EventKind::Store { addr: d, len: n }, Some((inst_id, loc)));
                        self.capture_pm_write(seq, d, n);
                        self.after_pm_store(d);
                    }
                    self.advance();
                }
                Op::Memset { dst, val, len } => {
                    let d = self.eval(*dst)? as u64;
                    let v = self.eval(*val)? as u8;
                    let n = self.eval(*len)? as u64;
                    self.machine.memset(d, v, n)?;
                    if n > 0 && layout::is_pm_addr(d) {
                        let seq =
                            self.emit(EventKind::Store { addr: d, len: n }, Some((inst_id, loc)));
                        self.capture_pm_write(seq, d, n);
                        self.after_pm_store(d);
                    }
                    self.advance();
                }
                Op::Flush { kind, addr } => {
                    let kind = *kind;
                    let a = self.eval(*addr)? as u64;
                    self.machine.flush(to_sim_flush(kind), a)?;
                    if layout::is_pm_addr(a) {
                        self.emit(
                            EventKind::Flush {
                                kind: to_trace_flush(kind),
                                addr: a,
                            },
                            Some((inst_id, loc)),
                        );
                    }
                    self.advance();
                }
                Op::Fence { kind } => {
                    let kind = *kind;
                    self.machine.fence(to_sim_fence(kind));
                    self.emit(
                        EventKind::Fence {
                            kind: to_trace_fence(kind),
                        },
                        Some((inst_id, loc)),
                    );
                    self.advance();
                }
                Op::Call { callee, args } => {
                    let callee = *callee;
                    let argv: Vec<i64> = args
                        .iter()
                        .map(|&a| self.eval(a))
                        .collect::<Result<_, _>>()?;
                    self.machine.charge_call();
                    self.push_call(callee);
                    let frame = self.frames.last_mut().expect("just pushed");
                    for (i, v) in argv.into_iter().enumerate() {
                        frame.vals[i] = Some(v);
                    }
                }
                Op::Ret { value } => {
                    let v = match value {
                        Some(v) => Some(self.eval(*v)?),
                        None => None,
                    };
                    self.machine.pop_frame();
                    self.frames.pop();
                    last_ret = v;
                    if let Some(caller) = self.frames.last() {
                        let cf = self.module.function(caller.func);
                        let call_inst = cf.block(caller.block).insts[caller.idx];
                        if let Some(v) = v {
                            self.set_result(call_inst, v);
                        }
                        self.advance();
                    }
                }
                Op::Br { target } => {
                    let target = *target;
                    let frame = self.frames.last_mut().expect("active");
                    frame.block = target;
                    frame.idx = 0;
                }
                Op::CondBr {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    let (then_bb, else_bb) = (*then_bb, *else_bb);
                    let c = self.eval(*cond)?;
                    let frame = self.frames.last_mut().expect("active");
                    frame.block = if c != 0 { then_bb } else { else_bb };
                    frame.idx = 0;
                }
                Op::GlobalAddr { global } => {
                    let addr = self.globals[global];
                    self.set_result(inst_id, addr as i64);
                    self.advance();
                }
                Op::Print { value } => {
                    let v = self.eval(*value)?;
                    self.output.push(v);
                    self.advance();
                }
                Op::CrashPoint => {
                    self.crash_points += 1;
                    self.emit(EventKind::CrashPoint, Some((inst_id, loc)));
                    if self.opts.stop_at_crash_point == Some(self.crash_points) {
                        return Ok((Ended::CrashPoint(self.crash_points), None));
                    }
                    self.advance();
                }
                Op::Abort { code } => {
                    return Ok((Ended::Aborted(*code), None));
                }
            }
        }
        Ok((Ended::Returned, last_ret))
    }

    fn advance(&mut self) {
        let frame = self.frames.last_mut().expect("active frame");
        frame.idx += 1;
    }
}

/// Records the per-run `vm.*` observability counters (shared by both
/// execution tiers, so the tiers stay metric-identical).
pub(crate) fn record_run_obs(
    opts: &VmOptions,
    steps: u64,
    stats: &pmem_sim::MachineStats,
    fuel: u64,
    injector: &Option<pmfault::Injector>,
) {
    if !opts.obs.is_enabled() {
        return;
    }
    opts.obs.add("vm.instructions", steps);
    opts.obs.add("vm.pm_stores", stats.pm_stores);
    opts.obs.add("vm.flushes", stats.total_flushes());
    opts.obs.add("vm.fences", stats.fences);
    opts.obs.add("vm.cycles", stats.cycles);
    opts.obs.add("vm.fuel_left", fuel);
    if let Some(inj) = injector {
        opts.obs
            .add("vm.injected_faults", inj.injected().len() as u64);
    }
}

pub(crate) fn to_sim_flush(k: FlushKind) -> pmem_sim::FlushKind {
    match k {
        FlushKind::Clwb => pmem_sim::FlushKind::Clwb,
        FlushKind::ClflushOpt => pmem_sim::FlushKind::ClflushOpt,
        FlushKind::Clflush => pmem_sim::FlushKind::Clflush,
    }
}

pub(crate) fn to_trace_flush(k: FlushKind) -> pmtrace::FlushKind {
    match k {
        FlushKind::Clwb => pmtrace::FlushKind::Clwb,
        FlushKind::ClflushOpt => pmtrace::FlushKind::ClflushOpt,
        FlushKind::Clflush => pmtrace::FlushKind::Clflush,
    }
}

pub(crate) fn to_sim_fence(k: FenceKind) -> pmem_sim::FenceKind {
    match k {
        FenceKind::Sfence => pmem_sim::FenceKind::Sfence,
        FenceKind::Mfence => pmem_sim::FenceKind::Mfence,
    }
}

pub(crate) fn to_trace_fence(k: FenceKind) -> pmtrace::FenceKind {
    match k {
        FenceKind::Sfence => pmtrace::FenceKind::Sfence,
        FenceKind::Mfence => pmtrace::FenceKind::Mfence,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmir::{BinOp, CmpPred, FunctionBuilder, Type};

    fn run(m: &Module) -> RunResult {
        Vm::new(VmOptions::default()).run(m, "main").unwrap()
    }

    /// Builds `main` computing 10 iterations of a counting loop.
    #[test]
    fn loop_and_arithmetic() {
        let mut m = Module::new();
        let f = m.declare_function("main", vec![], Type::int(8));
        let mut b = FunctionBuilder::new(&mut m, f);
        let entry = b.entry_block();
        let header = b.new_block("h");
        let body = b.new_block("b");
        let exit = b.new_block("x");
        b.switch_to(entry);
        let slot = b.alloca(8);
        b.store(Type::int(8), slot, 0i64);
        b.br(header);
        b.switch_to(header);
        let i = b.load(Type::int(8), slot);
        let c = b.cmp(CmpPred::SLt, i, 10i64);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let i2 = b.load(Type::int(8), slot);
        let i3 = b.bin(BinOp::Add, i2, 3i64);
        b.store(Type::int(8), slot, i3);
        b.br(header);
        b.switch_to(exit);
        let r = b.load(Type::int(8), slot);
        b.print(r);
        b.ret(Some(Operand::Value(r)));
        b.finish();

        let res = run(&m);
        assert_eq!(res.output, vec![12]);
        assert_eq!(res.return_value, Some(12));
        assert_eq!(res.ended, Ended::Returned);
    }

    #[test]
    fn calls_pass_args_and_return() {
        let mut m = Module::new();
        let add = m.declare_function("add2", vec![Type::int(8), Type::int(8)], Type::int(8));
        {
            let mut b = FunctionBuilder::new(&mut m, add);
            let e = b.entry_block();
            b.switch_to(e);
            let x = b.arg(0);
            let y = b.arg(1);
            let s = b.bin(BinOp::Add, x, y);
            b.ret(Some(Operand::Value(s)));
            b.finish();
        }
        let f = m.declare_function("main", vec![], Type::Void);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.entry_block();
        b.switch_to(e);
        let r = b
            .call(add, vec![Operand::Const(20), Operand::Const(22)])
            .unwrap();
        b.print(r);
        b.ret(None);
        b.finish();
        assert_eq!(run(&m).output, vec![42]);
    }

    #[test]
    fn recursion_works() {
        // fib(10) = 55 via naive recursion, exercising frame handling.
        let mut m = Module::new();
        let fib = m.declare_function("fib", vec![Type::int(8)], Type::int(8));
        {
            let mut b = FunctionBuilder::new(&mut m, fib);
            let e = b.entry_block();
            let rec = b.new_block("rec");
            let base = b.new_block("base");
            b.switch_to(e);
            let n = b.arg(0);
            let c = b.cmp(CmpPred::SLt, n, 2i64);
            b.cond_br(c, base, rec);
            b.switch_to(base);
            b.ret(Some(Operand::Value(n)));
            b.switch_to(rec);
            let n1 = b.bin(BinOp::Sub, n, 1i64);
            let n2 = b.bin(BinOp::Sub, n, 2i64);
            let a = b.call(fib, vec![Operand::Value(n1)]).unwrap();
            let bb = b.call(fib, vec![Operand::Value(n2)]).unwrap();
            let s = b.bin(BinOp::Add, a, bb);
            b.ret(Some(Operand::Value(s)));
            b.finish();
        }
        let f = m.declare_function("main", vec![], Type::Void);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.entry_block();
        b.switch_to(e);
        let r = b.call(fib, vec![Operand::Const(10)]).unwrap();
        b.print(r);
        b.ret(None);
        b.finish();
        assert_eq!(run(&m).output, vec![55]);
    }

    #[test]
    fn trace_records_pm_ops_with_stacks() {
        let mut m = Module::new();
        let file = m.intern_file("t.pmc");
        let store_fn = m.declare_function("do_store", vec![Type::Ptr], Type::Void);
        {
            let mut b = FunctionBuilder::new(&mut m, store_fn);
            let e = b.entry_block();
            b.switch_to(e);
            b.set_loc(pmir::SrcLoc::line(file, 5));
            let p = b.arg(0);
            b.store(Type::int(8), p, 1i64);
            b.ret(None);
            b.finish();
        }
        let f = m.declare_function("main", vec![], Type::Void);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.entry_block();
        b.switch_to(e);
        b.set_loc(pmir::SrcLoc::line(file, 20));
        let pool = b.pmem_map(4096i64, 0);
        b.call(store_fn, vec![Operand::Value(pool)]);
        b.flush(pmir::FlushKind::Clwb, pool);
        b.fence(FenceKind::Sfence);
        b.ret(None);
        b.finish();

        let res = run(&m);
        let trace = res.trace.unwrap();
        let store = trace
            .events
            .iter()
            .find(|e| matches!(e.kind, EventKind::Store { .. }))
            .unwrap();
        assert_eq!(store.at.as_ref().unwrap().function, "do_store");
        assert_eq!(store.loc.as_ref().unwrap().line, 5);
        assert_eq!(store.stack.len(), 2);
        assert_eq!(store.stack[0].function, "do_store");
        assert_eq!(store.stack[1].function, "main");
        assert!(store.stack[1].call_inst.is_some());
        assert_eq!(store.stack[1].loc.as_ref().unwrap().line, 20);
        assert_eq!(trace.count(|k| matches!(k, EventKind::Fence { .. })), 1);
        assert_eq!(
            trace.count(|k| matches!(k, EventKind::RegisterPool { .. })),
            1
        );
        assert_eq!(trace.count(|k| matches!(k, EventKind::ProgramEnd)), 1);
    }

    #[test]
    fn volatile_stores_not_traced() {
        let mut m = Module::new();
        let f = m.declare_function("main", vec![], Type::Void);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.entry_block();
        b.switch_to(e);
        let h = b.heap_alloc(64i64);
        b.store(Type::int(8), h, 9i64);
        b.ret(None);
        b.finish();
        let res = run(&m);
        assert_eq!(
            res.trace
                .unwrap()
                .count(|k| matches!(k, EventKind::Store { .. })),
            0
        );
        assert_eq!(res.stats.volatile_stores, 1);
    }

    #[test]
    fn division_by_zero_traps() {
        let mut m = Module::new();
        let f = m.declare_function("main", vec![], Type::Void);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.entry_block();
        b.switch_to(e);
        let v = b.bin(BinOp::SDiv, 1i64, 0i64);
        b.print(v);
        b.ret(None);
        b.finish();
        let err = Vm::new(VmOptions::default()).run(&m, "main").unwrap_err();
        assert!(matches!(err, VmError::DivisionByZero { .. }));
    }

    #[test]
    fn null_store_traps() {
        let mut m = Module::new();
        let f = m.declare_function("main", vec![], Type::Void);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.entry_block();
        b.switch_to(e);
        b.store(Type::int(8), Operand::Null, 1i64);
        b.ret(None);
        b.finish();
        let err = Vm::new(VmOptions::default()).run(&m, "main").unwrap_err();
        assert!(matches!(err, VmError::Mem(_)));
    }

    #[test]
    fn step_limit_enforced() {
        let mut m = Module::new();
        let f = m.declare_function("main", vec![], Type::Void);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.entry_block();
        let spin = b.new_block("spin");
        b.switch_to(e);
        b.br(spin);
        b.switch_to(spin);
        b.br(spin);
        b.finish();
        let opts = VmOptions {
            max_steps: 1000,
            ..VmOptions::default()
        };
        let err = Vm::new(opts).run(&m, "main").unwrap_err();
        assert!(matches!(err, VmError::FuelExhausted { limit: 1000 }));
    }

    /// A spinning `main` module for watchdog/fuel tests.
    fn spin_module() -> Module {
        let mut m = Module::new();
        let f = m.declare_function("main", vec![], Type::Void);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.entry_block();
        let spin = b.new_block("spin");
        b.switch_to(e);
        b.br(spin);
        b.switch_to(spin);
        b.br(spin);
        b.finish();
        m
    }

    #[test]
    fn watchdog_fires_on_runaway_loop() {
        let m = spin_module();
        let opts = VmOptions::default().watchdog(20);
        let err = Vm::new(opts).run(&m, "main").unwrap_err();
        assert!(matches!(err, VmError::Watchdog { limit_ms: 20 }));
    }

    #[test]
    fn watchdog_fires_on_injected_stuck_loop() {
        use pmfault::{FaultKind, FaultPlan, FaultSite, Trigger};
        // Fuel is effectively unlimited: only the wall clock can end this.
        let m = spin_module();
        let opts = VmOptions::default()
            .watchdog(20)
            .with_fault(FaultPlan::single(
                FaultSite::VmDiverge,
                Trigger::Nth(2),
                FaultKind::StuckLoop,
            ));
        let t0 = std::time::Instant::now();
        let err = Vm::new(opts).run(&m, "main").unwrap_err();
        assert!(matches!(err, VmError::Watchdog { limit_ms: 20 }), "{err}");
        assert!(t0.elapsed().as_millis() < 5_000, "watchdog must not hang");
    }

    #[test]
    fn stuck_loop_plan_without_watchdog_is_rejected_up_front() {
        use pmfault::{FaultKind, FaultPlan, FaultSite, Trigger};
        let m = spin_module();
        let opts = VmOptions::default().with_fault(FaultPlan::single(
            FaultSite::VmDiverge,
            Trigger::Nth(0),
            FaultKind::StuckLoop,
        ));
        let err = Vm::new(opts).run(&m, "main").unwrap_err();
        assert!(matches!(err, VmError::BadOptions { .. }), "{err}");
    }

    #[test]
    fn zero_fuel_is_rejected_up_front() {
        let m = spin_module();
        let opts = VmOptions {
            max_steps: 0,
            ..VmOptions::default()
        };
        let err = Vm::new(opts).run(&m, "main").unwrap_err();
        assert!(matches!(err, VmError::BadOptions { .. }));
        // With a watchdog armed the message names the fuel requirement.
        let opts = VmOptions {
            max_steps: 0,
            ..VmOptions::default()
        }
        .watchdog(50);
        let err = Vm::new(opts).run(&m, "main").unwrap_err();
        match err {
            VmError::BadOptions { reason } => {
                assert!(reason.contains("watchdog requires fuel"), "{reason}")
            }
            other => panic!("expected BadOptions, got {other}"),
        }
    }

    #[test]
    fn injected_fuel_exhaustion_tightens_limit() {
        use pmfault::{FaultKind, FaultPlan, FaultSite, Trigger};
        let m = spin_module();
        let opts = VmOptions::default().with_fault(FaultPlan::single(
            FaultSite::VmFuel,
            Trigger::Always,
            FaultKind::FuelExhaustion { max_steps: 17 },
        ));
        let err = Vm::new(opts).run(&m, "main").unwrap_err();
        assert!(matches!(err, VmError::FuelExhausted { limit: 17 }), "{err}");
    }

    #[test]
    fn crash_point_stop() {
        let mut m = Module::new();
        let f = m.declare_function("main", vec![], Type::Void);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.entry_block();
        b.switch_to(e);
        let pool = b.pmem_map(4096i64, 0);
        b.store(Type::int(8), pool, 5i64);
        b.crash_point();
        b.print(99i64); // never reached when stopping at crash point 1
        b.ret(None);
        b.finish();
        let res = Vm::new(VmOptions::default().stop_at(1))
            .run(&m, "main")
            .unwrap();
        assert_eq!(res.ended, Ended::CrashPoint(1));
        assert!(res.output.is_empty());
        // The store never became durable.
        assert_eq!(res.machine.crash_image().pool_bytes(0).unwrap()[0], 0);
    }

    #[test]
    fn crash_point_zero_is_rejected() {
        // Crash points are 1-based; `stop_at(0)` used to silently behave
        // like "never crash", so the caller's "crash immediately" intent
        // quietly ran the whole program. Now it traps up front.
        let mut m = Module::new();
        let f = m.declare_function("main", vec![], Type::Void);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.entry_block();
        b.switch_to(e);
        b.crash_point();
        b.ret(None);
        b.finish();
        let err = Vm::new(VmOptions::default().stop_at(0))
            .run(&m, "main")
            .unwrap_err();
        assert!(matches!(err, VmError::BadOptions { .. }));
        // And 1 still means "the first crashpoint".
        let res = Vm::new(VmOptions::default().stop_at(1))
            .run(&m, "main")
            .unwrap();
        assert_eq!(res.ended, Ended::CrashPoint(1));
    }

    #[test]
    fn stop_at_event_halts_after_that_event() {
        let mut m = Module::new();
        let f = m.declare_function("main", vec![], Type::Void);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.entry_block();
        b.switch_to(e);
        let pool = b.pmem_map(4096i64, 0); // event 0
        b.store(Type::int(8), pool, 5i64); // event 1
        b.store(Type::int(8), pool, 7i64); // event 2 (never runs)
        b.ret(None);
        b.finish();
        let res = Vm::new(VmOptions::default().stop_at_event(1))
            .run(&m, "main")
            .unwrap();
        assert_eq!(res.ended, Ended::AtEvent(1));
        assert_eq!(res.trace.as_ref().unwrap().len(), 2);
        // The first store executed (cache sees 5), the second did not.
        assert_eq!(
            res.machine.peek(pmem_sim::layout::PM_BASE, 1).unwrap()[0],
            5
        );
    }

    #[test]
    fn capture_pm_data_records_store_bytes() {
        let mut m = Module::new();
        let f = m.declare_function("main", vec![], Type::Void);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.entry_block();
        b.switch_to(e);
        let pool = b.pmem_map(4096i64, 0);
        b.store(Type::int(8), pool, 0x0807060504030201i64);
        b.memset(pool, 0xabi64, 4i64);
        b.ret(None);
        b.finish();
        let res = Vm::new(VmOptions::default().capture_pm_data())
            .run(&m, "main")
            .unwrap();
        let data = res.pm_data.unwrap();
        assert_eq!(data.len(), 2, "one record per PM-mutating event");
        assert_eq!(data.records[0].bytes, vec![1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(data.records[1].bytes, vec![0xab; 4]);
        // Records share the trace's sequence numbers.
        let store_seq = res
            .trace
            .unwrap()
            .events
            .iter()
            .find(|e| matches!(e.kind, EventKind::Store { .. }))
            .unwrap()
            .seq;
        assert_eq!(data.records[0].seq, store_seq);
    }

    #[test]
    fn data_capture_without_trace_is_rejected() {
        let m = Module::new();
        let mut opts = VmOptions::bench();
        opts.capture_pm_data = true;
        let err = Vm::new(opts).run(&m, "main").unwrap_err();
        assert!(matches!(err, VmError::BadOptions { .. }));
    }

    #[test]
    fn abort_ends_run() {
        let mut m = Module::new();
        let f = m.declare_function("main", vec![], Type::Void);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.entry_block();
        b.switch_to(e);
        b.print(1i64);
        b.abort(3);
        b.finish();
        let res = run(&m);
        assert_eq!(res.ended, Ended::Aborted(3));
        assert_eq!(res.output, vec![1]);
    }

    #[test]
    fn globals_and_memops() {
        let mut m = Module::new();
        let g = m.add_global("msg", 16, b"abcdefgh".to_vec());
        let f = m.declare_function("main", vec![], Type::Void);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.entry_block();
        b.switch_to(e);
        let ga = b.global_addr(g);
        let pool = b.pmem_map(4096i64, 0);
        b.memcpy(pool, ga, 8i64);
        let v = b.load(Type::int(1), pool);
        b.print(v);
        b.memset(pool, 0i64, 8i64);
        let v2 = b.load(Type::int(1), pool);
        b.print(v2);
        b.ret(None);
        b.finish();
        let res = run(&m);
        assert_eq!(res.output, vec![i64::from(b'a'), 0]);
        // Both the memcpy and the memset traced as PM stores.
        assert_eq!(
            res.trace
                .unwrap()
                .count(|k| matches!(k, EventKind::Store { .. })),
            2
        );
    }

    #[test]
    fn eviction_period_applies() {
        let mut m = Module::new();
        let f = m.declare_function("main", vec![], Type::Void);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.entry_block();
        b.switch_to(e);
        let pool = b.pmem_map(4096i64, 0);
        b.store(Type::int(8), pool, 1i64);
        b.ret(None);
        b.finish();
        let opts = VmOptions {
            evict_period: Some(1),
            ..VmOptions::default()
        };
        let res = Vm::new(opts).run(&m, "main").unwrap();
        // Every store evicted: the data is durable without any flush.
        assert_eq!(res.machine.crash_image().pool_bytes(0).unwrap()[0], 1);
    }

    #[test]
    fn missing_entry_reported() {
        let m = Module::new();
        let err = Vm::new(VmOptions::default()).run(&m, "main").unwrap_err();
        assert!(matches!(err, VmError::NoSuchFunction { .. }));
    }
}
