//! Run results and traps.

use pmem_sim::{Machine, MachineStats, MemError};
use pmtrace::{DataLog, Trace};
use std::fmt;

/// How execution ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ended {
    /// `main` returned normally.
    Returned,
    /// Execution stopped at the configured crash point
    /// ([`crate::VmOptions::stop_at_crash_point`]).
    CrashPoint(u64),
    /// Execution stopped after emitting the configured trace event
    /// ([`crate::VmOptions::stop_at_event`]); carries the event's sequence
    /// number.
    AtEvent(u64),
    /// The program executed `abort`.
    Aborted(i64),
}

/// The outcome of a successful (non-trapping) run.
#[derive(Debug)]
pub struct RunResult {
    /// Values printed on the observable output channel, in order. The
    /// do-no-harm property compares these across original and repaired
    /// programs.
    pub output: Vec<i64>,
    /// `main`'s return value, if it returned one.
    pub return_value: Option<i64>,
    /// How the run ended.
    pub ended: Ended,
    /// Machine counters (cycles, flush/fence counts, …).
    pub stats: MachineStats,
    /// The recorded PM trace, when tracing was enabled.
    pub trace: Option<Trace>,
    /// The bytes every PM write deposited, when
    /// [`crate::VmOptions::capture_pm_data`] was enabled.
    pub pm_data: Option<DataLog>,
    /// The machine in its final state — crash images and the persistent
    /// medium can be extracted from it.
    pub machine: Machine,
    /// Executed instruction count.
    pub steps: u64,
}

/// A trap: the program performed an illegal operation or exceeded limits.
#[derive(Debug, Clone, PartialEq)]
pub enum VmError {
    /// A memory fault.
    Mem(MemError),
    /// Integer division or remainder by zero.
    DivisionByZero {
        /// The function where the fault occurred.
        function: String,
    },
    /// Read of a virtual value that was never computed (interpreter
    /// invariant violation; indicates malformed IR that escaped the
    /// verifier).
    UndefinedValue {
        /// The function where the fault occurred.
        function: String,
    },
    /// The interpreter ran out of fuel: the configured `max_steps` was
    /// exceeded. Distinct from other traps so callers (the repair engine's
    /// degraded mode, the fault campaign) can tell resource exhaustion from
    /// program bugs.
    FuelExhausted {
        /// The fuel limit in effect (after any injected tightening).
        limit: u64,
    },
    /// The wall-clock watchdog ([`crate::VmOptions::watchdog_ms`]) fired:
    /// the run exceeded its real-time budget without completing — e.g. a
    /// diverging `recover()` oracle that stopped making progress.
    Watchdog {
        /// The configured budget in milliseconds.
        limit_ms: u64,
    },
    /// The entry function does not exist.
    NoSuchFunction {
        /// The requested name.
        name: String,
    },
    /// The entry function takes parameters (entry points must not).
    EntryHasParams {
        /// The requested name.
        name: String,
    },
    /// The [`crate::VmOptions`] combination is invalid (e.g.
    /// `stop_at_crash_point = Some(0)`, which can never match because crash
    /// points are numbered from 1).
    BadOptions {
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::Mem(e) => write!(f, "memory fault: {e}"),
            VmError::DivisionByZero { function } => {
                write!(f, "division by zero in `{function}`")
            }
            VmError::UndefinedValue { function } => {
                write!(f, "undefined value read in `{function}`")
            }
            VmError::FuelExhausted { limit } => {
                write!(f, "fuel exhausted: step limit of {limit} exceeded")
            }
            VmError::Watchdog { limit_ms } => {
                write!(f, "watchdog fired: no completion within {limit_ms}ms")
            }
            VmError::NoSuchFunction { name } => write!(f, "no such function: `{name}`"),
            VmError::EntryHasParams { name } => {
                write!(f, "entry function `{name}` must take no parameters")
            }
            VmError::BadOptions { reason } => write!(f, "invalid VM options: {reason}"),
        }
    }
}

impl std::error::Error for VmError {}

impl From<MemError> for VmError {
    fn from(e: MemError) -> Self {
        VmError::Mem(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = VmError::FuelExhausted { limit: 10 };
        assert_eq!(e.to_string(), "fuel exhausted: step limit of 10 exceeded");
        let e = VmError::Watchdog { limit_ms: 50 };
        assert!(e.to_string().contains("watchdog"));
        let e: VmError = MemError::Unmapped { addr: 4 }.into();
        assert!(e.to_string().contains("memory fault"));
    }
}
