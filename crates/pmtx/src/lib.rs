//! `pmtx` — the repair-transaction layer.
//!
//! Hippocrates repairs crash-consistency bugs, so its own repair pipeline is
//! held to the same standard the paper holds its target programs to: every
//! mutation is transactional. This crate provides the two primitives the
//! engine builds rounds out of:
//!
//! - [`Budget`] — a cooperative wall-clock deadline plus step quota threaded
//!   through the detect/explore/static/repair stages, so a run degrades to a
//!   partial-but-committed outcome instead of hanging.
//! - [`Journal`] — the append-only, checksummed, versioned
//!   (`hippo.journal.v1`) write-ahead repair journal. Committed rounds are
//!   durable before the engine moves on; after a SIGKILL, `--resume` replays
//!   them idempotently and continues where the run left off.
//! - [`LeaseTable`] — epoch-numbered, heartbeat-renewed shard leases with
//!   expiry reclaim, bounded retries, poison-shard quarantine, and epoch
//!   fencing; the pure state machine behind `hippod`'s self-healing
//!   campaign scheduler and primary election.
//!
//! The crate is deliberately ignorant of `pmir` and the engine's fix types:
//! journal records carry opaque pre-serialized payloads (module text,
//! fix JSON) so that the dependency arrow points from the engine *down* into
//! `pmtx`, never back up.

pub mod budget;
pub mod framing;
pub mod journal;
pub mod lease;
pub mod lock;

pub use budget::{Budget, BudgetExceeded};
pub use journal::{Journal, JournalError, JournalHeader, Resumed, RoundRecord, JOURNAL_SCHEMA};
pub use lease::{Lease, LeaseError, LeaseTable, Reclaimed};
pub use lock::{FileLock, LockError};
