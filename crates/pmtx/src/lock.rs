//! Advisory exclusive locking for journal files.
//!
//! Two writers interleaving appends into one journal would corrupt it in a
//! way the checksum framing cannot always catch (each line individually
//! valid, the sequence nonsensical). So every open journal holds a
//! `flock`-style exclusive advisory lock on a `<journal>.lock` sidecar for
//! as long as the [`FileLock`] (and the journal that owns it) lives. A
//! second opener — another daemon on the same job journal, or a concurrent
//! `hippoctl fix --journal` — is refused immediately with the holder's pid
//! instead of silently interleaving writes.
//!
//! The lock is tied to the open file description, so it vanishes the moment
//! the holding process exits — including `kill -9`. A crashed daemon never
//! wedges its journal; the restart acquires the lock and resumes.
//!
//! The sidecar file is never unlinked: removing it would let a third opener
//! lock a *fresh* inode while the second still holds the old one, splitting
//! the lock. A stale sidecar with no live lock costs one inode and nothing
//! else.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, Write};
use std::path::{Path, PathBuf};

#[cfg(unix)]
mod sys {
    use std::os::unix::io::AsRawFd;

    const LOCK_EX: i32 = 2;
    const LOCK_NB: i32 = 4;

    extern "C" {
        fn flock(fd: i32, operation: i32) -> i32;
    }

    /// Tries to take the exclusive advisory lock without blocking.
    /// `Ok(false)` means another open file description holds it.
    pub fn try_lock_exclusive(file: &std::fs::File) -> std::io::Result<bool> {
        // SAFETY: `flock` is a plain syscall wrapper over a valid, open fd
        // (borrowed from `file`, so it outlives the call) and touches no
        // memory.
        let rc = unsafe { flock(file.as_raw_fd(), LOCK_EX | LOCK_NB) };
        if rc == 0 {
            return Ok(true);
        }
        let err = std::io::Error::last_os_error();
        if err.kind() == std::io::ErrorKind::WouldBlock {
            Ok(false)
        } else {
            Err(err)
        }
    }
}

#[cfg(not(unix))]
mod sys {
    /// Advisory locking is a no-op off unix; the daemon is unix-only anyway
    /// (it serves over a unix domain socket).
    pub fn try_lock_exclusive(_file: &std::fs::File) -> std::io::Result<bool> {
        Ok(true)
    }
}

/// Why a lock could not be acquired.
#[derive(Debug)]
pub enum LockError {
    /// Another process (or another handle in this one) holds the lock.
    Held {
        /// The journal path the lock guards.
        path: PathBuf,
        /// The holder's pid as recorded in the sidecar, or `"unknown"`.
        pid: String,
    },
    /// Filesystem failure while opening or writing the sidecar.
    Io {
        /// The sidecar path.
        path: PathBuf,
        /// The underlying error.
        error: std::io::Error,
    },
}

impl std::fmt::Display for LockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LockError::Held { path, pid } => write!(
                f,
                "journal {} is held by pid {pid}; refusing to open it concurrently \
                 (a second writer would interleave appends)",
                path.display()
            ),
            LockError::Io { path, error } => {
                write!(f, "journal lock {}: {error}", path.display())
            }
        }
    }
}

impl std::error::Error for LockError {}

/// An exclusive advisory lock on a journal, held until dropped (or until
/// the owning process dies, whichever comes first).
#[derive(Debug)]
pub struct FileLock {
    // Held only for its open file description — the lock dies with it.
    _file: File,
    sidecar: PathBuf,
}

/// The sidecar path guarding `journal_path`.
fn sidecar_path(journal_path: &Path) -> PathBuf {
    let mut name = journal_path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| std::ffi::OsString::from("journal"));
    name.push(".lock");
    journal_path.with_file_name(name)
}

impl FileLock {
    /// Acquires the exclusive lock guarding `journal_path`, recording this
    /// process's pid in the sidecar for the next contender's diagnostic.
    ///
    /// # Errors
    ///
    /// [`LockError::Held`] (with the holder's pid) when another open handle
    /// holds the lock; [`LockError::Io`] on filesystem failure.
    pub fn acquire(journal_path: impl AsRef<Path>) -> Result<FileLock, LockError> {
        let sidecar = sidecar_path(journal_path.as_ref());
        let io = |error| LockError::Io {
            path: sidecar.clone(),
            error,
        };
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false)
            .open(&sidecar)
            .map_err(io)?;
        match sys::try_lock_exclusive(&file) {
            Ok(true) => {}
            Ok(false) => {
                let mut pid = String::new();
                file.read_to_string(&mut pid).ok();
                let pid = pid.trim();
                return Err(LockError::Held {
                    path: journal_path.as_ref().to_path_buf(),
                    pid: if pid.is_empty() {
                        "unknown".to_string()
                    } else {
                        pid.to_string()
                    },
                });
            }
            Err(error) => return Err(io(error)),
        }
        // We own the lock: stamp our pid over whatever a dead holder left.
        file.set_len(0).map_err(io)?;
        file.seek(std::io::SeekFrom::Start(0)).map_err(io)?;
        file.write_all(std::process::id().to_string().as_bytes())
            .map_err(io)?;
        file.sync_data().map_err(io)?;
        Ok(FileLock {
            _file: file,
            sidecar,
        })
    }

    /// The sidecar file actually holding the lock.
    pub fn sidecar(&self) -> &Path {
        &self.sidecar
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("pmtx-lock-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d.join("j.journal")
    }

    #[test]
    fn second_acquisition_is_refused_with_the_holder_pid() {
        let path = tmp("contend");
        let held = FileLock::acquire(&path).unwrap();
        // flock conflicts between two open file descriptions even within
        // one process, so this models a second daemon exactly.
        match FileLock::acquire(&path) {
            Err(LockError::Held { pid, .. }) => {
                assert_eq!(pid, std::process::id().to_string());
            }
            other => panic!("expected Held, got {other:?}"),
        }
        let msg = FileLock::acquire(&path).unwrap_err().to_string();
        assert!(msg.contains("held by pid"), "{msg}");
        drop(held);
        FileLock::acquire(&path).unwrap();
    }

    #[test]
    fn lock_released_on_drop_and_sidecar_survives() {
        let path = tmp("release");
        let sidecar = {
            let l = FileLock::acquire(&path).unwrap();
            l.sidecar().to_path_buf()
        };
        assert!(sidecar.exists(), "sidecar is never unlinked");
        FileLock::acquire(&path).unwrap();
    }
}
