//! Epoch-numbered shard leases — the scheduling primitive behind
//! `hippod`'s self-healing campaigns.
//!
//! A campaign splits into numbered shard units; a worker may only execute
//! a shard while it holds that shard's **lease**. Leases are:
//!
//! - **epoch-numbered** — every lease carries the primary's election
//!   epoch. A deposed primary (or a worker that outlived a reclaim) holds
//!   a lease from a stale epoch; any operation with a stale epoch is
//!   refused (*fencing*), so its late writes can never clobber the
//!   successor's.
//! - **heartbeat-renewed** — a live worker extends its lease before the
//!   TTL runs out. A worker that dies (panic, kill -9) or hangs (watchdog
//!   abandoned) simply stops renewing, and the lease expires on its own.
//! - **reclaimable** — [`LeaseTable::reclaim_expired`] harvests expired
//!   leases so the reaper can reassign the shard, with a bounded retry
//!   budget: a shard that keeps failing is **quarantined** (poison-shard
//!   detection) instead of wedging the campaign forever.
//! - **first-commit-wins** — [`LeaseTable::complete`] only accepts the
//!   result from the current lease holder at the current epoch. When a
//!   reclaimed shard's original worker finishes late (the
//!   reaper-vs-finisher race), its commit is fenced off and discarded;
//!   shard execution is deterministic, so the winner's bytes are the same
//!   either way.
//!
//! The table is pure state — the caller supplies `now_ms` on every call —
//! so every schedule, expiry, and race is deterministic and unit-testable
//! without clocks or threads. `hippod` journals each transition through
//! its write-ahead job journal; this module is deliberately journal- and
//! IO-ignorant, keeping the dependency arrow pointing down into `pmtx`.

use std::collections::BTreeMap;
use std::fmt;

/// One live lease on one shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lease {
    pub shard: u64,
    /// The election epoch the lease was granted under.
    pub epoch: u64,
    /// The holder (worker) identifier.
    pub owner: String,
    /// Absolute expiry on the caller's clock, in milliseconds.
    pub expires_at_ms: u64,
    /// 0-based execution attempt this lease covers.
    pub attempt: u32,
}

/// Why a lease operation was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeaseError {
    /// The operation carried a stale epoch (or a stale owner): the caller
    /// was deposed or reclaimed and must discard its work.
    Fenced {
        shard: u64,
        held_epoch: u64,
        offered_epoch: u64,
    },
    /// The shard has no live lease held by this owner.
    NotHeld { shard: u64 },
    /// Another worker currently holds a live lease on the shard.
    Held { shard: u64, owner: String },
    /// The shard already committed a result; late work is discarded.
    Done { shard: u64 },
    /// The shard exhausted its retry budget and is quarantined.
    Quarantined { shard: u64 },
}

impl fmt::Display for LeaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LeaseError::Fenced {
                shard,
                held_epoch,
                offered_epoch,
            } => write!(
                f,
                "shard {shard}: fenced (lease epoch {offered_epoch} is stale; table is at {held_epoch})"
            ),
            LeaseError::NotHeld { shard } => write!(f, "shard {shard}: lease not held"),
            LeaseError::Held { shard, owner } => {
                write!(f, "shard {shard}: lease held by {owner}")
            }
            LeaseError::Done { shard } => write!(f, "shard {shard}: already committed"),
            LeaseError::Quarantined { shard } => write!(f, "shard {shard}: quarantined"),
        }
    }
}

/// One reclaimed (expired) lease, as harvested by the reaper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reclaimed {
    pub shard: u64,
    pub owner: String,
    pub epoch: u64,
    /// The attempt that just failed (0-based).
    pub attempt: u32,
    /// True when the retry budget is exhausted: the shard is now
    /// quarantined and must not be reassigned.
    pub quarantined: bool,
}

/// The lease table for one campaign: `total` shards, a TTL, and a retry
/// budget (`retries` reassignments after the first attempt).
#[derive(Debug, Clone)]
pub struct LeaseTable {
    epoch: u64,
    total: u64,
    ttl_ms: u64,
    retries: u32,
    leases: BTreeMap<u64, Lease>,
    attempts: BTreeMap<u64, u32>,
    done: BTreeMap<u64, ()>,
    quarantined: BTreeMap<u64, ()>,
}

impl LeaseTable {
    /// A table for `total` shards at election `epoch`. `ttl_ms` is the
    /// lease lifetime per grant/renewal; `retries` bounds reassignments
    /// (attempt numbers run `0..=retries`).
    pub fn new(epoch: u64, total: u64, ttl_ms: u64, retries: u32) -> LeaseTable {
        LeaseTable {
            epoch,
            total,
            ttl_ms: ttl_ms.max(1),
            retries,
            leases: BTreeMap::new(),
            attempts: BTreeMap::new(),
            done: BTreeMap::new(),
            quarantined: BTreeMap::new(),
        }
    }

    /// The table's current election epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Raises the epoch (a new primary took over). Every outstanding lease
    /// from the old epoch is dropped — its holders are fenced on their next
    /// renewal or commit.
    pub fn bump_epoch(&mut self, epoch: u64) {
        if epoch > self.epoch {
            self.epoch = epoch;
            self.leases.clear();
        }
    }

    /// Marks a shard as already committed (journal replay on resume).
    pub fn seed_done(&mut self, shard: u64) {
        self.done.insert(shard, ());
        self.leases.remove(&shard);
    }

    /// Marks a shard as quarantined (journal replay on resume).
    pub fn seed_quarantined(&mut self, shard: u64, attempts: u32) {
        self.quarantined.insert(shard, ());
        self.attempts.insert(shard, attempts);
        self.leases.remove(&shard);
    }

    /// Grants a lease on `shard` to `owner` at the table's epoch.
    ///
    /// # Errors
    ///
    /// Refused when the shard is done, quarantined, or leased to a live
    /// (non-expired) holder.
    pub fn acquire(&mut self, shard: u64, owner: &str, now_ms: u64) -> Result<Lease, LeaseError> {
        if self.done.contains_key(&shard) {
            return Err(LeaseError::Done { shard });
        }
        if self.quarantined.contains_key(&shard) {
            return Err(LeaseError::Quarantined { shard });
        }
        if let Some(l) = self.leases.get(&shard) {
            if l.expires_at_ms > now_ms {
                return Err(LeaseError::Held {
                    shard,
                    owner: l.owner.clone(),
                });
            }
        }
        let attempt = *self.attempts.entry(shard).or_insert(0);
        let lease = Lease {
            shard,
            epoch: self.epoch,
            owner: owner.to_string(),
            expires_at_ms: now_ms + self.ttl_ms,
            attempt,
        };
        self.leases.insert(shard, lease.clone());
        Ok(lease)
    }

    /// Extends the holder's lease by one TTL — the heartbeat.
    ///
    /// # Errors
    ///
    /// Fenced on a stale epoch; `NotHeld` when the lease expired and was
    /// reclaimed (or was never granted) or the owner does not match.
    pub fn renew(
        &mut self,
        shard: u64,
        owner: &str,
        epoch: u64,
        now_ms: u64,
    ) -> Result<Lease, LeaseError> {
        if epoch < self.epoch {
            return Err(LeaseError::Fenced {
                shard,
                held_epoch: self.epoch,
                offered_epoch: epoch,
            });
        }
        match self.leases.get_mut(&shard) {
            Some(l) if l.owner == owner && l.epoch == epoch => {
                l.expires_at_ms = now_ms + self.ttl_ms;
                Ok(l.clone())
            }
            _ => Err(LeaseError::NotHeld { shard }),
        }
    }

    /// Commits the shard: first-commit-wins. Only the current holder at
    /// the current epoch may commit; everyone else — a deposed primary's
    /// worker, a reclaimed worker finishing late — is fenced off.
    ///
    /// # Errors
    ///
    /// `Done` when someone already committed; `Fenced` on a stale epoch;
    /// `NotHeld` when the lease was reclaimed out from under the caller.
    pub fn complete(&mut self, shard: u64, owner: &str, epoch: u64) -> Result<(), LeaseError> {
        if self.done.contains_key(&shard) {
            return Err(LeaseError::Done { shard });
        }
        if epoch < self.epoch {
            return Err(LeaseError::Fenced {
                shard,
                held_epoch: self.epoch,
                offered_epoch: epoch,
            });
        }
        match self.leases.get(&shard) {
            Some(l) if l.owner == owner && l.epoch == epoch => {
                self.leases.remove(&shard);
                self.done.insert(shard, ());
                Ok(())
            }
            _ => Err(LeaseError::NotHeld { shard }),
        }
    }

    /// Revokes the holder's live lease (an injected reaper-vs-finisher
    /// race, or an explicit abandon), bumping the attempt counter exactly
    /// like an expiry-driven reclaim.
    ///
    /// # Errors
    ///
    /// `NotHeld` when no live lease matches the owner.
    pub fn revoke(&mut self, shard: u64, owner: &str) -> Result<Reclaimed, LeaseError> {
        match self.leases.get(&shard) {
            Some(l) if l.owner == owner => {
                let r = self.reclaim_one(shard);
                Ok(r)
            }
            _ => Err(LeaseError::NotHeld { shard }),
        }
    }

    fn reclaim_one(&mut self, shard: u64) -> Reclaimed {
        let l = self.leases.remove(&shard).expect("caller checked");
        let attempt = l.attempt;
        let next = attempt + 1;
        self.attempts.insert(shard, next);
        let quarantined = next > self.retries;
        if quarantined {
            self.quarantined.insert(shard, ());
        }
        Reclaimed {
            shard,
            owner: l.owner,
            epoch: l.epoch,
            attempt,
            quarantined,
        }
    }

    /// Harvests every expired lease: the reaper's scan. Each reclaimed
    /// shard's attempt counter advances; past the retry budget it comes
    /// back flagged `quarantined` and will never be granted again.
    pub fn reclaim_expired(&mut self, now_ms: u64) -> Vec<Reclaimed> {
        let expired: Vec<u64> = self
            .leases
            .iter()
            .filter(|(_, l)| l.expires_at_ms <= now_ms)
            .map(|(&s, _)| s)
            .collect();
        expired.into_iter().map(|s| self.reclaim_one(s)).collect()
    }

    /// Shards with neither a commit, nor a quarantine, nor a live lease —
    /// what the scheduler should (re)assign.
    pub fn assignable(&self, now_ms: u64) -> Vec<u64> {
        (0..self.total)
            .filter(|s| {
                !self.done.contains_key(s)
                    && !self.quarantined.contains_key(s)
                    && self.leases.get(s).is_none_or(|l| l.expires_at_ms <= now_ms)
            })
            .collect()
    }

    /// The attempt number the shard's next grant would carry.
    pub fn attempt(&self, shard: u64) -> u32 {
        self.attempts.get(&shard).copied().unwrap_or(0)
    }

    /// Committed shard count.
    pub fn done_count(&self) -> u64 {
        self.done.len() as u64
    }

    /// Quarantined shard numbers, ascending.
    pub fn quarantined(&self) -> Vec<u64> {
        self.quarantined.keys().copied().collect()
    }

    /// Whether the shard committed.
    pub fn is_done(&self, shard: u64) -> bool {
        self.done.contains_key(&shard)
    }

    /// The campaign is settled: every shard either committed or
    /// quarantined. A settled campaign merges and reports instead of
    /// wedging on its poison shards.
    pub fn is_settled(&self) -> bool {
        (self.done.len() + self.quarantined.len()) as u64 >= self.total
    }

    /// Total shard count.
    pub fn total(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_renew_complete_happy_path() {
        let mut t = LeaseTable::new(3, 2, 100, 2);
        let l = t.acquire(0, "w0", 1000).unwrap();
        assert_eq!(l.epoch, 3);
        assert_eq!(l.attempt, 0);
        assert_eq!(l.expires_at_ms, 1100);
        // A sibling cannot steal a live lease.
        assert_eq!(
            t.acquire(0, "w1", 1050),
            Err(LeaseError::Held {
                shard: 0,
                owner: "w0".to_string()
            })
        );
        // Heartbeats extend it.
        let l = t.renew(0, "w0", 3, 1080).unwrap();
        assert_eq!(l.expires_at_ms, 1180);
        t.complete(0, "w0", 3).unwrap();
        assert!(t.is_done(0));
        assert!(!t.is_settled());
        t.acquire(1, "w1", 1200).unwrap();
        t.complete(1, "w1", 3).unwrap();
        assert!(t.is_settled());
    }

    #[test]
    fn expiry_reclaim_advances_attempts_then_quarantines() {
        let mut t = LeaseTable::new(1, 1, 50, 1);
        t.acquire(0, "w0", 0).unwrap();
        assert!(t.reclaim_expired(49).is_empty(), "not expired yet");
        let r = t.reclaim_expired(50);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].attempt, 0);
        assert!(!r[0].quarantined);
        // The late finisher is fenced off: first-commit-wins.
        assert_eq!(
            t.complete(0, "w0", 1),
            Err(LeaseError::NotHeld { shard: 0 })
        );
        // Reassign; attempt advances.
        let l = t.acquire(0, "w1", 100).unwrap();
        assert_eq!(l.attempt, 1);
        // Second expiry exhausts the budget (retries = 1): quarantine.
        let r = t.reclaim_expired(200);
        assert!(r[0].quarantined);
        assert_eq!(
            t.acquire(0, "w2", 300),
            Err(LeaseError::Quarantined { shard: 0 })
        );
        assert_eq!(t.quarantined(), vec![0]);
        assert!(t.is_settled(), "quarantine settles the campaign");
    }

    #[test]
    fn stale_epoch_is_fenced_everywhere() {
        let mut t = LeaseTable::new(1, 1, 100, 2);
        t.acquire(0, "w0", 0).unwrap();
        // A new primary takes over: epoch 2. Old leases drop.
        t.bump_epoch(2);
        assert_eq!(
            t.renew(0, "w0", 1, 10),
            Err(LeaseError::Fenced {
                shard: 0,
                held_epoch: 2,
                offered_epoch: 1
            })
        );
        assert_eq!(
            t.complete(0, "w0", 1),
            Err(LeaseError::Fenced {
                shard: 0,
                held_epoch: 2,
                offered_epoch: 1
            })
        );
        // The successor's worker proceeds at the new epoch.
        let l = t.acquire(0, "w5", 20).unwrap();
        assert_eq!(l.epoch, 2);
        t.complete(0, "w5", 2).unwrap();
        // Late duplicate commits are refused.
        assert_eq!(t.complete(0, "w5", 2), Err(LeaseError::Done { shard: 0 }));
    }

    #[test]
    fn revoke_is_an_explicit_reclaim() {
        let mut t = LeaseTable::new(1, 1, 100, 3);
        t.acquire(0, "w0", 0).unwrap();
        let r = t.revoke(0, "w0").unwrap();
        assert_eq!(r.attempt, 0);
        assert!(!r.quarantined);
        assert_eq!(t.revoke(0, "w0"), Err(LeaseError::NotHeld { shard: 0 }));
        assert_eq!(t.attempt(0), 1);
    }

    #[test]
    fn assignable_tracks_the_whole_lifecycle() {
        let mut t = LeaseTable::new(1, 3, 100, 2);
        assert_eq!(t.assignable(0), vec![0, 1, 2]);
        t.acquire(0, "w0", 0).unwrap();
        assert_eq!(t.assignable(10), vec![1, 2]);
        t.complete(0, "w0", 1).unwrap();
        t.acquire(1, "w1", 10).unwrap();
        // Shard 1's lease expires at 110: assignable again.
        assert_eq!(t.assignable(110), vec![1, 2]);
        t.seed_quarantined(2, 3);
        assert_eq!(t.assignable(110), vec![1]);
    }

    #[test]
    fn seeded_resume_state_is_respected() {
        let mut t = LeaseTable::new(4, 3, 100, 2);
        t.seed_done(0);
        t.seed_quarantined(1, 3);
        assert_eq!(t.acquire(0, "w0", 0), Err(LeaseError::Done { shard: 0 }));
        assert_eq!(
            t.acquire(1, "w0", 0),
            Err(LeaseError::Quarantined { shard: 1 })
        );
        t.acquire(2, "w0", 0).unwrap();
        t.complete(2, "w0", 4).unwrap();
        assert!(t.is_settled());
    }
}
