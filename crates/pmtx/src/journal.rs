//! The write-ahead repair journal (`hippo.journal.v1`).
//!
//! # On-disk format
//!
//! The journal is a line-oriented text file. Every line is
//!
//! ```text
//! <payload>#<checksum>\n
//! ```
//!
//! where `<payload>` is a single-line JSON document and `<checksum>` is the
//! FNV-1a 64 hash of the payload bytes as 16 lowercase hex digits. The first
//! line's payload is a [`JournalHeader`] naming the schema version and the
//! digests of the input module and repair options; every later line is one
//! committed [`RoundRecord`].
//!
//! # Durability and recovery rules
//!
//! Appends are flushed with `sync_data` before the engine continues, so a
//! record present in the journal is durable. On reopen:
//!
//! - A **torn final line** (bad checksum or missing trailing newline on the
//!   last line only) is the expected residue of a crash mid-append: the round
//!   never committed. It is dropped, the file is truncated back to the last
//!   good line, and a diagnostic is surfaced.
//! - **Any other invalid line** means the file was edited or the medium
//!   corrupted it; the journal is rejected with [`JournalError::Corrupted`]
//!   rather than silently resuming from a wrong state.
//! - Round records must be numbered 1, 2, 3, … in file order; a gap or
//!   reorder is corruption.
//!
//! Resume additionally refuses ([`JournalError::StateMismatch`]) when the
//! journal's recorded module or options digest differs from the current
//! run's: replaying fixes computed for a different input would be exactly
//! the kind of harm Hippocrates exists to prevent.
//!
//! # Locking
//!
//! Every open journal holds an exclusive advisory lock (see
//! [`crate::lock`]) on a `<journal>.lock` sidecar. A second daemon — or a
//! concurrent `hippoctl fix --journal` — on the same journal is refused
//! with a "held by pid N" diagnostic instead of interleaving appends. The
//! lock dies with the holding process, so `kill -9` never wedges a resume.

use crate::framing::{decode_line, encode_line, split_lines};
use crate::lock::{FileLock, LockError};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// The schema identifier written into (and required of) every journal.
pub const JOURNAL_SCHEMA: &str = "hippo.journal.v1";

/// First line of every journal: what run this journal belongs to.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalHeader {
    /// Always [`JOURNAL_SCHEMA`].
    pub schema: String,
    /// Digest (hex) of the input module's canonical printed text.
    pub module_digest: String,
    /// Digest (hex) of the repair options that shape fix planning.
    pub options_digest: String,
}

impl JournalHeader {
    /// A v1 header for the given module/options digests.
    pub fn new(module_digest: impl Into<String>, options_digest: impl Into<String>) -> Self {
        JournalHeader {
            schema: JOURNAL_SCHEMA.to_string(),
            module_digest: module_digest.into(),
            options_digest: options_digest.into(),
        }
    }
}

/// One committed repair round.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundRecord {
    /// 1-based committed-round number; file order must match.
    pub round: u32,
    /// Module digest (hex) the round started from.
    pub base_digest: String,
    /// Module digest (hex) the round committed.
    pub after_digest: String,
    /// Digest (hex) of the post-round durability report.
    pub report_digest: String,
    /// Persistent clones created by this round.
    pub clones: u64,
    /// The round's applied fixes, each pre-serialized by the engine (opaque
    /// to `pmtx`).
    pub fixes: Vec<String>,
    /// Canonical printed text of the module after the round — the replay
    /// payload.
    pub patch: String,
}

/// Why a journal could not be created, read, or appended to.
#[derive(Debug)]
pub enum JournalError {
    /// Filesystem failure.
    Io {
        /// The journal path.
        path: PathBuf,
        /// The underlying error.
        error: std::io::Error,
    },
    /// An interior line failed its checksum or structural checks.
    Corrupted {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// The file's header names a schema this build does not speak.
    SchemaMismatch {
        /// The schema string found in the file.
        found: String,
    },
    /// The journal belongs to a different module or options configuration.
    StateMismatch {
        /// `"module"` or `"options"`.
        what: &'static str,
        /// Digest recorded in the journal (hex).
        journal: String,
        /// Digest of the current run (hex).
        current: String,
    },
    /// Another live process holds the journal's advisory lock.
    Locked(LockError),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { path, error } => {
                write!(f, "journal {}: {error}", path.display())
            }
            JournalError::Corrupted { line, reason } => write!(
                f,
                "journal corrupted at line {line}: {reason}; refusing to resume \
                 (delete the journal to start over)"
            ),
            JournalError::SchemaMismatch { found } => write!(
                f,
                "journal schema `{found}` is not `{JOURNAL_SCHEMA}`; refusing to resume"
            ),
            JournalError::StateMismatch {
                what,
                journal,
                current,
            } => write!(
                f,
                "journal was recorded for {what} digest {journal} but the current \
                 {what} digest is {current}; refusing to resume (re-run without \
                 --resume to start a fresh journal)"
            ),
            JournalError::Locked(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for JournalError {}

/// An open journal: the parsed committed rounds plus an append handle.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
    header: JournalHeader,
    rounds: Vec<RoundRecord>,
    /// Exclusive advisory lock; held for the journal's whole lifetime.
    _lock: FileLock,
}

/// The result of resuming an existing journal.
#[derive(Debug)]
pub struct Resumed {
    /// The opened journal, positioned to append the next round.
    pub journal: Journal,
    /// Human-readable notes: a dropped torn tail, a fresh file, etc.
    pub diagnostics: Vec<String>,
}

impl Journal {
    /// Creates (or truncates) a fresh journal for `header` and makes the
    /// header durable.
    pub fn create(path: impl AsRef<Path>, header: JournalHeader) -> Result<Journal, JournalError> {
        let lock = FileLock::acquire(path.as_ref()).map_err(JournalError::Locked)?;
        Journal::create_locked(path, header, lock)
    }

    /// [`Journal::create`] with an already-acquired lock (the resume path
    /// holds the lock before it knows whether the file is fresh).
    fn create_locked(
        path: impl AsRef<Path>,
        header: JournalHeader,
        lock: FileLock,
    ) -> Result<Journal, JournalError> {
        let path = path.as_ref().to_path_buf();
        let io = |error| JournalError::Io {
            path: path.clone(),
            error,
        };
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)
            .map_err(io)?;
        let payload = serde_json::to_string(&header).map_err(|e| JournalError::Io {
            path: path.clone(),
            error: std::io::Error::other(e.to_string()),
        })?;
        file.write_all(encode_line(&payload).as_bytes())
            .map_err(io)?;
        file.sync_data().map_err(io)?;
        Ok(Journal {
            path,
            file,
            header,
            rounds: Vec::new(),
            _lock: lock,
        })
    }

    /// Opens an existing journal for `expected`, replay-ready.
    ///
    /// Tolerates exactly one torn final line (see the module docs); any other
    /// damage is an error. Refuses journals whose module or options digest
    /// differs from `expected`.
    pub fn resume(
        path: impl AsRef<Path>,
        expected: &JournalHeader,
    ) -> Result<Resumed, JournalError> {
        let lock = FileLock::acquire(path.as_ref()).map_err(JournalError::Locked)?;
        let path = path.as_ref().to_path_buf();
        let io = |error| JournalError::Io {
            path: path.clone(),
            error,
        };
        let mut text = String::new();
        File::open(&path)
            .and_then(|mut f| f.read_to_string(&mut text))
            .map_err(io)?;

        let mut diagnostics = Vec::new();

        // Split into physical lines, keeping byte offsets so a torn tail can
        // be truncated away before we append anything after it.
        let lines = split_lines(&text);

        // Decode every line; a bad line is tolerable only as the very last.
        let mut good_end = text.len();
        let mut payloads: Vec<(usize, String)> = Vec::new();
        for (idx, line) in lines.iter().enumerate() {
            let last = idx + 1 == lines.len();
            let verdict = if !line.terminated {
                Err("unterminated line".to_string())
            } else {
                decode_line(line.body).map(str::to_string)
            };
            match verdict {
                Ok(payload) => payloads.push((idx + 1, payload)),
                Err(reason) if last => {
                    diagnostics.push(format!(
                        "dropped torn journal tail at line {} ({reason}): the \
                         in-flight round never committed",
                        idx + 1
                    ));
                    good_end = line.offset;
                }
                Err(reason) => {
                    return Err(JournalError::Corrupted {
                        line: idx + 1,
                        reason,
                    })
                }
            }
        }

        let mut it = payloads.into_iter();
        let header: JournalHeader = match it.next() {
            Some((line, payload)) => {
                serde_json::from_str(&payload).map_err(|e| JournalError::Corrupted {
                    line,
                    reason: format!("header does not parse: {e}"),
                })?
            }
            None => {
                // Nothing durable ever made it to disk (crash before the
                // header sync): start the journal fresh.
                diagnostics
                    .push("journal file held no committed state; starting fresh".to_string());
                let journal = Journal::create_locked(&path, expected.clone(), lock)?;
                return Ok(Resumed {
                    journal,
                    diagnostics,
                });
            }
        };
        if header.schema != JOURNAL_SCHEMA {
            return Err(JournalError::SchemaMismatch {
                found: header.schema,
            });
        }
        if header.module_digest != expected.module_digest {
            return Err(JournalError::StateMismatch {
                what: "module",
                journal: header.module_digest,
                current: expected.module_digest.clone(),
            });
        }
        if header.options_digest != expected.options_digest {
            return Err(JournalError::StateMismatch {
                what: "options",
                journal: header.options_digest,
                current: expected.options_digest.clone(),
            });
        }

        let mut rounds = Vec::new();
        for (line, payload) in it {
            let rec: RoundRecord =
                serde_json::from_str(&payload).map_err(|e| JournalError::Corrupted {
                    line,
                    reason: format!("round record does not parse: {e}"),
                })?;
            if rec.round as usize != rounds.len() + 1 {
                return Err(JournalError::Corrupted {
                    line,
                    reason: format!(
                        "round {} out of order (expected round {})",
                        rec.round,
                        rounds.len() + 1
                    ),
                });
            }
            rounds.push(rec);
        }

        let file = OpenOptions::new().write(true).open(&path).map_err(io)?;
        if good_end < text.len() {
            file.set_len(good_end as u64).map_err(io)?;
            file.sync_data().map_err(io)?;
        }
        let mut journal = Journal {
            path,
            file,
            header,
            rounds,
            _lock: lock,
        };
        // Position at the (possibly truncated) end for future appends.
        use std::io::Seek;
        journal
            .file
            .seek(std::io::SeekFrom::End(0))
            .map_err(|error| JournalError::Io {
                path: journal.path.clone(),
                error,
            })?;
        Ok(Resumed {
            journal,
            diagnostics,
        })
    }

    /// Appends a committed round and makes it durable before returning.
    pub fn append(&mut self, record: RoundRecord) -> Result<(), JournalError> {
        let io = |error| JournalError::Io {
            path: self.path.clone(),
            error,
        };
        if record.round as usize != self.rounds.len() + 1 {
            return Err(JournalError::Corrupted {
                line: self.rounds.len() + 2,
                reason: format!(
                    "attempted to append round {} after round {}",
                    record.round,
                    self.rounds.len()
                ),
            });
        }
        let payload = serde_json::to_string(&record).map_err(|e| JournalError::Io {
            path: self.path.clone(),
            error: std::io::Error::other(e.to_string()),
        })?;
        self.file
            .write_all(encode_line(&payload).as_bytes())
            .map_err(io)?;
        self.file.sync_data().map_err(io)?;
        self.rounds.push(record);
        Ok(())
    }

    /// The journal's header.
    pub fn header(&self) -> &JournalHeader {
        &self.header
    }

    /// Committed rounds, in commit order.
    pub fn rounds(&self) -> &[RoundRecord] {
        &self.rounds
    }

    /// The round number the next [`Journal::append`] must carry.
    pub fn next_round(&self) -> u32 {
        self.rounds.len() as u32 + 1
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("pmtx-journal-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn rec(round: u32) -> RoundRecord {
        RoundRecord {
            round,
            base_digest: format!("{:016x}", u64::from(round)),
            after_digest: format!("{:016x}", u64::from(round) + 1),
            report_digest: "00000000000000aa".to_string(),
            clones: 0,
            fixes: vec![format!("{{\"fix\":{round}}}")],
            patch: format!("module text\nfor round {round}\n"),
        }
    }

    #[test]
    fn create_append_resume_roundtrip() {
        let path = tmpdir("roundtrip").join("j.journal");
        let header = JournalHeader::new("aa", "bb");
        let mut j = Journal::create(&path, header.clone()).unwrap();
        j.append(rec(1)).unwrap();
        j.append(rec(2)).unwrap();
        drop(j);

        let resumed = Journal::resume(&path, &header).unwrap();
        assert!(resumed.diagnostics.is_empty(), "{:?}", resumed.diagnostics);
        assert_eq!(resumed.journal.rounds(), &[rec(1), rec(2)]);
        assert_eq!(resumed.journal.next_round(), 3);
    }

    #[test]
    fn resume_continues_the_sequence() {
        let path = tmpdir("continue").join("j.journal");
        let header = JournalHeader::new("aa", "bb");
        let mut j = Journal::create(&path, header.clone()).unwrap();
        j.append(rec(1)).unwrap();
        drop(j);

        let mut j = Journal::resume(&path, &header).unwrap().journal;
        j.append(rec(2)).unwrap();
        drop(j);
        let j = Journal::resume(&path, &header).unwrap().journal;
        assert_eq!(j.rounds().len(), 2);
    }

    #[test]
    fn torn_tail_is_dropped_and_truncated() {
        let path = tmpdir("torn").join("j.journal");
        let header = JournalHeader::new("aa", "bb");
        let mut j = Journal::create(&path, header.clone()).unwrap();
        j.append(rec(1)).unwrap();
        drop(j);
        // Simulate a crash mid-append: half a record, no checksum/newline.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"round\":2,\"base").unwrap();
        drop(f);

        let resumed = Journal::resume(&path, &header).unwrap();
        assert_eq!(resumed.journal.rounds(), &[rec(1)]);
        assert_eq!(resumed.diagnostics.len(), 1);
        assert!(
            resumed.diagnostics[0].contains("torn"),
            "{:?}",
            resumed.diagnostics
        );

        // The torn bytes are gone: a further resume is clean.
        drop(resumed);
        let again = Journal::resume(&path, &header).unwrap();
        assert!(again.diagnostics.is_empty(), "{:?}", again.diagnostics);
    }

    #[test]
    fn append_after_torn_tail_recovery_is_well_formed() {
        let path = tmpdir("torn-append").join("j.journal");
        let header = JournalHeader::new("aa", "bb");
        let mut j = Journal::create(&path, header.clone()).unwrap();
        j.append(rec(1)).unwrap();
        drop(j);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"partial garbage").unwrap();
        drop(f);

        let mut j = Journal::resume(&path, &header).unwrap().journal;
        j.append(rec(2)).unwrap();
        drop(j);
        let j = Journal::resume(&path, &header).unwrap().journal;
        assert_eq!(j.rounds(), &[rec(1), rec(2)]);
    }

    #[test]
    fn interior_corruption_is_rejected() {
        let path = tmpdir("interior").join("j.journal");
        let header = JournalHeader::new("aa", "bb");
        let mut j = Journal::create(&path, header.clone()).unwrap();
        j.append(rec(1)).unwrap();
        j.append(rec(2)).unwrap();
        drop(j);
        // Flip one byte in the middle of the file (round 1's line).
        let mut bytes = std::fs::read(&path).unwrap();
        let line1_end = bytes.iter().position(|&b| b == b'\n').unwrap();
        bytes[line1_end + 5] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();

        match Journal::resume(&path, &header) {
            Err(JournalError::Corrupted { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected Corrupted, got {other:?}"),
        }
    }

    #[test]
    fn header_digest_mismatch_refuses_resume() {
        let path = tmpdir("mismatch").join("j.journal");
        let header = JournalHeader::new("aa", "bb");
        Journal::create(&path, header.clone()).unwrap();

        let other_module = JournalHeader::new("cc", "bb");
        match Journal::resume(&path, &other_module) {
            Err(JournalError::StateMismatch { what: "module", .. }) => {}
            other => panic!("expected module StateMismatch, got {other:?}"),
        }
        let other_opts = JournalHeader::new("aa", "dd");
        match Journal::resume(&path, &other_opts) {
            Err(JournalError::StateMismatch {
                what: "options", ..
            }) => {}
            other => panic!("expected options StateMismatch, got {other:?}"),
        }
        let msg = Journal::resume(&path, &other_opts).unwrap_err().to_string();
        assert!(msg.contains("refusing to resume"), "{msg}");
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let path = tmpdir("schema").join("j.journal");
        let header = JournalHeader {
            schema: "hippo.journal.v0".to_string(),
            module_digest: "aa".to_string(),
            options_digest: "bb".to_string(),
        };
        Journal::create(&path, header).unwrap();
        match Journal::resume(&path, &JournalHeader::new("aa", "bb")) {
            Err(JournalError::SchemaMismatch { found }) => {
                assert_eq!(found, "hippo.journal.v0")
            }
            other => panic!("expected SchemaMismatch, got {other:?}"),
        }
    }

    #[test]
    fn empty_file_resumes_fresh() {
        let path = tmpdir("empty").join("j.journal");
        std::fs::write(&path, b"").unwrap();
        let header = JournalHeader::new("aa", "bb");
        let resumed = Journal::resume(&path, &header).unwrap();
        assert!(resumed.journal.rounds().is_empty());
        assert!(
            resumed.diagnostics.iter().any(|d| d.contains("fresh")),
            "{:?}",
            resumed.diagnostics
        );
    }

    #[test]
    fn concurrent_open_is_refused_with_holder_pid() {
        let path = tmpdir("flock").join("j.journal");
        let header = JournalHeader::new("aa", "bb");
        let held = Journal::create(&path, header.clone()).unwrap();
        // A second open — create or resume — must refuse while the first
        // handle lives; this is the "second daemon on one journal" case.
        match Journal::resume(&path, &header) {
            Err(JournalError::Locked(_)) => {}
            other => panic!("expected Locked, got {other:?}"),
        }
        let msg = Journal::create(&path, header.clone())
            .unwrap_err()
            .to_string();
        assert!(msg.contains("held by pid"), "{msg}");
        assert!(msg.contains(&std::process::id().to_string()), "{msg}");
        drop(held);
        Journal::resume(&path, &header).unwrap();
    }

    #[test]
    fn out_of_order_append_is_refused() {
        let path = tmpdir("order").join("j.journal");
        let mut j = Journal::create(&path, JournalHeader::new("aa", "bb")).unwrap();
        assert!(j.append(rec(2)).is_err());
        assert!(j.append(rec(1)).is_ok());
    }

    #[test]
    fn round_gap_on_disk_is_corruption() {
        let path = tmpdir("gap").join("j.journal");
        let header = JournalHeader::new("aa", "bb");
        let mut j = Journal::create(&path, header.clone()).unwrap();
        j.append(rec(1)).unwrap();
        drop(j);
        // Hand-forge a well-checksummed record with the wrong round number.
        let payload = serde_json::to_string(&rec(5)).unwrap();
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(encode_line(&payload).as_bytes()).unwrap();
        drop(f);
        match Journal::resume(&path, &header) {
            Err(JournalError::Corrupted { reason, .. }) => {
                assert!(reason.contains("out of order"), "{reason}")
            }
            other => panic!("expected Corrupted, got {other:?}"),
        }
    }
}
