//! Cooperative deadline/cancellation budgets.
//!
//! A [`Budget`] is checked, never enforced: long-running stages call
//! [`Budget::check`] (or [`Budget::charge`]) at their natural boundaries and
//! unwind with [`BudgetExceeded`] when the wall-clock deadline has passed or
//! the step quota is spent. The default budget is unlimited and costs one
//! `Option` branch per check, so unbudgeted callers pay nothing.
//!
//! Exhaustion is *sticky*: once a budget trips, every later check fails too,
//! even if it tripped on the step quota while wall-clock time remains. That
//! keeps a multi-stage pipeline's answer consistent — a stage that saw
//! "exhausted" can trust that no later stage will quietly keep working.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a budget check failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BudgetExceeded {
    /// The wall-clock deadline passed.
    Deadline {
        /// The configured limit, in milliseconds.
        limit_ms: u64,
    },
    /// The step quota was spent.
    Steps {
        /// The configured quota.
        quota: u64,
    },
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetExceeded::Deadline { limit_ms } => {
                write!(f, "deadline of {limit_ms}ms exceeded")
            }
            BudgetExceeded::Steps { quota } => write!(f, "step quota of {quota} exhausted"),
        }
    }
}

impl std::error::Error for BudgetExceeded {}

#[derive(Debug)]
struct Inner {
    started: Instant,
    deadline_ms: Option<u64>,
    step_quota: Option<u64>,
    steps: AtomicU64,
    tripped: AtomicBool,
}

/// A shared, cooperative execution budget.
///
/// Cloning is cheap (an `Arc` bump) and clones share the same accounting, so
/// a budget handed to parallel exploration workers is spent once, not once
/// per worker. [`Budget::default`] (and [`Budget::unlimited`]) never trips.
#[derive(Debug, Clone, Default)]
pub struct Budget(Option<Arc<Inner>>);

impl Budget {
    /// A budget that never trips (the default).
    pub fn unlimited() -> Budget {
        Budget(None)
    }

    /// A budget with the given wall-clock deadline and/or step quota,
    /// counted from now. `None` for either means that axis is unlimited;
    /// both `None` is equivalent to [`Budget::unlimited`].
    pub fn new(deadline_ms: Option<u64>, step_quota: Option<u64>) -> Budget {
        if deadline_ms.is_none() && step_quota.is_none() {
            return Budget(None);
        }
        Budget(Some(Arc::new(Inner {
            started: Instant::now(),
            deadline_ms,
            step_quota,
            steps: AtomicU64::new(0),
            tripped: AtomicBool::new(false),
        })))
    }

    /// Whether this budget can ever trip.
    pub fn is_limited(&self) -> bool {
        self.0.is_some()
    }

    /// Checks the budget without consuming steps.
    pub fn check(&self) -> Result<(), BudgetExceeded> {
        self.charge(0)
    }

    /// Consumes `n` steps, then checks both axes.
    pub fn charge(&self, n: u64) -> Result<(), BudgetExceeded> {
        let Some(inner) = &self.0 else {
            return Ok(());
        };
        let spent = inner.steps.fetch_add(n, Ordering::Relaxed) + n;
        if inner.tripped.load(Ordering::Relaxed) {
            return Err(self.exceeded_reason(inner, spent));
        }
        if let Some(quota) = inner.step_quota {
            if spent > quota {
                inner.tripped.store(true, Ordering::Relaxed);
                return Err(BudgetExceeded::Steps { quota });
            }
        }
        if let Some(limit_ms) = inner.deadline_ms {
            if inner.started.elapsed() >= Duration::from_millis(limit_ms) {
                inner.tripped.store(true, Ordering::Relaxed);
                return Err(BudgetExceeded::Deadline { limit_ms });
            }
        }
        Ok(())
    }

    fn exceeded_reason(&self, inner: &Inner, spent: u64) -> BudgetExceeded {
        match (inner.step_quota, inner.deadline_ms) {
            (Some(quota), _) if spent > quota => BudgetExceeded::Steps { quota },
            (_, Some(limit_ms)) => BudgetExceeded::Deadline { limit_ms },
            (Some(quota), None) => BudgetExceeded::Steps { quota },
            (None, None) => unreachable!("tripped budget has at least one limit"),
        }
    }

    /// Whether the budget has already tripped (sticky).
    pub fn is_exhausted(&self) -> bool {
        match &self.0 {
            None => false,
            Some(inner) => inner.tripped.load(Ordering::Relaxed) || self.check().is_err(),
        }
    }

    /// Wall-clock milliseconds remaining before the deadline, if one is set.
    /// Returns `Some(0)` once the deadline has passed.
    pub fn remaining_ms(&self) -> Option<u64> {
        let inner = self.0.as_ref()?;
        let limit_ms = inner.deadline_ms?;
        let elapsed = inner.started.elapsed().as_millis() as u64;
        Some(limit_ms.saturating_sub(elapsed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let b = Budget::unlimited();
        assert!(!b.is_limited());
        assert!(b.charge(u64::MAX / 2).is_ok());
        assert!(!b.is_exhausted());
        assert_eq!(b.remaining_ms(), None);
        assert!(!Budget::new(None, None).is_limited());
    }

    #[test]
    fn step_quota_trips_and_sticks() {
        let b = Budget::new(None, Some(10));
        assert!(b.charge(10).is_ok());
        assert_eq!(b.charge(1), Err(BudgetExceeded::Steps { quota: 10 }));
        // Sticky: a zero-cost check after tripping still fails.
        assert!(b.check().is_err());
        assert!(b.is_exhausted());
    }

    #[test]
    fn clones_share_accounting() {
        let b = Budget::new(None, Some(4));
        let c = b.clone();
        assert!(b.charge(3).is_ok());
        assert!(c.charge(2).is_err(), "clone sees the shared spend");
        assert!(b.is_exhausted());
    }

    #[test]
    fn deadline_trips_after_elapse() {
        let b = Budget::new(Some(0), None);
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(b.check(), Err(BudgetExceeded::Deadline { limit_ms: 0 }));
        assert_eq!(b.remaining_ms(), Some(0));
        assert!(b.is_exhausted());
    }

    #[test]
    fn remaining_ms_counts_down() {
        let b = Budget::new(Some(60_000), None);
        let r = b.remaining_ms().unwrap();
        assert!(r <= 60_000 && r > 50_000, "{r}");
        assert!(b.check().is_ok());
    }

    #[test]
    fn exceeded_messages_are_actionable() {
        let d = BudgetExceeded::Deadline { limit_ms: 500 }.to_string();
        assert!(d.contains("500ms"), "{d}");
        let s = BudgetExceeded::Steps { quota: 9 }.to_string();
        assert!(s.contains('9'), "{s}");
    }
}
