//! The checksummed line framing shared by every `hippo.*` journal.
//!
//! A journal line is
//!
//! ```text
//! <payload>#<checksum>\n
//! ```
//!
//! where `<payload>` is a single-line JSON document and `<checksum>` is the
//! FNV-1a 64 hash of the payload bytes as 16 lowercase hex digits. The
//! repair journal (`hippo.journal.v1`) and the daemon's job-state journal
//! (`hippo.jobs-journal.v1`) both build on this framing, so a torn tail is
//! recognized — and interior corruption refused — the same way everywhere.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64 over arbitrary bytes — the journal checksum primitive.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Frames `payload` as one durable journal line (checksum + newline).
pub fn encode_line(payload: &str) -> String {
    format!("{payload}#{:016x}\n", fnv1a(payload.as_bytes()))
}

/// Splits a raw line (newline already stripped) into its payload, verifying
/// the trailing checksum.
///
/// # Errors
///
/// Returns a human-readable reason when the checksum field is missing,
/// malformed, or does not match the payload.
pub fn decode_line(raw: &str) -> Result<&str, String> {
    let Some((payload, sum)) = raw.rsplit_once('#') else {
        return Err("missing checksum field".to_string());
    };
    if sum.len() != 16 || !sum.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err("malformed checksum field".to_string());
    }
    let expect = format!("{:016x}", fnv1a(payload.as_bytes()));
    if sum != expect {
        return Err(format!("checksum mismatch (line hashes to {expect})"));
    }
    Ok(payload)
}

/// One physical line of a journal file: its byte offset, body (newline
/// stripped), and whether the newline was present.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawLine<'a> {
    /// Byte offset of the line's first character in the file.
    pub offset: usize,
    /// The line body, without its terminating newline.
    pub body: &'a str,
    /// Whether the terminating newline was present (`false` only for a
    /// torn final line).
    pub terminated: bool,
}

/// Splits journal text into physical lines, keeping byte offsets so a torn
/// tail can be truncated away before anything is appended after it.
pub fn split_lines(text: &str) -> Vec<RawLine<'_>> {
    let mut lines = Vec::new();
    let mut start = 0usize;
    while start < text.len() {
        match text[start..].find('\n') {
            Some(rel) => {
                lines.push(RawLine {
                    offset: start,
                    body: &text[start..start + rel],
                    terminated: true,
                });
                start += rel + 1;
            }
            None => {
                lines.push(RawLine {
                    offset: start,
                    body: &text[start..],
                    terminated: false,
                });
                break;
            }
        }
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let line = encode_line(r#"{"a":1}"#);
        assert!(line.ends_with('\n'));
        let payload = decode_line(line.trim_end_matches('\n')).unwrap();
        assert_eq!(payload, r#"{"a":1}"#);
    }

    #[test]
    fn payloads_containing_hashes_still_decode() {
        // rsplit_once means only the *last* `#` is the checksum separator.
        let line = encode_line(r##"{"s":"a#b#c"}"##);
        assert_eq!(
            decode_line(line.trim_end_matches('\n')).unwrap(),
            r##"{"s":"a#b#c"}"##
        );
    }

    #[test]
    fn corruption_is_detected() {
        let line = encode_line("payload");
        let mut bytes = line.trim_end_matches('\n').to_string();
        bytes.replace_range(0..1, "X");
        assert!(decode_line(&bytes).unwrap_err().contains("checksum"));
        assert!(decode_line("no-checksum-here").is_err());
        assert!(decode_line("short#abc").is_err());
    }

    #[test]
    fn split_lines_tracks_offsets_and_torn_tails() {
        let text = "one\ntwo\ntorn";
        let lines = split_lines(text);
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].body, "one");
        assert!(lines[0].terminated);
        assert_eq!(lines[1].offset, 4);
        assert_eq!(lines[2].body, "torn");
        assert!(!lines[2].terminated);
        assert!(split_lines("").is_empty());
    }
}
