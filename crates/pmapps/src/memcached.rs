//! mini-memcached build variants (the memcached-pm analog).

use pmir::Module;
use pmlang::LangError;

/// The mini-memcached source.
pub const SRC: &str = include_str!("../pmc/memcached.pmc");

/// The driver entry point.
pub const ENTRY: &str = "memcached_main";

/// The recovery oracle entry (returns 0 iff the durable invariants hold);
/// crash-state exploration boots it on every explored crash image.
pub const RECOVER: &str = "mc_recover";

/// The ten previously-undocumented bugs the paper reports in memcached-pm
/// (§6.1).
pub const BUG_IDS: [&str; 10] = [
    "mm-1", "mm-2", "mm-3", "mm-4", "mm-5", "mm-6", "mm-7", "mm-8", "mm-9", "mm-10",
];

fn compiler() -> pmlang::Compiler {
    minipmdk::library_compiler().source("memcached.pmc", SRC)
}

/// The correct build.
///
/// # Errors
///
/// Propagates compiler diagnostics.
pub fn build_correct() -> Result<Module, LangError> {
    compiler().compile()
}

/// The build with bug `id` seeded.
///
/// # Errors
///
/// Propagates compiler diagnostics.
pub fn build_buggy(id: &str) -> Result<Module, LangError> {
    compiler().elide_tag(id).compile()
}
