//! `pmapps` — the PM applications the paper evaluates on: P-CLHT (RECIPE),
//! mini-memcached (memcached-pm), and mini-Redis (Redis-pmem), all written
//! in `pmlang` against the `minipmdk` library.
//!
//! Each application exists in several build variants driven by `pmlang`
//! statement attributes:
//!
//! * the **correct** build (all persistence statements present);
//! * per-bug **buggy** builds (one `#[tag(…)]` persistence statement
//!   elided) — the §6.1 corpus;
//! * for Redis, the **developer port** (`pmport` feature; all flushes) and
//!   the **flush-free** build (fences only) that Hippocrates re-persists in
//!   the §6.3 case study.

pub mod memcached;
pub mod pclht;
pub mod redis;

#[cfg(test)]
mod tests {
    use pmcheck::run_and_check;
    use pmvm::VmOptions;

    #[test]
    fn pclht_correct_is_clean_and_deterministic() {
        let m = crate::pclht::build_correct().unwrap();
        let c = run_and_check(&m, crate::pclht::ENTRY, VmOptions::default()).unwrap();
        assert!(c.report.is_clean(), "{}", c.report.render());
        assert_eq!(c.run.output.len(), 1);
    }

    #[test]
    fn pclht_bugs_detected() {
        for id in crate::pclht::BUG_IDS {
            let m = crate::pclht::build_buggy(id).unwrap();
            let c = run_and_check(&m, crate::pclht::ENTRY, VmOptions::default()).unwrap();
            assert!(!c.report.is_clean(), "{id} undetected");
        }
    }

    #[test]
    fn pclht_overflow_and_delete_work() {
        let m = crate::pclht::build_correct().unwrap();
        let r = pmvm::Vm::new(VmOptions::default())
            .run(&m, crate::pclht::ENTRY)
            .unwrap();
        // sum over keys: 1..=128 -> *9 (minus deleted), 129..=256 -> *7.
        // Deleted keys: 1,5,9,...,61 (step 4, 16 keys).
        let deleted: i64 = (1..=61).step_by(4).map(|k| k * 9).sum();
        let expect: i64 = (1..=128).map(|k| k * 9).sum::<i64>() - deleted
            + (129..=256).map(|k| k * 7).sum::<i64>();
        assert_eq!(r.output, vec![expect]);
    }

    #[test]
    fn memcached_correct_is_clean() {
        let m = crate::memcached::build_correct().unwrap();
        let c = run_and_check(&m, crate::memcached::ENTRY, VmOptions::default()).unwrap();
        assert!(c.report.is_clean(), "{}", c.report.render());
    }

    #[test]
    fn memcached_bugs_detected() {
        for id in crate::memcached::BUG_IDS {
            let m = crate::memcached::build_buggy(id).unwrap();
            let c = run_and_check(&m, crate::memcached::ENTRY, VmOptions::default()).unwrap();
            assert!(!c.report.is_clean(), "{id} undetected");
        }
    }

    #[test]
    fn memcached_buggy_outputs_match_correct() {
        let correct = {
            let m = crate::memcached::build_correct().unwrap();
            pmvm::Vm::new(VmOptions::default())
                .run(&m, crate::memcached::ENTRY)
                .unwrap()
                .output
        };
        for id in crate::memcached::BUG_IDS {
            let m = crate::memcached::build_buggy(id).unwrap();
            let out = pmvm::Vm::new(VmOptions::default())
                .run(&m, crate::memcached::ENTRY)
                .unwrap()
                .output;
            assert_eq!(out, correct, "{id}");
        }
    }

    fn explore_opts(budget: usize) -> pmexplore::ExploreOptions {
        pmexplore::ExploreOptions {
            budget,
            ..pmexplore::ExploreOptions::default()
        }
    }

    #[test]
    fn pclht_correct_survives_crash_state_exploration() {
        // The recovery oracle accepts every reachable crash state of the
        // correct build — the exploration analog of "correct is clean".
        let m = crate::pclht::build_correct().unwrap();
        let x = pmexplore::run_and_explore(&m, crate::pclht::ENTRY, &explore_opts(96)).unwrap();
        assert_eq!(
            x.report.oracle.as_ref().unwrap().entry,
            "recover",
            "the module's conventional recovery entry is discovered"
        );
        assert!(x.report.is_clean(), "{}", x.report.render());
        assert!(x.report.stats.distinct_states > 1);
    }

    #[test]
    fn memcached_correct_survives_crash_state_exploration() {
        let m = crate::memcached::build_correct().unwrap();
        let x = pmexplore::run_and_explore(&m, crate::memcached::ENTRY, &explore_opts(96)).unwrap();
        assert!(x.report.is_clean(), "{}", x.report.render());
    }

    #[test]
    fn redis_pm_port_survives_crash_state_exploration() {
        let ops = vec![
            crate::redis::RedisOp::set(1, 64),
            crate::redis::RedisOp::set(2, 64),
            crate::redis::RedisOp::set(1, 64),
            crate::redis::RedisOp::del(2),
            crate::redis::RedisOp::get(1),
        ];
        let mut m = crate::redis::build(crate::redis::RedisBuild::PmPort).unwrap();
        let entry = crate::redis::attach_workload(&mut m, "x", &ops);
        let x = pmexplore::run_and_explore(&m, &entry, &explore_opts(96)).unwrap();
        assert!(x.report.is_clean(), "{}", x.report.render());
    }

    #[test]
    fn recover_entries_judge_the_pristine_store_consistent() {
        // Booting each oracle on an untouched pool returns 0 (so a crash
        // before any operation is never a false positive).
        for (m, recover) in [
            (
                crate::pclht::build_correct().unwrap(),
                crate::pclht::RECOVER,
            ),
            (
                crate::memcached::build_correct().unwrap(),
                crate::memcached::RECOVER,
            ),
            (
                crate::redis::build(crate::redis::RedisBuild::PmPort).unwrap(),
                crate::redis::RECOVER,
            ),
        ] {
            let r = pmvm::Vm::new(VmOptions::default())
                .run(&m, recover)
                .unwrap();
            assert_eq!(r.return_value, Some(0), "{recover} on a fresh pool");
        }
    }

    #[test]
    fn redis_pm_port_is_clean_under_ycsb_like_load() {
        let ops: Vec<crate::redis::RedisOp> = (1..=50)
            .map(|k| crate::redis::RedisOp::set(k, 64))
            .chain((1..=50).map(crate::redis::RedisOp::get))
            .collect();
        let mut m = crate::redis::build(crate::redis::RedisBuild::PmPort).unwrap();
        let entry = crate::redis::attach_workload(&mut m, "bench", &ops);
        let c = run_and_check(&m, &entry, VmOptions::default()).unwrap();
        assert!(c.report.is_clean(), "{}", c.report.render());
        assert_eq!(c.run.output.len(), 1);
        assert_ne!(c.run.output[0], 0);
    }

    #[test]
    fn redis_flush_free_is_buggy_but_behaves_identically() {
        let ops: Vec<crate::redis::RedisOp> = (1..=30)
            .map(|k| crate::redis::RedisOp::set(k, 64))
            .chain((1..=30).map(crate::redis::RedisOp::get))
            .collect();
        let mut pm = crate::redis::build(crate::redis::RedisBuild::PmPort).unwrap();
        let e1 = crate::redis::attach_workload(&mut pm, "bench", &ops);
        let mut ff = crate::redis::build(crate::redis::RedisBuild::FlushFree).unwrap();
        let e2 = crate::redis::attach_workload(&mut ff, "bench", &ops);

        let c = run_and_check(&ff, &e2, VmOptions::default()).unwrap();
        assert!(!c.report.is_clean(), "flush-free must report bugs");

        let out_pm = pmvm::Vm::new(VmOptions::default())
            .run(&pm, &e1)
            .unwrap()
            .output;
        let out_ff = pmvm::Vm::new(VmOptions::default())
            .run(&ff, &e2)
            .unwrap()
            .output;
        assert_eq!(out_pm, out_ff);
    }

    #[test]
    fn redis_ops_roundtrip_values() {
        // SET then GET returns a nonzero checksum; DEL makes GET return 0.
        let ops = vec![
            crate::redis::RedisOp::set(7, 64),
            crate::redis::RedisOp::get(7),
            crate::redis::RedisOp::del(7),
            crate::redis::RedisOp::get(7),
        ];
        let mut m = crate::redis::build(crate::redis::RedisBuild::PmPort).unwrap();
        let entry = crate::redis::attach_workload(&mut m, "t", &ops);
        let r = pmvm::Vm::new(VmOptions::default()).run(&m, &entry).unwrap();
        // acc = get(7) checksum + del(7) (=1) + get(7) (=0).
        assert!(r.output[0] > 1);
    }

    #[test]
    fn redis_scan_and_rmw_execute() {
        let ops = vec![
            crate::redis::RedisOp::set(1, 64),
            crate::redis::RedisOp::set(2, 64),
            crate::redis::RedisOp::scan(1, 16),
            crate::redis::RedisOp::rmw(1, 64),
        ];
        let mut m = crate::redis::build(crate::redis::RedisBuild::PmPort).unwrap();
        let entry = crate::redis::attach_workload(&mut m, "t", &ops);
        let r = pmvm::Vm::new(VmOptions::default()).run(&m, &entry).unwrap();
        assert!(r.output[0] != 0);
    }
}
