//! P-CLHT build variants (RECIPE's persistent cache-line hash table).

use pmir::Module;
use pmlang::LangError;

/// The P-CLHT source.
pub const SRC: &str = include_str!("../pmc/pclht.pmc");

/// The example-application entry point (insert/delete/lookup, as in
/// RECIPE's evaluation).
pub const ENTRY: &str = "pclht_main";

/// The recovery oracle entry (returns 0 iff the durable invariants hold);
/// crash-state exploration boots it on every explored crash image.
pub const RECOVER: &str = "pclht_recover";

/// The two previously-undocumented bugs the paper reports in P-CLHT (§6.1).
pub const BUG_IDS: [&str; 2] = ["pclht-1", "pclht-2"];

fn compiler() -> pmlang::Compiler {
    minipmdk::library_compiler().source("pclht.pmc", SRC)
}

/// The correct build.
///
/// # Errors
///
/// Propagates compiler diagnostics.
pub fn build_correct() -> Result<Module, LangError> {
    compiler().compile()
}

/// The build with bug `id` seeded.
///
/// # Errors
///
/// Propagates compiler diagnostics.
pub fn build_buggy(id: &str) -> Result<Module, LangError> {
    compiler().elide_tag(id).compile()
}
