//! mini-Redis build variants and workload attachment (the Redis-pmem
//! analog, §6.3).

use pmir::{FunctionBuilder, Module, Operand, Type};
use pmlang::LangError;

/// The mini-Redis source.
pub const SRC: &str = include_str!("../pmc/redis.pmc");

/// The recovery oracle entry (returns 0 iff the durable invariants hold);
/// crash-state exploration boots it on every explored crash image.
pub const RECOVER: &str = "redis_recover";

/// Which Redis variant to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RedisBuild {
    /// The developer port: every flush present (plus the port's conservative
    /// extra header persist). The paper's Redis-pmem baseline.
    PmPort,
    /// All flushes removed, fences retained — the input Hippocrates
    /// re-persists (the paper's §6.3 methodology).
    FlushFree,
}

/// One key-value operation for the encoded workload stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RedisOp {
    /// 1=SET 2=GET 3=DEL 4=SCAN 5=RMW (read-modify-write).
    pub code: u8,
    /// The key.
    pub key: i64,
    /// Value length (SET/RMW) or scan count (SCAN); ignored otherwise.
    pub len: i64,
}

impl RedisOp {
    /// A SET of `len` value bytes.
    pub fn set(key: i64, len: i64) -> Self {
        RedisOp { code: 1, key, len }
    }

    /// A GET.
    pub fn get(key: i64) -> Self {
        RedisOp {
            code: 2,
            key,
            len: 0,
        }
    }

    /// A DEL.
    pub fn del(key: i64) -> Self {
        RedisOp {
            code: 3,
            key,
            len: 0,
        }
    }

    /// A SCAN of `count` buckets starting at `key`'s bucket.
    pub fn scan(key: i64, count: i64) -> Self {
        RedisOp {
            code: 4,
            key,
            len: count,
        }
    }

    /// A read-modify-write of `len` value bytes.
    pub fn rmw(key: i64, len: i64) -> Self {
        RedisOp { code: 5, key, len }
    }
}

/// Builds the requested Redis variant (library + application, no workload
/// entry yet).
///
/// # Errors
///
/// Propagates compiler diagnostics.
pub fn build(build: RedisBuild) -> Result<Module, LangError> {
    let c = minipmdk::library_compiler().source("redis.pmc", SRC);
    let c = match build {
        RedisBuild::PmPort => c.feature("pmport"),
        RedisBuild::FlushFree => c,
    };
    c.compile()
}

/// Encodes `ops` into the module as a global blob and synthesizes a
/// zero-argument entry function that opens the store, allocates the
/// volatile request buffers, runs the stream, and prints the response
/// checksum. Returns the entry function's name (`"run_<name>"`).
///
/// # Panics
///
/// Panics if `name` collides with an existing function or the Redis API
/// functions are missing from the module.
pub fn attach_workload(m: &mut Module, name: &str, ops: &[RedisOp]) -> String {
    let mut blob = Vec::with_capacity(ops.len() * 24);
    for op in ops {
        blob.extend_from_slice(&i64::from(op.code).to_le_bytes());
        blob.extend_from_slice(&op.key.to_le_bytes());
        blob.extend_from_slice(&op.len.to_le_bytes());
    }
    let gid = m.add_global(format!("ops_{name}"), blob.len().max(8) as u64, blob);

    let open = m.function_by_name("redis_open").expect("redis_open");
    let run = m.function_by_name("redis_run").expect("redis_run");
    let entry_name = format!("run_{name}");
    let f = m.declare_function(&entry_name, vec![], Type::Void);
    // Synthetic instructions still carry a source location (pointing at a
    // pseudo-file) so every diagnostic downstream — dynamic or static — can
    // name where its store came from.
    let file = m.intern_file(format!("<workload:{name}>"));
    let mut b = FunctionBuilder::new(m, f);
    let e = b.entry_block();
    b.switch_to(e);
    b.set_loc(pmir::SrcLoc {
        file,
        line: 1,
        col: 1,
    });
    let pool = b.call(open, vec![]).expect("redis_open returns the pool");
    let cmdbuf = b.heap_alloc(8192i64);
    let argbuf = b.heap_alloc(4096i64);
    let response = b.heap_alloc(4096i64);
    let opsp = b.global_addr(gid);
    let acc = b
        .call(
            run,
            vec![
                Operand::Value(pool),
                Operand::Value(opsp),
                Operand::Const(ops.len() as i64),
                Operand::Value(cmdbuf),
                Operand::Value(argbuf),
                Operand::Value(response),
            ],
        )
        .expect("redis_run returns the accumulator");
    b.print(acc);
    b.ret(None);
    b.finish();
    pmir::verify::verify_function(m, f).expect("workload entry verifies");
    entry_name
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_constructors() {
        assert_eq!(RedisOp::set(1, 64).code, 1);
        assert_eq!(RedisOp::get(1).code, 2);
        assert_eq!(RedisOp::del(1).code, 3);
        assert_eq!(RedisOp::scan(1, 8).len, 8);
        assert_eq!(RedisOp::rmw(1, 64).code, 5);
    }

    #[test]
    fn attach_two_workloads_to_one_module() {
        let mut m = build(RedisBuild::PmPort).unwrap();
        let a = attach_workload(&mut m, "load", &[RedisOp::set(1, 64)]);
        let b = attach_workload(&mut m, "run", &[RedisOp::get(1)]);
        assert_ne!(a, b);
        pmir::verify::verify_module(&m).unwrap();
    }
}
