//! Property tests of the machine model: the §4 event algebra holds on
//! random operation sequences.

use pmem_sim::{layout, FenceKind, FlushKind, Machine, PmMedia};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum MOp {
    Store { off: u16, val: u8 },
    Flush { off: u16, kind: u8 },
    Fence { strong: bool },
    Evict { off: u16 },
}

const POOL: u64 = 0;
const POOL_SIZE: u64 = 4096;

fn op_strategy() -> impl Strategy<Value = MOp> {
    prop_oneof![
        4 => (0u16..POOL_SIZE as u16 - 8, any::<u8>()).prop_map(|(off, val)| MOp::Store { off, val }),
        3 => (0u16..POOL_SIZE as u16 - 8, 0u8..3).prop_map(|(off, kind)| MOp::Flush { off, kind }),
        2 => any::<bool>().prop_map(|strong| MOp::Fence { strong }),
        1 => (0u16..POOL_SIZE as u16 - 8).prop_map(|off| MOp::Evict { off }),
    ]
}

fn flush_kind(k: u8) -> FlushKind {
    [FlushKind::Clwb, FlushKind::ClflushOpt, FlushKind::Clflush][k as usize % 3]
}

/// A byte-level reference model of the durability semantics: the medium
/// view tracks, per byte, the value guaranteed durable.
struct Reference {
    cache: Vec<u8>,
    media: Vec<u8>,
    dirty: std::collections::BTreeSet<u64>,
    pending: std::collections::BTreeSet<u64>,
}

impl Reference {
    fn new() -> Self {
        Reference {
            cache: vec![0; POOL_SIZE as usize],
            media: vec![0; POOL_SIZE as usize],
            dirty: Default::default(),
            pending: Default::default(),
        }
    }

    fn line(off: u64) -> u64 {
        off & !63
    }

    fn writeback(&mut self, line: u64) {
        let s = line as usize;
        let e = (line + 64).min(POOL_SIZE) as usize;
        self.media[s..e].copy_from_slice(&self.cache[s..e]);
        self.dirty.remove(&line);
        self.pending.remove(&line);
    }

    fn apply(&mut self, op: &MOp) {
        match *op {
            MOp::Store { off, val } => {
                self.cache[off as usize] = val;
                self.dirty.insert(Self::line(u64::from(off)));
            }
            MOp::Flush { off, kind } => {
                let line = Self::line(u64::from(off));
                if self.dirty.contains(&line) {
                    if flush_kind(kind).is_weakly_ordered() {
                        self.pending.insert(line);
                    } else {
                        self.writeback(line);
                    }
                }
            }
            MOp::Fence { .. } => {
                for line in std::mem::take(&mut self.pending) {
                    self.writeback(line);
                }
            }
            MOp::Evict { off } => {
                let line = Self::line(u64::from(off));
                if self.dirty.contains(&line) {
                    self.writeback(line);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The machine's crash image matches a byte-level reference model after
    /// any operation sequence.
    #[test]
    fn crash_image_matches_reference(ops in proptest::collection::vec(op_strategy(), 0..120)) {
        let mut m = Machine::default();
        let base = m.map_pool(POOL, POOL_SIZE).unwrap();
        let mut r = Reference::new();
        for op in &ops {
            match *op {
                MOp::Store { off, val } => {
                    m.store(base + u64::from(off), &[val]).unwrap();
                }
                MOp::Flush { off, kind } => {
                    m.flush(flush_kind(kind), base + u64::from(off)).unwrap();
                }
                MOp::Fence { strong } => {
                    m.fence(if strong { FenceKind::Mfence } else { FenceKind::Sfence });
                }
                MOp::Evict { off } => m.evict(base + u64::from(off)),
            }
            r.apply(op);
        }
        let img = m.crash_image();
        prop_assert_eq!(img.pool_bytes(POOL).unwrap(), &r.media[..]);
        // The cache view matches too.
        prop_assert_eq!(m.peek(base, POOL_SIZE).unwrap(), r.cache.clone());
        // Dirty/pending bookkeeping agrees.
        let machine_dirty: Vec<u64> =
            m.dirty_pm_lines().iter().map(|l| l - base).collect();
        let ref_dirty: Vec<u64> = r.dirty.iter().copied().collect();
        prop_assert_eq!(machine_dirty, ref_dirty);
    }

    /// Restart semantics: re-attaching the medium shows exactly the crash
    /// image, and all cache state is gone.
    #[test]
    fn restart_equals_crash_image(ops in proptest::collection::vec(op_strategy(), 0..60)) {
        let mut m = Machine::default();
        let base = m.map_pool(POOL, POOL_SIZE).unwrap();
        for op in &ops {
            match *op {
                MOp::Store { off, val } => {
                    m.store(base + u64::from(off), &[val]).unwrap();
                }
                MOp::Flush { off, kind } => {
                    m.flush(flush_kind(kind), base + u64::from(off)).unwrap();
                }
                MOp::Fence { strong } => {
                    m.fence(if strong { FenceKind::Mfence } else { FenceKind::Sfence });
                }
                MOp::Evict { off } => m.evict(base + u64::from(off)),
            }
        }
        let img = m.crash_image();
        let media: PmMedia = m.into_media();
        let mut m2 = Machine::with_media(media, Default::default());
        let base2 = m2.map_pool(POOL, POOL_SIZE).unwrap();
        prop_assert_eq!(base2, base);
        prop_assert_eq!(m2.peek(base2, POOL_SIZE).unwrap(), img.pool_bytes(POOL).unwrap());
        prop_assert!(m2.dirty_pm_lines().is_empty());
    }

    /// Monotonicity of durability: adding a trailing flush+fence to any
    /// sequence makes every line's durable content equal the cache content
    /// (full drain), and never changes the *cache* view.
    #[test]
    fn trailing_persist_drains_everything(ops in proptest::collection::vec(op_strategy(), 0..80)) {
        let mut m = Machine::default();
        let base = m.map_pool(POOL, POOL_SIZE).unwrap();
        for op in &ops {
            match *op {
                MOp::Store { off, val } => {
                    m.store(base + u64::from(off), &[val]).unwrap();
                }
                MOp::Flush { off, kind } => {
                    m.flush(flush_kind(kind), base + u64::from(off)).unwrap();
                }
                MOp::Fence { strong } => {
                    m.fence(if strong { FenceKind::Mfence } else { FenceKind::Sfence });
                }
                MOp::Evict { off } => m.evict(base + u64::from(off)),
            }
        }
        let cache_before = m.peek(base, POOL_SIZE).unwrap();
        let mut line = base;
        while line < base + POOL_SIZE {
            m.flush(FlushKind::Clwb, line).unwrap();
            line += layout::CACHE_LINE;
        }
        m.fence(FenceKind::Sfence);
        prop_assert_eq!(&m.peek(base, POOL_SIZE).unwrap(), &cache_before);
        let img = m.crash_image();
        prop_assert_eq!(img.pool_bytes(POOL).unwrap(), &cache_before[..]);
        prop_assert!(m.dirty_pm_lines().is_empty());
    }

    /// Volatile memory is never captured by crash images.
    #[test]
    fn volatile_state_never_durable(vals in proptest::collection::vec(any::<u8>(), 1..32)) {
        let mut m = Machine::default();
        m.map_pool(POOL, POOL_SIZE).unwrap();
        let buf = m.heap_alloc(64).unwrap();
        for (i, v) in vals.iter().enumerate() {
            m.store(buf + (i as u64 % 56), &[*v]).unwrap();
            m.flush(FlushKind::Clwb, buf).unwrap();
        }
        m.fence(FenceKind::Sfence);
        let img = m.crash_image();
        prop_assert_eq!(img.pool_count(), 1);
        prop_assert!(img.pool_bytes(POOL).unwrap().iter().all(|&b| b == 0));
    }
}
