//! `pmem-sim` — a cache-line-accurate simulator of a machine with persistent
//! memory (PM).
//!
//! This crate stands in for the Intel Optane DC platform used in the
//! Hippocrates paper (ASPLOS '21). It models exactly the event algebra the
//! paper's §4 proofs are stated over:
//!
//! * stores land in a volatile CPU cache; a line is *dirty* until written
//!   back to the PM medium;
//! * weakly-ordered flushes (`CLWB`, `CLFLUSHOPT`) only *schedule* a
//!   write-back, which completes at the next fence;
//! * `CLFLUSH` writes back synchronously (strongly ordered);
//! * fences (`SFENCE`/`MFENCE`) drain pending write-backs, establishing the
//!   paper's durability ordering `X -> F(X) -> M -> I`;
//! * a crash discards the cache; only the medium survives.
//!
//! The simulator also owns the volatile address spaces (stack, heap,
//! globals) so the `pmvm` interpreter can stay a thin dispatch loop, and it
//! charges a configurable [`CostModel`] per operation so benchmark harnesses
//! can report simulated cycles.
//!
//! # Example
//!
//! ```
//! use pmem_sim::{Machine, FlushKind, FenceKind};
//!
//! let mut m = Machine::default();
//! let pool = m.map_pool(0, 4096).unwrap();
//! m.store(pool, &42i64.to_le_bytes()).unwrap();
//! assert_eq!(m.load_int(pool, 8).unwrap(), 42);
//! // Not yet durable: a crash image still holds the old bytes.
//! assert_eq!(m.crash_image().pool_bytes(0).unwrap()[0], 0);
//! m.flush(FlushKind::Clwb, pool).unwrap();
//! m.fence(FenceKind::Sfence);
//! assert_eq!(m.crash_image().pool_bytes(0).unwrap()[0], 42);
//! ```

pub mod cost;
pub mod crash;
pub mod error;
pub mod layout;
pub mod lineset;
pub mod machine;
pub mod media;
pub mod stats;

pub use cost::CostModel;
pub use crash::CrashImage;
pub use error::MemError;
pub use layout::{Region, CACHE_LINE};
pub use lineset::LineSet;
pub use machine::Machine;
pub use media::PmMedia;
pub use stats::MachineStats;

pub use kinds::{FenceKind, FlushKind};

/// Flush/fence kinds, mirrored from `pmir` to avoid a dependency edge (pmir
/// is the IR; pmem-sim is the machine; `pmvm` bridges the two).
mod kinds {
    /// Cache-line flush instruction family; see `pmir::FlushKind`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
    pub enum FlushKind {
        /// Write back, keep the line cached; weakly ordered.
        Clwb,
        /// Write back and evict; weakly ordered.
        ClflushOpt,
        /// Write back and evict; strongly ordered (no fence needed).
        Clflush,
    }

    impl FlushKind {
        /// Whether a fence is required to order this flush.
        pub fn is_weakly_ordered(self) -> bool {
            !matches!(self, FlushKind::Clflush)
        }
    }

    /// Memory fence family; see `pmir::FenceKind`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
    pub enum FenceKind {
        /// Orders stores and weak flushes.
        Sfence,
        /// Orders all memory operations.
        Mfence,
    }
}
