//! The simulated machine: all address spaces, the PM cache model, and cycle
//! accounting.

use crate::cost::CostModel;
use crate::crash::CrashImage;
use crate::error::MemError;
use crate::layout::{
    line_of, Region, CACHE_LINE, GLOBAL_BASE, HEAP_BASE, PM_BASE, REGION_SPAN, STACK_BASE,
};
use crate::lineset::LineSet;
use crate::media::PmMedia;
use crate::stats::MachineStats;
use crate::{FenceKind, FlushKind};
use std::collections::BTreeMap;

/// A heap allocation record.
#[derive(Debug, Clone, Copy)]
struct HeapAlloc {
    size: u64,
    live: bool,
}

/// One mapped PM pool's volatile view (the cache-visible bytes).
#[derive(Debug, Clone)]
struct PoolCache {
    hint: u64,
    base: u64,
    bytes: Vec<u8>,
}

/// The machine. See the [crate docs](crate) for the model.
#[derive(Debug, Clone)]
pub struct Machine {
    cost: CostModel,
    stats: MachineStats,

    // Volatile regions.
    stack: Vec<u8>,
    stack_top: u64, // offset from STACK_BASE of the next free byte
    frames: Vec<u64>,
    heap: Vec<u8>,
    heap_top: u64,
    heap_allocs: BTreeMap<u64, HeapAlloc>, // keyed by absolute base address
    globals: Vec<u8>,
    globals_top: u64,

    // Persistent region.
    media: PmMedia,
    pools: Vec<PoolCache>, // sorted by base
    dirty_lines: LineSet,
    pending_pm_lines: LineSet,
    pending_volatile_lines: LineSet,

    // Fault injection (None in production: one branch per PM access).
    injector: Option<pmfault::Injector>,
}

impl Default for Machine {
    fn default() -> Self {
        Machine::new(CostModel::default())
    }
}

impl Machine {
    /// A fresh machine (empty medium) with the given cost model.
    pub fn new(cost: CostModel) -> Self {
        Machine::with_media(PmMedia::new(), cost)
    }

    /// A machine booted against an existing persistent medium (a "restart").
    pub fn with_media(media: PmMedia, cost: CostModel) -> Self {
        Machine {
            cost,
            stats: MachineStats::default(),
            stack: vec![],
            stack_top: 0,
            frames: vec![],
            heap: vec![],
            heap_top: 0,
            heap_allocs: BTreeMap::new(),
            globals: vec![],
            globals_top: 0,
            media,
            pools: vec![],
            dirty_lines: LineSet::new(),
            pending_pm_lines: LineSet::new(),
            pending_volatile_lines: LineSet::new(),
            injector: None,
        }
    }

    /// Arms (or disarms) fault injection on this machine's PM access paths.
    ///
    /// The injector's counters are owned by value: cloning the machine forks
    /// them, so crash-image replicas keep counting deterministically from
    /// the clone point.
    pub fn set_injector(&mut self, injector: Option<pmfault::Injector>) {
        self.injector = injector;
    }

    /// The injection log: one line per fault actually injected (empty when
    /// no injector is armed). Each line is the structured diagnostic the
    /// fault campaign asserts on.
    pub fn injected_faults(&self) -> &[String] {
        self.injector.as_ref().map_or(&[], |i| i.injected())
    }

    /// Execution counters so far.
    pub fn stats(&self) -> &MachineStats {
        &self.stats
    }

    /// The cost model in effect.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Charges `c` cycles (used by the interpreter for instruction dispatch).
    pub fn charge(&mut self, c: u64) {
        self.stats.cycles += c;
    }

    /// Charges the fixed per-instruction dispatch cost.
    pub fn charge_inst(&mut self) {
        self.stats.cycles += self.cost.inst_base;
    }

    /// Charges a call/return pair.
    pub fn charge_call(&mut self) {
        self.stats.cycles += self.cost.call;
    }

    // ----- volatile allocators ---------------------------------------------

    /// Pushes a stack frame; pair with [`Machine::pop_frame`].
    pub fn push_frame(&mut self) {
        self.frames.push(self.stack_top);
    }

    /// Pops the current frame, releasing its allocations.
    ///
    /// # Panics
    ///
    /// Panics if no frame is active.
    pub fn pop_frame(&mut self) {
        self.stack_top = self.frames.pop().expect("pop_frame with no active frame");
    }

    /// Allocates `size` bytes (8-aligned) in the current stack frame.
    ///
    /// # Errors
    ///
    /// Fails with [`MemError::OutOfMemory`] if the stack window is exhausted.
    pub fn stack_alloc(&mut self, size: u64) -> Result<u64, MemError> {
        let size = align8(size);
        if self.stack_top + size > REGION_SPAN {
            return Err(MemError::OutOfMemory { what: "stack" });
        }
        let addr = STACK_BASE + self.stack_top;
        self.stack_top += size;
        if self.stack.len() < self.stack_top as usize {
            self.stack.resize(self.stack_top as usize, 0);
        }
        Ok(addr)
    }

    /// Allocates `size` bytes of heap ("DRAM").
    ///
    /// # Errors
    ///
    /// Fails with [`MemError::OutOfMemory`] if the heap window is exhausted.
    pub fn heap_alloc(&mut self, size: u64) -> Result<u64, MemError> {
        let size = align8(size.max(1));
        if self.heap_top + size > REGION_SPAN {
            return Err(MemError::OutOfMemory { what: "heap" });
        }
        let addr = HEAP_BASE + self.heap_top;
        self.heap_top += size;
        if self.heap.len() < self.heap_top as usize {
            self.heap.resize(self.heap_top as usize, 0);
        }
        self.heap_allocs
            .insert(addr, HeapAlloc { size, live: true });
        self.stats.heap_live_bytes += size;
        self.stats.heap_peak_bytes = self.stats.heap_peak_bytes.max(self.stats.heap_live_bytes);
        Ok(addr)
    }

    /// Frees a heap allocation.
    ///
    /// # Errors
    ///
    /// Fails with [`MemError::InvalidFree`] if `addr` is not the base of a
    /// live allocation.
    pub fn heap_free(&mut self, addr: u64) -> Result<(), MemError> {
        match self.heap_allocs.get_mut(&addr) {
            Some(a) if a.live => {
                a.live = false;
                self.stats.heap_live_bytes -= a.size;
                Ok(())
            }
            _ => Err(MemError::InvalidFree { addr }),
        }
    }

    /// Installs a global of `size` bytes with initial contents `init`
    /// (zero-extended); returns its address.
    ///
    /// # Errors
    ///
    /// Fails with [`MemError::OutOfMemory`] if the globals window is
    /// exhausted.
    pub fn add_global(&mut self, size: u64, init: &[u8]) -> Result<u64, MemError> {
        let size = align8(size.max(init.len() as u64));
        if self.globals_top + size > REGION_SPAN {
            return Err(MemError::OutOfMemory { what: "globals" });
        }
        let addr = GLOBAL_BASE + self.globals_top;
        self.globals_top += size;
        self.globals.resize(self.globals_top as usize, 0);
        let off = (addr - GLOBAL_BASE) as usize;
        self.globals[off..off + init.len()].copy_from_slice(init);
        Ok(addr)
    }

    // ----- PM pools ---------------------------------------------------------

    /// Maps the pool identified by `hint`, creating it on the medium if it
    /// does not exist. Remapping an existing pool returns the same base and
    /// *reads the cache view back from the durable medium* — exactly what a
    /// process restart observes.
    ///
    /// # Errors
    ///
    /// Fails with [`MemError::PoolSizeMismatch`] if the pool exists with a
    /// different size, or [`MemError::OutOfMemory`] if the PM window is full.
    pub fn map_pool(&mut self, hint: u64, size: u64) -> Result<u64, MemError> {
        if let Some(p) = self.pools.iter().find(|p| p.hint == hint) {
            let have = p.bytes.len() as u64;
            if have != size {
                return Err(MemError::PoolSizeMismatch {
                    pool: hint,
                    have,
                    want: size,
                });
            }
            return Ok(p.base);
        }
        let size = align_up(size.max(1), CACHE_LINE);
        let (base, fresh) = match self.media.pool(hint) {
            Some(pm) => {
                let have = pm.bytes.len() as u64;
                if have != size {
                    return Err(MemError::PoolSizeMismatch {
                        pool: hint,
                        have,
                        want: size,
                    });
                }
                (pm.base, false)
            }
            None => {
                let base = align_up(self.media.high_water().unwrap_or(PM_BASE), 4096);
                if base + size > PM_BASE + REGION_SPAN {
                    return Err(MemError::OutOfMemory { what: "pm" });
                }
                self.media.insert(hint, base, size);
                (base, true)
            }
        };
        let bytes = if fresh {
            vec![0; size as usize]
        } else {
            self.media.pool(hint).expect("pool exists").bytes.clone()
        };
        self.pools.push(PoolCache { hint, base, bytes });
        self.pools.sort_by_key(|p| p.base);
        Ok(base)
    }

    fn pool_index_of(&self, addr: u64) -> Option<usize> {
        self.pools
            .iter()
            .position(|p| addr >= p.base && addr < p.base + p.bytes.len() as u64)
    }

    // ----- access checking ---------------------------------------------------

    fn check_range(&self, addr: u64, len: u64) -> Result<Region, MemError> {
        if len == 0 {
            return Region::of(addr).ok_or(MemError::Unmapped { addr });
        }
        let region = Region::of(addr).ok_or(MemError::Unmapped { addr })?;
        let end = addr
            .checked_add(len)
            .ok_or(MemError::OutOfBounds { addr, len })?;
        let oob = MemError::OutOfBounds { addr, len };
        match region {
            Region::Stack => {
                if end <= STACK_BASE + self.stack_top {
                    Ok(region)
                } else {
                    Err(oob)
                }
            }
            Region::Heap => {
                let (base, alloc) = self
                    .heap_allocs
                    .range(..=addr)
                    .next_back()
                    .ok_or(MemError::Unmapped { addr })?;
                if !alloc.live {
                    return Err(MemError::UseAfterFree { addr });
                }
                if end <= base + alloc.size {
                    Ok(region)
                } else {
                    Err(oob)
                }
            }
            Region::Global => {
                if end <= GLOBAL_BASE + self.globals_top {
                    Ok(region)
                } else {
                    Err(oob)
                }
            }
            Region::Pm => {
                let i = self
                    .pool_index_of(addr)
                    .ok_or(MemError::Unmapped { addr })?;
                let p = &self.pools[i];
                if end <= p.base + p.bytes.len() as u64 {
                    Ok(region)
                } else {
                    Err(oob)
                }
            }
        }
    }

    fn raw_slice_mut(&mut self, region: Region, addr: u64, len: u64) -> &mut [u8] {
        let (buf, base): (&mut Vec<u8>, u64) = match region {
            Region::Stack => (&mut self.stack, STACK_BASE),
            Region::Heap => (&mut self.heap, HEAP_BASE),
            Region::Global => (&mut self.globals, GLOBAL_BASE),
            Region::Pm => {
                let i = self.pool_index_of(addr).expect("checked");
                let p = &mut self.pools[i];
                let off = (addr - p.base) as usize;
                return &mut p.bytes[off..off + len as usize];
            }
        };
        let off = (addr - base) as usize;
        &mut buf[off..off + len as usize]
    }

    fn raw_slice(&self, region: Region, addr: u64, len: u64) -> &[u8] {
        let (buf, base): (&Vec<u8>, u64) = match region {
            Region::Stack => (&self.stack, STACK_BASE),
            Region::Heap => (&self.heap, HEAP_BASE),
            Region::Global => (&self.globals, GLOBAL_BASE),
            Region::Pm => {
                let i = self.pool_index_of(addr).expect("checked");
                let p = &self.pools[i];
                let off = (addr - p.base) as usize;
                return &p.bytes[off..off + len as usize];
            }
        };
        let off = (addr - base) as usize;
        &buf[off..off + len as usize]
    }

    // ----- loads and stores ---------------------------------------------------

    /// Stores `bytes` at `addr`, dirtying the covered PM cache lines.
    ///
    /// # Errors
    ///
    /// Returns a [`MemError`] on an invalid access.
    pub fn store(&mut self, addr: u64, bytes: &[u8]) -> Result<(), MemError> {
        let len = bytes.len() as u64;
        // Fast path: an access wholly inside the live stack segment — the
        // overwhelmingly common case (locals, spills) — needs no region
        // dispatch, no pool search, and no injector consult. Accounting is
        // identical to the general volatile path below.
        if addr >= STACK_BASE && len > 0 {
            if let Some(end) = addr.checked_add(len) {
                if end <= STACK_BASE + self.stack_top {
                    let off = (addr - STACK_BASE) as usize;
                    self.stack[off..off + len as usize].copy_from_slice(bytes);
                    self.stats.volatile_stores += 1;
                    self.stats.cycles += self.cost.dram_access;
                    return Ok(());
                }
            }
        }
        let region = self.check_range(addr, len)?;
        let mut write_len = len;
        if region.is_pm() {
            if let Some(inj) = self.injector.as_mut() {
                if let Some(pmfault::FaultKind::TornStore) = inj.fire(pmfault::FaultSite::SimStore)
                {
                    if len >= 2 {
                        // Only the low half of the store lands; the upper
                        // bytes keep their stale contents (a torn store
                        // within the cache line).
                        write_len = len / 2;
                        inj.record(format!(
                            "sim.store: torn store at {addr:#x} ({write_len}/{len} bytes persisted)"
                        ));
                    }
                }
            }
        }
        self.raw_slice_mut(region, addr, write_len)
            .copy_from_slice(&bytes[..write_len as usize]);
        if region.is_pm() {
            self.stats.pm_stores += 1;
            self.stats.cycles += self.cost.pm_store;
            self.dirty_lines.insert_range(addr, len);
        } else {
            self.stats.volatile_stores += 1;
            self.stats.cycles += self.cost.dram_access;
        }
        Ok(())
    }

    /// Loads `out.len()` bytes from `addr`.
    ///
    /// # Errors
    ///
    /// Returns a [`MemError`] on an invalid access.
    pub fn load(&mut self, addr: u64, out: &mut [u8]) -> Result<(), MemError> {
        let len = out.len() as u64;
        // Fast path: see `store` — same conditions, same accounting.
        if addr >= STACK_BASE && len > 0 {
            if let Some(end) = addr.checked_add(len) {
                if end <= STACK_BASE + self.stack_top {
                    let off = (addr - STACK_BASE) as usize;
                    out.copy_from_slice(&self.stack[off..off + len as usize]);
                    self.stats.volatile_loads += 1;
                    self.stats.cycles += self.cost.dram_access;
                    return Ok(());
                }
            }
        }
        let region = self.check_range(addr, len)?;
        if region.is_pm() {
            if let Some(inj) = self.injector.as_mut() {
                if let Some(pmfault::FaultKind::MediaReadError) =
                    inj.fire(pmfault::FaultSite::SimMediaRead)
                {
                    inj.record(format!(
                        "sim.media-read: read error at {addr:#x} ({len} bytes)"
                    ));
                    return Err(MemError::MediaRead { addr });
                }
            }
        }
        out.copy_from_slice(self.raw_slice(region, addr, len));
        if region.is_pm() {
            self.stats.pm_loads += 1;
            self.stats.cycles += self.cost.pm_load;
        } else {
            self.stats.volatile_loads += 1;
            self.stats.cycles += self.cost.dram_access;
        }
        Ok(())
    }

    /// Loads a little-endian zero-extended integer of `len` bytes (1/2/4/8).
    ///
    /// # Errors
    ///
    /// Returns a [`MemError`] on an invalid access.
    pub fn load_int(&mut self, addr: u64, len: u8) -> Result<i64, MemError> {
        let mut buf = [0u8; 8];
        self.load(addr, &mut buf[..len as usize])?;
        Ok(i64::from_le_bytes(buf))
    }

    /// Stores the low `len` bytes of `value` little-endian.
    ///
    /// # Errors
    ///
    /// Returns a [`MemError`] on an invalid access.
    pub fn store_int(&mut self, addr: u64, len: u8, value: i64) -> Result<(), MemError> {
        let bytes = value.to_le_bytes();
        self.store(addr, &bytes[..len as usize])
    }

    /// `memcpy(dst, src, len)`. Regions may differ; overlap is not supported
    /// and yields the source snapshot semantics (a temporary buffer is used).
    ///
    /// # Errors
    ///
    /// Returns a [`MemError`] on an invalid access.
    pub fn memcpy(&mut self, dst: u64, src: u64, len: u64) -> Result<(), MemError> {
        if len == 0 {
            return Ok(());
        }
        let src_region = self.check_range(src, len)?;
        let dst_region = self.check_range(dst, len)?;
        let tmp = self.raw_slice(src_region, src, len).to_vec();
        self.raw_slice_mut(dst_region, dst, len)
            .copy_from_slice(&tmp);
        self.account_bulk_write(dst_region, dst, len);
        self.stats.cycles += self.cost.bulk_byte * len.div_ceil(16);
        if src_region.is_pm() {
            self.stats.pm_loads += len.div_ceil(8);
        } else {
            self.stats.volatile_loads += len.div_ceil(8);
        }
        Ok(())
    }

    /// `memset(dst, val, len)`.
    ///
    /// # Errors
    ///
    /// Returns a [`MemError`] on an invalid access.
    pub fn memset(&mut self, dst: u64, val: u8, len: u64) -> Result<(), MemError> {
        if len == 0 {
            return Ok(());
        }
        let region = self.check_range(dst, len)?;
        self.raw_slice_mut(region, dst, len).fill(val);
        self.account_bulk_write(region, dst, len);
        self.stats.cycles += self.cost.bulk_byte * len.div_ceil(16);
        Ok(())
    }

    fn account_bulk_write(&mut self, region: Region, dst: u64, len: u64) {
        let words = len.div_ceil(16);
        if region.is_pm() {
            self.stats.pm_stores += words;
            self.stats.cycles += self.cost.pm_store * words;
            self.dirty_lines.insert_range(dst, len);
        } else {
            self.stats.volatile_stores += words;
            self.stats.cycles += self.cost.dram_access * words;
        }
    }

    // ----- persistence operations ----------------------------------------------

    /// Executes a cache-line flush of the line containing `addr`.
    ///
    /// Weak flushes only schedule the write-back (completed at the next
    /// fence); `CLFLUSH` writes back synchronously. Flushing a volatile line
    /// is legal and costs real time — this is the waste the paper's
    /// interprocedural fixes avoid.
    ///
    /// # Errors
    ///
    /// Returns a [`MemError`] if `addr` is not a mapped address.
    pub fn flush(&mut self, kind: FlushKind, addr: u64) -> Result<(), MemError> {
        let region = self.check_range(addr, 1)?;
        self.stats.cycles += self.cost.flush_issue;
        let line = line_of(addr);
        if region.is_pm() {
            self.stats.pm_flushes += 1;
            if let Some(inj) = self.injector.as_mut() {
                if let Some(pmfault::FaultKind::DroppedFlush) =
                    inj.fire(pmfault::FaultSite::SimFlush)
                {
                    // Silently dropped: the line stays dirty and no
                    // write-back is ever scheduled.
                    inj.record(format!("sim.flush: dropped flush of line {line:#x}"));
                    return Ok(());
                }
            }
            if !self.dirty_lines.contains(line) {
                self.stats.redundant_flushes += 1;
                return Ok(());
            }
            if kind.is_weakly_ordered() {
                self.pending_pm_lines.insert(line);
            } else {
                self.write_back_line(line);
                self.stats.pm_lines_drained += 1;
                self.stats.cycles += self.cost.pm_writeback;
            }
        } else {
            // A flush of volatile data starts its DRAM write-back
            // immediately (the bandwidth is consumed whether or not a fence
            // ever waits on it) — this is the §3.2 cost of intraprocedural
            // fixes landing in helpers that also run on DRAM.
            self.stats.volatile_flushes += 1;
            self.stats.volatile_lines_drained += 1;
            self.stats.cycles += self.cost.dram_writeback;
        }
        Ok(())
    }

    /// Executes a memory fence, draining all pending write-backs.
    pub fn fence(&mut self, kind: FenceKind) {
        self.stats.fences += 1;
        self.stats.cycles += match kind {
            FenceKind::Sfence => self.cost.sfence_base,
            FenceKind::Mfence => self.cost.mfence_base,
        };
        for line in self.pending_pm_lines.take_sorted() {
            self.write_back_line(line);
            self.stats.pm_lines_drained += 1;
            self.stats.cycles += self.cost.pm_writeback;
        }
        // Volatile write-backs were charged at issue; the fence only
        // orders them.
        self.pending_volatile_lines.clear();
    }

    /// Spontaneously evicts the (PM) cache line containing `addr`, writing it
    /// back if dirty. Models cache pressure; used by the do-no-harm property
    /// tests, which rely on eviction being *possible* at any time (paper
    /// Lemma 2).
    pub fn evict(&mut self, addr: u64) {
        let line = line_of(addr);
        if self.dirty_lines.contains(line) {
            self.write_back_line(line);
            self.pending_pm_lines.remove(line);
        }
    }

    fn write_back_line(&mut self, line: u64) {
        let Some(i) = self.pool_index_of(line) else {
            return;
        };
        let p = &self.pools[i];
        let off = (line - p.base) as usize;
        let end = (off + CACHE_LINE as usize).min(p.bytes.len());
        let bytes = p.bytes[off..end].to_vec();
        let hint = p.hint;
        let pm = self.media.pool_mut(hint).expect("mapped pool has media");
        pm.bytes[off..end].copy_from_slice(&bytes);
        self.dirty_lines.remove(line);
    }

    // ----- crash simulation -----------------------------------------------------

    /// The durable state if the machine crashed right now (cache contents
    /// lost, pending write-backs *not* completed — the adversarial case).
    pub fn crash_image(&self) -> CrashImage {
        CrashImage::of_media(&self.media)
    }

    /// The durable state if the machine crashed right now *and* the pending
    /// write-backs in `completed` raced to the medium first. Line addresses
    /// not actually pending are ignored.
    pub fn crash_image_flushing(&self, completed: &[u64]) -> CrashImage {
        let mut media = self.media.clone();
        for &line in completed {
            if !self.pending_pm_lines.contains(line) {
                continue;
            }
            if let Some(i) = self.pool_index_of(line) {
                let p = &self.pools[i];
                let off = (line - p.base) as usize;
                let end = (off + CACHE_LINE as usize).min(p.bytes.len());
                let pm = media.pool_mut(p.hint).expect("media");
                pm.bytes[off..end].copy_from_slice(&p.bytes[off..end]);
            }
        }
        CrashImage::of_media(&media)
    }

    /// The durable state if the machine crashed right now and exactly the
    /// cache lines in `persisted` made it to the medium first. Unlike
    /// [`Machine::crash_image_flushing`], *any* dirty line qualifies —
    /// cache eviction can persist a line that was never flushed (paper
    /// Lemma 2), so exploration must be able to pick arbitrary dirty
    /// subsets. Line addresses that are not dirty are ignored.
    pub fn crash_image_with_lines(&self, persisted: &[u64]) -> CrashImage {
        let mut media = self.media.clone();
        for &line in persisted {
            if !self.dirty_lines.contains(line) {
                continue;
            }
            if let Some(i) = self.pool_index_of(line) {
                let p = &self.pools[i];
                let off = (line - p.base) as usize;
                let end = (off + CACHE_LINE as usize).min(p.bytes.len());
                let pm = media.pool_mut(p.hint).expect("media");
                pm.bytes[off..end].copy_from_slice(&p.bytes[off..end]);
            }
        }
        CrashImage::of_media(&media)
    }

    /// Lines with a scheduled-but-undrained write-back, in address order.
    pub fn pending_pm_lines(&self) -> Vec<u64> {
        self.pending_pm_lines.sorted()
    }

    /// Dirty (unflushed or undrained) PM lines, in address order.
    pub fn dirty_pm_lines(&self) -> Vec<u64> {
        self.dirty_lines.sorted()
    }

    /// Whether the PM line containing `addr` is dirty.
    pub fn is_line_dirty(&self, addr: u64) -> bool {
        self.dirty_lines.contains(line_of(addr))
    }

    /// Consumes the machine, returning the durable medium (for restart
    /// simulations). Equivalent to an orderly power-off *without* extra
    /// flushing: whatever was not drained is lost.
    pub fn into_media(self) -> PmMedia {
        self.media
    }

    /// Reads bytes without cost accounting or cache effects (debugger view).
    ///
    /// # Errors
    ///
    /// Returns a [`MemError`] on an invalid range.
    pub fn peek(&self, addr: u64, len: u64) -> Result<Vec<u8>, MemError> {
        let region = self.check_range(addr, len)?;
        Ok(self.raw_slice(region, addr, len).to_vec())
    }
}

fn align8(n: u64) -> u64 {
    align_up(n, 8)
}

fn align_up(n: u64, to: u64) -> u64 {
    n.div_ceil(to) * to
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_frames_release() {
        let mut m = Machine::default();
        m.push_frame();
        let a = m.stack_alloc(16).unwrap();
        m.push_frame();
        let b = m.stack_alloc(16).unwrap();
        assert!(b > a);
        m.pop_frame();
        let c = m.stack_alloc(16).unwrap();
        assert_eq!(b, c, "frame memory is reused after pop");
        m.pop_frame();
    }

    #[test]
    fn heap_use_after_free_detected() {
        let mut m = Machine::default();
        let p = m.heap_alloc(32).unwrap();
        m.store(p, &[1, 2, 3]).unwrap();
        m.heap_free(p).unwrap();
        assert_eq!(m.store(p, &[4]), Err(MemError::UseAfterFree { addr: p }));
        assert_eq!(m.heap_free(p), Err(MemError::InvalidFree { addr: p }));
    }

    #[test]
    fn heap_out_of_bounds_detected() {
        let mut m = Machine::default();
        let p = m.heap_alloc(8).unwrap();
        assert!(m.store(p, &[0; 8]).is_ok());
        assert!(matches!(
            m.store(p + 4, &[0; 8]),
            Err(MemError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn null_deref_is_unmapped() {
        let mut m = Machine::default();
        assert_eq!(m.load_int(0, 8), Err(MemError::Unmapped { addr: 0 }));
    }

    #[test]
    fn store_without_flush_is_not_durable() {
        let mut m = Machine::default();
        let p = m.map_pool(0, 128).unwrap();
        m.store_int(p, 8, 7).unwrap();
        assert_eq!(m.crash_image().pool_bytes(0).unwrap()[0], 0);
        assert!(m.is_line_dirty(p));
    }

    #[test]
    fn weak_flush_needs_fence() {
        let mut m = Machine::default();
        let p = m.map_pool(0, 128).unwrap();
        m.store_int(p, 8, 7).unwrap();
        m.flush(FlushKind::Clwb, p).unwrap();
        // Still racing: the adversarial crash image lacks the update.
        assert_eq!(m.crash_image().pool_bytes(0).unwrap()[0], 0);
        // But the optimistic image (write-back won the race) has it.
        let img = m.crash_image_flushing(&m.pending_pm_lines());
        assert_eq!(img.pool_bytes(0).unwrap()[0], 7);
        m.fence(FenceKind::Sfence);
        assert_eq!(m.crash_image().pool_bytes(0).unwrap()[0], 7);
        assert!(!m.is_line_dirty(p));
    }

    #[test]
    fn clflush_is_synchronous() {
        let mut m = Machine::default();
        let p = m.map_pool(0, 128).unwrap();
        m.store_int(p, 8, 9).unwrap();
        m.flush(FlushKind::Clflush, p).unwrap();
        assert_eq!(m.crash_image().pool_bytes(0).unwrap()[0], 9);
    }

    #[test]
    fn redundant_flush_counted() {
        let mut m = Machine::default();
        let p = m.map_pool(0, 128).unwrap();
        m.store_int(p, 8, 1).unwrap();
        m.flush(FlushKind::Clwb, p).unwrap();
        m.fence(FenceKind::Sfence);
        m.flush(FlushKind::Clwb, p).unwrap();
        assert_eq!(m.stats().redundant_flushes, 1);
    }

    #[test]
    fn volatile_flush_costs_drain_time() {
        let mut m = Machine::default();
        let p = m.heap_alloc(64).unwrap();
        m.store_int(p, 8, 1).unwrap();
        let before = m.stats().cycles;
        m.flush(FlushKind::Clwb, p).unwrap();
        m.fence(FenceKind::Sfence);
        let spent = m.stats().cycles - before;
        let c = m.cost_model();
        assert_eq!(
            spent,
            c.flush_issue + c.sfence_base + c.dram_writeback,
            "volatile flush pays issue + drain"
        );
        assert_eq!(m.stats().volatile_flushes, 1);
    }

    #[test]
    fn eviction_writes_back() {
        let mut m = Machine::default();
        let p = m.map_pool(0, 128).unwrap();
        m.store_int(p, 8, 3).unwrap();
        m.evict(p);
        assert_eq!(m.crash_image().pool_bytes(0).unwrap()[0], 3);
        assert!(!m.is_line_dirty(p));
    }

    #[test]
    fn restart_reattaches_pool() {
        let mut m = Machine::default();
        let p = m.map_pool(42, 256).unwrap();
        m.store_int(p + 8, 8, 77).unwrap();
        m.flush(FlushKind::Clwb, p + 8).unwrap();
        m.fence(FenceKind::Sfence);
        let media = m.into_media();
        let mut m2 = Machine::with_media(media, CostModel::default());
        let p2 = m2.map_pool(42, 256).unwrap();
        assert_eq!(p, p2);
        assert_eq!(m2.load_int(p2 + 8, 8).unwrap(), 77);
    }

    #[test]
    fn restart_loses_undrained_stores() {
        let mut m = Machine::default();
        let p = m.map_pool(42, 256).unwrap();
        m.store_int(p, 8, 1).unwrap();
        m.flush(FlushKind::Clwb, p).unwrap(); // no fence!
        let media = m.into_media();
        let mut m2 = Machine::with_media(media, CostModel::default());
        let p2 = m2.map_pool(42, 256).unwrap();
        assert_eq!(m2.load_int(p2, 8).unwrap(), 0);
    }

    #[test]
    fn crash_image_with_lines_honors_any_dirty_line() {
        let mut m = Machine::default();
        let p = m.map_pool(0, 256).unwrap();
        m.store_int(p, 8, 1).unwrap(); // dirty, never flushed
        m.store_int(p + 64, 8, 2).unwrap();
        m.flush(FlushKind::Clwb, p + 64).unwrap(); // pending
                                                   // Unflushed lines can still persist via eviction.
        let img = m.crash_image_with_lines(&[p]);
        assert_eq!(img.read_int(p, 8), Some(1));
        assert_eq!(img.read_int(p + 64, 8), Some(0));
        // crash_image_flushing only honors *pending* lines.
        let img = m.crash_image_flushing(&[p, p + 64]);
        assert_eq!(img.read_int(p, 8), Some(0));
        assert_eq!(img.read_int(p + 64, 8), Some(2));
        // Clean lines are ignored.
        m.fence(FenceKind::Sfence);
        let img = m.crash_image_with_lines(&[p + 64]);
        assert_eq!(img.read_int(p + 64, 8), Some(2));
    }

    #[test]
    fn pool_size_mismatch_rejected() {
        let mut m = Machine::default();
        m.map_pool(0, 128).unwrap();
        assert!(matches!(
            m.map_pool(0, 256),
            Err(MemError::PoolSizeMismatch { .. })
        ));
    }

    #[test]
    fn memcpy_across_regions_dirties_pm() {
        let mut m = Machine::default();
        let pm = m.map_pool(0, 256).unwrap();
        let heap = m.heap_alloc(256).unwrap();
        m.store(heap, b"abcdefgh").unwrap();
        m.memcpy(pm, heap, 8).unwrap();
        assert!(m.is_line_dirty(pm));
        assert_eq!(m.peek(pm, 8).unwrap(), b"abcdefgh");
        // Crash image lacks it until flushed+fenced.
        assert_eq!(&m.crash_image().pool_bytes(0).unwrap()[..8], &[0; 8]);
    }

    #[test]
    fn multi_line_store_dirties_every_line() {
        let mut m = Machine::default();
        let p = m.map_pool(0, 256).unwrap();
        m.memset(p + 60, 0xaa, 10).unwrap(); // spans two lines
        assert_eq!(m.dirty_pm_lines().len(), 2);
    }

    #[test]
    fn load_int_zero_extends() {
        let mut m = Machine::default();
        let p = m.heap_alloc(8).unwrap();
        m.store(p, &[0xff]).unwrap();
        assert_eq!(m.load_int(p, 1).unwrap(), 0xff);
    }

    #[test]
    fn global_init_visible() {
        let mut m = Machine::default();
        let g = m.add_global(16, b"hi").unwrap();
        assert_eq!(m.load_int(g, 1).unwrap(), i64::from(b'h'));
        assert_eq!(m.load_int(g + 2, 1).unwrap(), 0);
    }

    #[test]
    fn stack_oob_detected() {
        let mut m = Machine::default();
        m.push_frame();
        let a = m.stack_alloc(8).unwrap();
        assert!(matches!(
            m.store(a + 8, &[1]),
            Err(MemError::OutOfBounds { .. })
        ));
        m.pop_frame();
    }

    #[test]
    fn injected_torn_store_persists_half() {
        use pmfault::{FaultKind, FaultPlan, FaultSite, Injector, Trigger};
        let mut m = Machine::default();
        let p = m.map_pool(0, 64).unwrap();
        m.set_injector(Some(Injector::new(FaultPlan::single(
            FaultSite::SimStore,
            Trigger::Nth(0),
            FaultKind::TornStore,
        ))));
        m.store_int(p, 8, 0x1122_3344_5566_7788).unwrap();
        // Low 4 bytes landed; high 4 kept their stale zeroes.
        assert_eq!(m.load_int(p, 8).unwrap(), 0x5566_7788);
        assert_eq!(m.injected_faults().len(), 1);
        assert!(m.injected_faults()[0].contains("torn store"));
        // The next store is whole again (Nth trigger fired once).
        m.store_int(p + 8, 8, -1).unwrap();
        assert_eq!(m.load_int(p + 8, 8).unwrap(), -1);
    }

    #[test]
    fn injected_dropped_flush_leaves_line_dirty() {
        use pmfault::{FaultKind, FaultPlan, FaultSite, Injector, Trigger};
        let mut m = Machine::default();
        let p = m.map_pool(0, 64).unwrap();
        m.set_injector(Some(Injector::new(FaultPlan::single(
            FaultSite::SimFlush,
            Trigger::Nth(0),
            FaultKind::DroppedFlush,
        ))));
        m.store_int(p, 8, 7).unwrap();
        m.flush(FlushKind::Clwb, p).unwrap();
        m.fence(FenceKind::Sfence);
        // The flush was dropped: nothing reached the medium.
        assert_eq!(&m.crash_image().pool_bytes(0).unwrap()[..8], &[0; 8]);
        assert!(m.injected_faults()[0].contains("dropped flush"));
        // A second flush goes through.
        m.flush(FlushKind::Clwb, p).unwrap();
        m.fence(FenceKind::Sfence);
        assert_eq!(m.crash_image().pool_bytes(0).unwrap()[0], 7);
    }

    #[test]
    fn injected_media_read_error_is_structured() {
        use pmfault::{FaultKind, FaultPlan, FaultSite, Injector, Trigger};
        let mut m = Machine::default();
        let p = m.map_pool(0, 64).unwrap();
        m.store_int(p, 8, 7).unwrap();
        m.set_injector(Some(Injector::new(FaultPlan::single(
            FaultSite::SimMediaRead,
            Trigger::Nth(0),
            FaultKind::MediaReadError,
        ))));
        assert!(matches!(m.load_int(p, 8), Err(MemError::MediaRead { addr }) if addr == p));
        // Volatile loads are not PM media reads and never fault here.
        let h = m.heap_alloc(8).unwrap();
        m.store_int(h, 8, 1).unwrap();
        assert_eq!(m.load_int(h, 8).unwrap(), 1);
    }
}
