//! The simulated 64-bit address space.
//!
//! Each memory kind lives in its own high-bits-tagged region so a raw `u64`
//! address is self-describing. The bases are shared knowledge between the
//! machine, the interpreter, and the durability checker (which must decide
//! whether a store targets PM).

/// Cache-line size in bytes, matching x86.
pub const CACHE_LINE: u64 = 64;

/// Base of the stack region.
pub const STACK_BASE: u64 = 0x1000_0000_0000;
/// Base of the volatile heap region.
pub const HEAP_BASE: u64 = 0x2000_0000_0000;
/// Base of the persistent-memory region.
pub const PM_BASE: u64 = 0x3000_0000_0000;
/// Base of the globals region.
pub const GLOBAL_BASE: u64 = 0x4000_0000_0000;
/// Size of each region's address window.
pub const REGION_SPAN: u64 = 0x1000_0000_0000;

/// The memory kind an address falls into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// Per-frame stack storage (volatile).
    Stack,
    /// Heap storage (volatile, "DRAM").
    Heap,
    /// Persistent memory.
    Pm,
    /// Module globals (volatile).
    Global,
}

impl Region {
    /// Classifies an address, or `None` if it falls outside every region
    /// (e.g. null or a stray integer).
    pub fn of(addr: u64) -> Option<Region> {
        match addr {
            a if (STACK_BASE..STACK_BASE + REGION_SPAN).contains(&a) => Some(Region::Stack),
            a if (HEAP_BASE..HEAP_BASE + REGION_SPAN).contains(&a) => Some(Region::Heap),
            a if (PM_BASE..PM_BASE + REGION_SPAN).contains(&a) => Some(Region::Pm),
            a if (GLOBAL_BASE..GLOBAL_BASE + REGION_SPAN).contains(&a) => Some(Region::Global),
            _ => None,
        }
    }

    /// Whether the region is persistent.
    pub fn is_pm(self) -> bool {
        matches!(self, Region::Pm)
    }

    /// Whether the region is volatile (everything but PM).
    pub fn is_volatile(self) -> bool {
        !self.is_pm()
    }
}

/// The base address of the cache line containing `addr`.
pub fn line_of(addr: u64) -> u64 {
    addr & !(CACHE_LINE - 1)
}

/// Whether an address is in persistent memory.
pub fn is_pm_addr(addr: u64) -> bool {
    Region::of(addr) == Some(Region::Pm)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert_eq!(Region::of(0), None);
        assert_eq!(Region::of(STACK_BASE), Some(Region::Stack));
        assert_eq!(Region::of(HEAP_BASE + 5), Some(Region::Heap));
        assert_eq!(Region::of(PM_BASE + REGION_SPAN - 1), Some(Region::Pm));
        assert_eq!(Region::of(GLOBAL_BASE), Some(Region::Global));
        assert_eq!(Region::of(GLOBAL_BASE + REGION_SPAN), None);
    }

    #[test]
    fn pm_predicates() {
        assert!(Region::Pm.is_pm());
        assert!(!Region::Pm.is_volatile());
        assert!(Region::Heap.is_volatile());
        assert!(is_pm_addr(PM_BASE + 100));
        assert!(!is_pm_addr(HEAP_BASE + 100));
    }

    #[test]
    fn line_rounding() {
        assert_eq!(line_of(PM_BASE), PM_BASE);
        assert_eq!(line_of(PM_BASE + 63), PM_BASE);
        assert_eq!(line_of(PM_BASE + 64), PM_BASE + 64);
        assert_eq!(line_of(PM_BASE + 130), PM_BASE + 128);
    }
}
