//! Const-generic cache-line bookkeeping.
//!
//! [`LineSet`] tracks the set of cache-line base addresses the machine
//! considers dirty or pending. It replaces the `BTreeSet<u64>` the machine
//! used to carry: membership tests and inserts sit on the PM-store hot path
//! of every execution tier, and a B-tree pays pointer chases and ordering
//! work the simulator only needs when *reporting* lines (which is cold and
//! sorts on demand).
//!
//! The structure is an open-addressed hash set, const-generic over the
//! cache-line size and the probe-group width — the same shape as a
//! `WAYS`-associative cache directory:
//!
//! * `LINE_SIZE` fixes the line geometry. Keys are line base addresses
//!   (multiples of `LINE_SIZE`); hashing spreads `addr / LINE_SIZE` so the
//!   zeroed low bits never collapse buckets.
//! * `WAYS` bounds the probe sequence: a key lives within `WAYS` slots of
//!   its home bucket, exactly like a set-associative cache way. When a
//!   probe group fills up, the table doubles and rehashes — correctness
//!   never depends on capacity (a line set must *never* drop a line), only
//!   the constant factor does.
//!
//! Invariants (the differential tier gate and the replayer lean on these):
//!
//! * `EMPTY` (0) and `TOMB` (`u64::MAX`) are reserved sentinels. Real line
//!   addresses are region-tagged (`layout`: every region base is at least
//!   `0x1000_0000_0000` and below `u64::MAX`), so neither occurs as a key.
//! * Probes stop at `EMPTY` and step over `TOMB`, so removal is O(1)
//!   without back-shifting.
//! * [`LineSet::sorted`] reports lines in ascending address order — the
//!   order the `BTreeSet` used to iterate in, which exploration sampling
//!   and the crash-image builders rely on for determinism.

/// Empty-slot sentinel (never a valid line address: region bases are
/// non-zero).
const EMPTY: u64 = 0;
/// Tombstone sentinel (never a valid line address).
const TOMB: u64 = u64::MAX;
/// Initial slot count: fixed capacity covering typical dirty-line working
/// sets (dozens of lines) without a resize. Must be a power of two.
const INIT_SLOTS: usize = 64;

/// A set of cache-line base addresses, const-generic over line size and
/// probe-group associativity. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct LineSet<const LINE_SIZE: u64 = 64, const WAYS: usize = 8> {
    slots: Box<[u64]>,
    live: usize,
    dead: usize,
    /// Bumped on every mutation that changes membership. Lets callers that
    /// repeatedly snapshot the set (the frontier builder) skip re-sorting
    /// when nothing changed between snapshots.
    generation: u64,
}

impl<const LINE_SIZE: u64, const WAYS: usize> Default for LineSet<LINE_SIZE, WAYS> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const LINE_SIZE: u64, const WAYS: usize> LineSet<LINE_SIZE, WAYS> {
    /// An empty set at the fixed initial capacity.
    pub fn new() -> Self {
        assert!(
            LINE_SIZE.is_power_of_two(),
            "LINE_SIZE must be a power of two"
        );
        assert!(WAYS > 0, "WAYS must be at least 1");
        LineSet {
            slots: vec![EMPTY; INIT_SLOTS].into_boxed_slice(),
            live: 0,
            dead: 0,
            generation: 0,
        }
    }

    /// The base address of the line containing `addr` under this geometry.
    pub fn line_of(addr: u64) -> u64 {
        addr & !(LINE_SIZE - 1)
    }

    /// Number of lines in the set.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// A counter that advances exactly when membership changes. Two calls
    /// returning the same value bracket a window in which [`LineSet::sorted`]
    /// would have produced identical output — snapshot consumers use this
    /// to reuse the previous snapshot instead of rescanning.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    fn home(&self, line: u64) -> usize {
        // Fibonacci hashing over the line *index*: the low log2(LINE_SIZE)
        // bits of a line address are always zero and must not feed the
        // bucket choice.
        let mixed = (line / LINE_SIZE).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (mixed >> 32) as usize & (self.slots.len() - 1)
    }

    /// Inserts a line. Returns `true` if it was not already present.
    pub fn insert(&mut self, line: u64) -> bool {
        debug_assert!(
            line != EMPTY && line != TOMB,
            "line addresses are region-tagged and never collide with sentinels"
        );
        debug_assert!(
            line.is_multiple_of(LINE_SIZE),
            "keys must be line base addresses"
        );
        loop {
            let mask = self.slots.len() - 1;
            let home = self.home(line);
            let mut free: Option<usize> = None;
            for i in 0..WAYS {
                let at = (home + i) & mask;
                match self.slots[at] {
                    v if v == line => return false,
                    EMPTY => {
                        let at = free.unwrap_or(at);
                        if self.slots[at] == TOMB {
                            self.dead -= 1;
                        }
                        self.slots[at] = line;
                        self.live += 1;
                        self.generation += 1;
                        self.maybe_grow();
                        return true;
                    }
                    TOMB if free.is_none() => free = Some(at),
                    _ => {}
                }
            }
            if let Some(at) = free {
                self.slots[at] = line;
                self.dead -= 1;
                self.live += 1;
                self.generation += 1;
                self.maybe_grow();
                return true;
            }
            // The whole probe group is occupied by other lines: rehash at
            // double the capacity and retry. Growth preserves every line —
            // the set is bookkeeping, not a cache; it must never evict.
            self.grow();
        }
    }

    /// Removes a line. Returns `true` if it was present.
    pub fn remove(&mut self, line: u64) -> bool {
        let mask = self.slots.len() - 1;
        let home = self.home(line);
        for i in 0..WAYS {
            let at = (home + i) & mask;
            match self.slots[at] {
                v if v == line => {
                    self.slots[at] = TOMB;
                    self.live -= 1;
                    self.dead += 1;
                    self.generation += 1;
                    return true;
                }
                EMPTY => return false,
                _ => {}
            }
        }
        false
    }

    /// Membership test.
    pub fn contains(&self, line: u64) -> bool {
        let mask = self.slots.len() - 1;
        let home = self.home(line);
        for i in 0..WAYS {
            let at = (home + i) & mask;
            match self.slots[at] {
                v if v == line => return true,
                EMPTY => return false,
                _ => {}
            }
        }
        false
    }

    /// Removes every line.
    pub fn clear(&mut self) {
        if self.live == 0 && self.dead == 0 {
            return;
        }
        if self.live > 0 {
            self.generation += 1;
        }
        self.slots.fill(EMPTY);
        self.live = 0;
        self.dead = 0;
    }

    /// The lines in ascending address order (the reporting order the
    /// machine's public API promises).
    pub fn sorted(&self) -> Vec<u64> {
        if self.live == 0 {
            return Vec::new();
        }
        let mut out: Vec<u64> = Vec::with_capacity(self.live);
        out.extend(
            self.slots
                .iter()
                .copied()
                .filter(|&v| v != EMPTY && v != TOMB),
        );
        out.sort_unstable();
        out
    }

    /// Empties the set, returning the lines in ascending order.
    pub fn take_sorted(&mut self) -> Vec<u64> {
        let out = self.sorted();
        self.clear();
        out
    }

    /// Inserts every line the byte range `[addr, addr + len)` touches.
    /// `len = 0` inserts nothing.
    pub fn insert_range(&mut self, addr: u64, len: u64) {
        let mut line = Self::line_of(addr);
        while line < addr + len {
            self.insert(line);
            line += LINE_SIZE;
        }
    }

    fn maybe_grow(&mut self) {
        // Tombstones count toward load: a long-lived set that churns
        // (fence drains) must not degrade into full-group scans.
        if (self.live + self.dead) * 2 > self.slots.len() {
            self.grow();
        }
    }

    fn grow(&mut self) {
        let gen = self.generation;
        let lines = self.sorted();
        let cap = (self.slots.len() * 2).max(INIT_SLOTS);
        self.slots = vec![EMPTY; cap].into_boxed_slice();
        self.live = 0;
        self.dead = 0;
        for line in lines {
            // Re-insert without recursing into grow: capacity doubled, so
            // probe groups are at most half full again.
            self.insert(line);
        }
        // A rehash changes capacity, not membership.
        self.generation = gen;
    }
}

impl<const LINE_SIZE: u64, const WAYS: usize> FromIterator<u64> for LineSet<LINE_SIZE, WAYS> {
    fn from_iter<T: IntoIterator<Item = u64>>(iter: T) -> Self {
        let mut s = Self::new();
        for line in iter {
            s.insert(line);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PM: u64 = 0x3000_0000_0000;

    #[test]
    fn insert_contains_remove() {
        let mut s: LineSet = LineSet::new();
        assert!(s.is_empty());
        assert!(s.insert(PM));
        assert!(!s.insert(PM), "double insert is a no-op");
        assert!(s.contains(PM));
        assert!(!s.contains(PM + 64));
        assert_eq!(s.len(), 1);
        assert!(s.remove(PM));
        assert!(!s.remove(PM));
        assert!(s.is_empty());
    }

    #[test]
    fn sorted_reports_ascending() {
        let mut s: LineSet = LineSet::new();
        for i in [9u64, 3, 7, 1, 4] {
            s.insert(PM + i * 64);
        }
        let got = s.sorted();
        let want: Vec<u64> = [1u64, 3, 4, 7, 9].iter().map(|i| PM + i * 64).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn take_sorted_drains() {
        let mut s: LineSet = LineSet::new();
        s.insert(PM + 128);
        s.insert(PM);
        assert_eq!(s.take_sorted(), vec![PM, PM + 128]);
        assert!(s.is_empty());
        assert!(!s.contains(PM));
    }

    #[test]
    fn survives_growth_well_past_fixed_capacity() {
        let mut s: LineSet = LineSet::new();
        let n = 10_000u64;
        for i in 0..n {
            assert!(s.insert(PM + i * 64));
        }
        assert_eq!(s.len(), n as usize);
        for i in 0..n {
            assert!(s.contains(PM + i * 64), "line {i} lost in growth");
        }
        // Remove every other line; the rest must survive the tombstones.
        for i in (0..n).step_by(2) {
            assert!(s.remove(PM + i * 64));
        }
        assert_eq!(s.len(), (n / 2) as usize);
        for i in 0..n {
            assert_eq!(s.contains(PM + i * 64), i % 2 == 1);
        }
    }

    #[test]
    fn churn_with_tombstones_stays_correct() {
        // Insert/remove cycles (a fence-heavy workload) must not let
        // tombstones break probing.
        let mut s: LineSet = LineSet::new();
        for round in 0..200u64 {
            for i in 0..24u64 {
                s.insert(PM + i * 64);
            }
            for line in s.take_sorted() {
                assert!(!s.contains(line));
            }
            assert!(s.is_empty(), "round {round}");
        }
    }

    #[test]
    fn insert_range_covers_straddling_lines() {
        let mut s: LineSet = LineSet::new();
        s.insert_range(PM + 60, 10); // straddles two 64-byte lines
        assert_eq!(s.sorted(), vec![PM, PM + 64]);
        let mut s: LineSet = LineSet::new();
        s.insert_range(PM, 0);
        assert!(s.is_empty());
    }

    #[test]
    fn other_geometries_compile_and_behave() {
        // The const-generic parameters really parameterize the geometry:
        // 128-byte lines, 2-way probe groups.
        let mut s: LineSet<128, 2> = LineSet::new();
        assert_eq!(LineSet::<128, 2>::line_of(PM + 129), PM + 128);
        s.insert_range(PM + 120, 16); // straddles two 128-byte lines
        assert_eq!(s.sorted(), vec![PM, PM + 128]);
        // A 2-way group overflows quickly; growth must absorb it.
        for i in 0..1000u64 {
            s.insert(PM + i * 128);
        }
        assert_eq!(s.len(), 1000);
    }
}
