//! The simulated cycle-cost model.
//!
//! The absolute values are calibration constants, not measurements; what the
//! Fig. 4 reproduction relies on is the *relative* structure reported for
//! Optane platforms: PM loads are 2–3× DRAM loads (paper §1), flush
//! instructions are cheap to issue, and the expensive event is the fence
//! *drain* — each pending line write-back stalls for roughly a PM write
//! latency (hundreds of cycles).

use serde::{Deserialize, Serialize};

/// Per-operation cycle costs charged by [`crate::Machine`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// A cached load/store from DRAM (stack/heap/global), per access.
    pub dram_access: u64,
    /// A load from PM (2–3× DRAM per the paper).
    pub pm_load: u64,
    /// A store to PM (into the cache; write latency is paid at drain).
    pub pm_store: u64,
    /// Issue cost of `CLWB`/`CLFLUSHOPT`/`CLFLUSH`.
    pub flush_issue: u64,
    /// Write-back of one dirty line to the PM medium (paid at the fence for
    /// weak flushes, synchronously for `CLFLUSH`).
    pub pm_writeback: u64,
    /// Write-back of one line to DRAM (flushes on volatile data still drain;
    /// ~70 ns of DRAM write latency at 2.1 GHz).
    pub dram_writeback: u64,
    /// Base cost of `SFENCE`.
    pub sfence_base: u64,
    /// Base cost of `MFENCE`.
    pub mfence_base: u64,
    /// Cost per 16 copied bytes of `memcpy`/`memset` bulk work (wide-move
    /// hardware copies ~16 B per cycle).
    pub bulk_byte: u64,
    /// Fixed overhead per executed instruction (dispatch, ALU).
    pub inst_base: u64,
    /// Cost of a call/return pair.
    pub call: u64,
}

impl CostModel {
    /// The default calibration (see module docs).
    pub fn optane_like() -> Self {
        CostModel {
            dram_access: 1,
            pm_load: 3,
            pm_store: 2,
            flush_issue: 6,
            pm_writeback: 300,
            dram_writeback: 150,
            sfence_base: 30,
            mfence_base: 45,
            bulk_byte: 1,
            inst_base: 1,
            call: 5,
        }
    }

    /// A cost model where every operation costs one cycle — useful for
    /// instruction-count-style measurements in tests.
    pub fn unit() -> Self {
        CostModel {
            dram_access: 1,
            pm_load: 1,
            pm_store: 1,
            flush_issue: 1,
            pm_writeback: 1,
            dram_writeback: 1,
            sfence_base: 1,
            mfence_base: 1,
            bulk_byte: 0,
            inst_base: 1,
            call: 1,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::optane_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_have_paper_shape() {
        let c = CostModel::default();
        // PM loads are 2-3x DRAM.
        assert!(c.pm_load >= 2 * c.dram_access && c.pm_load <= 3 * c.dram_access);
        // The drain dominates the issue cost by orders of magnitude.
        assert!(c.pm_writeback > 10 * c.flush_issue);
        // PM write-back costs more than DRAM write-back.
        assert!(c.pm_writeback > c.dram_writeback);
    }

    #[test]
    fn unit_model_counts_operations() {
        let c = CostModel::unit();
        assert_eq!(c.pm_writeback, 1);
        assert_eq!(c.bulk_byte, 0);
    }
}
