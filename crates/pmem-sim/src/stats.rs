//! Execution counters reported by the machine.

use serde::{Deserialize, Serialize};

/// Counters accumulated over a run; all monotonically increasing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineStats {
    /// Simulated cycles (per the machine's [`crate::CostModel`]).
    pub cycles: u64,
    /// Stores whose target is PM.
    pub pm_stores: u64,
    /// Stores whose target is volatile memory.
    pub volatile_stores: u64,
    /// Loads from PM.
    pub pm_loads: u64,
    /// Loads from volatile memory.
    pub volatile_loads: u64,
    /// Flush instructions executed on PM lines.
    pub pm_flushes: u64,
    /// Flush instructions executed on volatile lines — the wasted work that
    /// interprocedural fixes exist to avoid (paper §3.2).
    pub volatile_flushes: u64,
    /// Flushes of PM lines that were already clean (redundant).
    pub redundant_flushes: u64,
    /// Fences executed.
    pub fences: u64,
    /// Dirty PM lines written back at fences or by `CLFLUSH`.
    pub pm_lines_drained: u64,
    /// Volatile lines written back at fences (flushed volatile data).
    pub volatile_lines_drained: u64,
    /// Heap bytes currently live.
    pub heap_live_bytes: u64,
    /// Peak heap bytes live at any point.
    pub heap_peak_bytes: u64,
}

impl MachineStats {
    /// Total store count.
    pub fn total_stores(&self) -> u64 {
        self.pm_stores + self.volatile_stores
    }

    /// Total flush count.
    pub fn total_flushes(&self) -> u64 {
        self.pm_flushes + self.volatile_flushes
    }

    /// Difference `after - self`, counter-wise. Useful for windowed
    /// measurements (e.g. per-YCSB-phase deltas).
    pub fn delta(&self, after: &MachineStats) -> MachineStats {
        MachineStats {
            cycles: after.cycles - self.cycles,
            pm_stores: after.pm_stores - self.pm_stores,
            volatile_stores: after.volatile_stores - self.volatile_stores,
            pm_loads: after.pm_loads - self.pm_loads,
            volatile_loads: after.volatile_loads - self.volatile_loads,
            pm_flushes: after.pm_flushes - self.pm_flushes,
            volatile_flushes: after.volatile_flushes - self.volatile_flushes,
            redundant_flushes: after.redundant_flushes - self.redundant_flushes,
            fences: after.fences - self.fences,
            pm_lines_drained: after.pm_lines_drained - self.pm_lines_drained,
            volatile_lines_drained: after.volatile_lines_drained - self.volatile_lines_drained,
            heap_live_bytes: after.heap_live_bytes,
            heap_peak_bytes: after.heap_peak_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_delta() {
        let a = MachineStats {
            cycles: 100,
            pm_stores: 5,
            volatile_stores: 10,
            pm_flushes: 3,
            volatile_flushes: 1,
            ..Default::default()
        };
        let b = MachineStats {
            cycles: 250,
            pm_stores: 8,
            volatile_stores: 12,
            pm_flushes: 6,
            volatile_flushes: 1,
            ..Default::default()
        };
        assert_eq!(a.total_stores(), 15);
        assert_eq!(a.total_flushes(), 4);
        let d = a.delta(&b);
        assert_eq!(d.cycles, 150);
        assert_eq!(d.pm_stores, 3);
        assert_eq!(d.pm_flushes, 3);
        assert_eq!(d.volatile_flushes, 0);
    }
}
