//! Memory-access errors ("machine traps").

use std::fmt;

/// A memory fault raised by the simulated machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// Access to an address outside every region (e.g. a null dereference).
    Unmapped {
        /// The faulting address.
        addr: u64,
    },
    /// Access beyond an allocation or region limit.
    OutOfBounds {
        /// The faulting address.
        addr: u64,
        /// The access length in bytes.
        len: u64,
    },
    /// Access to heap memory that was freed.
    UseAfterFree {
        /// The faulting address.
        addr: u64,
    },
    /// `heap_free` of a pointer that is not a live allocation base.
    InvalidFree {
        /// The faulting address.
        addr: u64,
    },
    /// A region allocator ran out of space.
    OutOfMemory {
        /// The region that was exhausted.
        what: &'static str,
    },
    /// Re-mapping a pool with a different size than it was created with.
    PoolSizeMismatch {
        /// The pool hint.
        pool: u64,
        /// The existing size.
        have: u64,
        /// The requested size.
        want: u64,
    },
    /// The persistent medium failed to service a read (e.g. an uncorrectable
    /// media error, or an injected fault standing in for one).
    MediaRead {
        /// The faulting address.
        addr: u64,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::Unmapped { addr } => write!(f, "unmapped address {addr:#x}"),
            MemError::OutOfBounds { addr, len } => {
                write!(f, "out-of-bounds access of {len} bytes at {addr:#x}")
            }
            MemError::UseAfterFree { addr } => write!(f, "use after free at {addr:#x}"),
            MemError::InvalidFree { addr } => write!(f, "invalid free of {addr:#x}"),
            MemError::OutOfMemory { what } => write!(f, "out of {what} memory"),
            MemError::PoolSizeMismatch { pool, have, want } => write!(
                f,
                "pool {pool} exists with size {have}, remapped with size {want}"
            ),
            MemError::MediaRead { addr } => {
                write!(f, "persistent medium read error at {addr:#x}")
            }
        }
    }
}

impl std::error::Error for MemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = MemError::Unmapped { addr: 0 };
        assert_eq!(e.to_string(), "unmapped address 0x0");
        let e = MemError::OutOfBounds { addr: 16, len: 8 };
        assert!(e.to_string().contains("8 bytes"));
    }
}
