//! The persistent medium: the only state that survives a simulated crash.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One pool's durable bytes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolMedia {
    /// The pool's base address in the simulated address space. Stable across
    /// re-mapping, so recovery code sees the same pointers.
    pub base: u64,
    /// Durable contents.
    pub bytes: Vec<u8>,
}

/// The set of PM pools' durable contents, keyed by the program-chosen pool
/// hint (the `pool` operand of `pmemmap`).
///
/// Detach it from a [`crate::Machine`] with [`crate::Machine::into_media`]
/// and hand it to a fresh machine to simulate a restart:
///
/// ```
/// use pmem_sim::{Machine, PmMedia, FlushKind, FenceKind};
///
/// let mut m = Machine::default();
/// let p = m.map_pool(7, 64).unwrap();
/// m.store(p, b"hello...").unwrap();
/// m.flush(FlushKind::Clwb, p).unwrap();
/// m.fence(FenceKind::Sfence);
/// let media = m.into_media();
///
/// // "Reboot": the durable bytes are visible to the next process.
/// let mut m2 = Machine::with_media(media, Default::default());
/// let p2 = m2.map_pool(7, 64).unwrap();
/// assert_eq!(p2, p);
/// let mut buf = [0u8; 5];
/// m2.load(p2, &mut buf).unwrap();
/// assert_eq!(&buf, b"hello");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PmMedia {
    pools: BTreeMap<u64, PoolMedia>,
}

impl PmMedia {
    /// An empty medium (factory-fresh NVDIMM).
    pub fn new() -> Self {
        PmMedia::default()
    }

    /// The pool for `hint`, if one exists.
    pub fn pool(&self, hint: u64) -> Option<&PoolMedia> {
        self.pools.get(&hint)
    }

    /// Mutable access to the pool for `hint`.
    pub(crate) fn pool_mut(&mut self, hint: u64) -> Option<&mut PoolMedia> {
        self.pools.get_mut(&hint)
    }

    /// Registers a new pool.
    pub(crate) fn insert(&mut self, hint: u64, base: u64, size: u64) {
        self.insert_with_bytes(hint, base, vec![0; size as usize]);
    }

    /// Registers a pool that adopts `bytes` as its durable contents.
    pub(crate) fn insert_with_bytes(&mut self, hint: u64, base: u64, bytes: Vec<u8>) {
        self.pools.insert(hint, PoolMedia { base, bytes });
    }

    /// Iterates over `(hint, pool)` pairs in hint order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &PoolMedia)> {
        self.pools.iter().map(|(&h, p)| (h, p))
    }

    /// Number of pools.
    pub fn pool_count(&self) -> usize {
        self.pools.len()
    }

    /// The highest in-use address across all pools, for base allocation.
    pub(crate) fn high_water(&self) -> Option<u64> {
        self.pools
            .values()
            .map(|p| p.base + p.bytes.len() as u64)
            .max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let mut m = PmMedia::new();
        m.insert(1, 0x3000_0000_0000, 128);
        assert_eq!(m.pool_count(), 1);
        let p = m.pool(1).unwrap();
        assert_eq!(p.base, 0x3000_0000_0000);
        assert_eq!(p.bytes.len(), 128);
        assert!(m.pool(2).is_none());
        assert_eq!(m.high_water(), Some(0x3000_0000_0000 + 128));
    }
}
