//! Crash images: the durable state an observer finds after a failure.

use crate::media::PmMedia;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A snapshot of every pool's durable bytes at a crash.
///
/// Crash-consistency tests compare images (did the update become durable?)
/// or boot a fresh [`crate::Machine`] from one to run recovery code.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashImage {
    pools: BTreeMap<u64, Vec<u8>>,
    bases: BTreeMap<u64, u64>,
}

impl CrashImage {
    /// Snapshots a medium.
    pub(crate) fn of_media(media: &PmMedia) -> Self {
        let mut pools = BTreeMap::new();
        let mut bases = BTreeMap::new();
        for (hint, p) in media.iter() {
            pools.insert(hint, p.bytes.clone());
            bases.insert(hint, p.base);
        }
        CrashImage { pools, bases }
    }

    /// The durable bytes of pool `hint`, if it exists.
    pub fn pool_bytes(&self, hint: u64) -> Option<&[u8]> {
        self.pools.get(&hint).map(Vec::as_slice)
    }

    /// The base address pool `hint` was mapped at.
    pub fn pool_base(&self, hint: u64) -> Option<u64> {
        self.bases.get(&hint).copied()
    }

    /// Number of pools captured.
    pub fn pool_count(&self) -> usize {
        self.pools.len()
    }

    /// Iterates over `(hint, base, bytes)` triples in hint order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64, &[u8])> {
        self.pools
            .iter()
            .map(|(&hint, bytes)| (hint, self.bases[&hint], bytes.as_slice()))
    }

    /// Builds an image directly from `(hint, base, bytes)` pool triples.
    /// Exploration engines use this to materialize hypothetical crash
    /// states without going through a [`crate::Machine`].
    pub fn from_parts(parts: impl IntoIterator<Item = (u64, u64, Vec<u8>)>) -> Self {
        let mut pools = BTreeMap::new();
        let mut bases = BTreeMap::new();
        for (hint, base, bytes) in parts {
            pools.insert(hint, bytes);
            bases.insert(hint, base);
        }
        CrashImage { pools, bases }
    }

    /// Reads a little-endian zero-extended integer from an absolute PM
    /// address in the image.
    pub fn read_int(&self, addr: u64, len: u8) -> Option<i64> {
        // An address whose end wraps the address space is in no pool.
        let end = addr.checked_add(u64::from(len))?;
        for (hint, &base) in &self.bases {
            let bytes = &self.pools[hint];
            // A pool whose extent would wrap cannot be addressed either;
            // skip it rather than panicking in a release build.
            let Some(pool_end) = base.checked_add(bytes.len() as u64) else {
                continue;
            };
            if addr >= base && end <= pool_end {
                let off = (addr - base) as usize;
                let mut buf = [0u8; 8];
                buf[..len as usize].copy_from_slice(&bytes[off..off + len as usize]);
                return Some(i64::from_le_bytes(buf));
            }
        }
        None
    }

    /// Converts the image back into a medium for recovery runs. Reuses the
    /// image's byte buffers — no pool contents are copied or re-zeroed
    /// (recovery boots are the explorer's hot path).
    pub fn into_media(self) -> PmMedia {
        let mut media = PmMedia::new();
        for (hint, bytes) in self.pools {
            media.insert_with_bytes(hint, self.bases[&hint], bytes);
        }
        media
    }
}

#[cfg(test)]
mod tests {

    use crate::machine::Machine;
    use crate::{FenceKind, FlushKind};

    #[test]
    fn read_int_across_pools() {
        let mut m = Machine::default();
        let a = m.map_pool(0, 128).unwrap();
        let b = m.map_pool(1, 128).unwrap();
        m.store_int(a, 8, 11).unwrap();
        m.store_int(b + 16, 4, 22).unwrap();
        m.flush(FlushKind::Clwb, a).unwrap();
        m.flush(FlushKind::Clwb, b + 16).unwrap();
        m.fence(FenceKind::Sfence);
        let img = m.crash_image();
        assert_eq!(img.pool_count(), 2);
        assert_eq!(img.read_int(a, 8), Some(11));
        assert_eq!(img.read_int(b + 16, 4), Some(22));
        assert_eq!(img.read_int(0xdead, 8), None);
    }

    #[test]
    fn read_int_near_u64_max_does_not_overflow() {
        // Regression: `addr + len` used to be computed unchecked, so a
        // probe near the top of the address space overflowed (panic in
        // debug, wrap-around false positive in release).
        use crate::crash::CrashImage;
        let img = CrashImage::from_parts([(0u64, 0x1000u64, vec![0u8; 128])]);
        assert_eq!(img.read_int(u64::MAX, 8), None);
        assert_eq!(img.read_int(u64::MAX - 4, 8), None);
        // A pool whose extent would wrap is skipped, not a crash.
        let wrapping = CrashImage::from_parts([(1u64, u64::MAX - 16, vec![0u8; 64])]);
        assert_eq!(wrapping.read_int(u64::MAX - 10, 8), None);
    }

    #[test]
    fn from_parts_matches_machine_image() {
        let mut m = Machine::default();
        let p = m.map_pool(9, 128).unwrap();
        m.store_int(p, 8, 5).unwrap();
        m.flush(FlushKind::Clflush, p).unwrap();
        let img = m.crash_image();
        let rebuilt = crate::crash::CrashImage::from_parts([(
            9u64,
            img.pool_base(9).unwrap(),
            img.pool_bytes(9).unwrap().to_vec(),
        )]);
        assert_eq!(rebuilt, img);
    }

    #[test]
    fn image_roundtrips_to_media() {
        let mut m = Machine::default();
        let p = m.map_pool(3, 64).unwrap();
        m.store_int(p, 8, 99).unwrap();
        m.flush(FlushKind::Clwb, p).unwrap();
        m.fence(FenceKind::Sfence);
        let img = m.crash_image();
        let mut m2 = Machine::with_media(img.into_media(), Default::default());
        let p2 = m2.map_pool(3, 64).unwrap();
        assert_eq!(p2, p);
        assert_eq!(m2.load_int(p2, 8).unwrap(), 99);
    }
}
