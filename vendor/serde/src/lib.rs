//! Offline stand-in for the `serde` crate.
//!
//! The hermetic build environment has no registry access, so the workspace
//! vendors a minimal serde: serialization goes through an owned [`Value`]
//! tree rather than the real crate's `Serializer`/`Deserializer` visitors.
//! The `derive` feature re-exports `#[derive(Serialize, Deserialize)]` from
//! the companion `serde_derive` stub, which generates `to_value`/`from_value`
//! implementations with serde's default externally-tagged enum layout, so
//! JSON produced by the vendored `serde_json` round-trips faithfully.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the stand-in's data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Struct/enum payloads; keys are always `Value::Str`.
    Map(Vec<(Value, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(Value, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a struct field by name in a map value.
    pub fn field(&self, name: &str) -> Result<&Value, DeError> {
        let map = self
            .as_map()
            .ok_or_else(|| DeError::new(format!("expected map with field `{name}`")))?;
        map.iter()
            .find(|(k, _)| k.as_str() == Some(name))
            .map(|(_, v)| v)
            .ok_or_else(|| DeError::new(format!("missing field `{name}`")))
    }

    /// Looks up an *optional* struct field by name in a map value:
    /// `Ok(None)` when the field is absent (the `#[serde(default)]` path),
    /// `Err` only when the value is not a map at all.
    pub fn field_opt(&self, name: &str) -> Result<Option<&Value>, DeError> {
        let map = self
            .as_map()
            .ok_or_else(|| DeError::new(format!("expected map with field `{name}`")))?;
        Ok(map
            .iter()
            .find(|(k, _)| k.as_str() == Some(name))
            .map(|(_, v)| v))
    }

    /// The `idx`-th element of a sequence value.
    pub fn elem(&self, idx: usize) -> Result<&Value, DeError> {
        self.as_seq()
            .ok_or_else(|| DeError::new("expected sequence"))?
            .get(idx)
            .ok_or_else(|| DeError::new(format!("missing sequence element {idx}")))
    }
}

/// Deserialization failure: a shape mismatch between the value tree and the
/// target type.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types convertible into a [`Value`].
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---- primitive impls ----

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::new("expected bool")),
        }
    }
}

macro_rules! uint_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::U64(n) => *n as i128,
                    Value::I64(n) => *n as i128,
                    _ => return Err(DeError::new("expected integer")),
                };
                <$t>::try_from(n).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}
uint_impl!(u8, u16, u32, u64, usize);

macro_rules! int_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::U64(n) => *n as i128,
                    Value::I64(n) => *n as i128,
                    _ => return Err(DeError::new("expected integer")),
                };
                <$t>::try_from(n).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}
int_impl!(i8, i16, i32, i64, isize);

macro_rules! float_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::F64(n) => Ok(*n as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    _ => Err(DeError::new("expected number")),
                }
            }
        }
    )*};
}
float_impl!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::new("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::new("expected char"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::new("expected single-char string")),
        }
    }
}

// ---- reference / smart-pointer impls ----

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

// ---- container impls ----

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::new("expected sequence"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

// Maps serialize as a sequence of `[key, value]` pairs so that non-string
// keys (e.g. `BTreeMap<u64, _>`) survive a JSON round-trip.
impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let seq = v
            .as_seq()
            .ok_or_else(|| DeError::new("expected map as pair sequence"))?;
        let mut out = BTreeMap::new();
        for pair in seq {
            out.insert(K::from_value(pair.elem(0)?)?, V::from_value(pair.elem(1)?)?);
        }
        Ok(out)
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + std::hash::Hash + Eq, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let seq = v
            .as_seq()
            .ok_or_else(|| DeError::new("expected map as pair sequence"))?;
        let mut out = HashMap::new();
        for pair in seq {
            out.insert(K::from_value(pair.elem(0)?)?, V::from_value(pair.elem(1)?)?);
        }
        Ok(out)
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::new("expected sequence"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::hash::Hash + Eq> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::new("expected sequence"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

macro_rules! tuple_impl {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                Ok(($($t::from_value(v.elem($n)?)?,)+))
            }
        }
    )*};
}
tuple_impl! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn container_round_trip() {
        let mut m = BTreeMap::new();
        m.insert(3u64, vec![1u8, 2, 3]);
        let v = m.to_value();
        let back: BTreeMap<u64, Vec<u8>> = Deserialize::from_value(&v).unwrap();
        assert_eq!(m, back);

        let opt: Option<String> = Some("hi".to_string());
        assert_eq!(Option::<String>::from_value(&opt.to_value()).unwrap(), opt);
        let none: Option<String> = None;
        assert_eq!(
            Option::<String>::from_value(&none.to_value()).unwrap(),
            none
        );
    }

    #[test]
    fn field_lookup_errors() {
        let v = Value::Map(vec![(Value::Str("a".into()), Value::U64(1))]);
        assert!(v.field("a").is_ok());
        assert!(v.field("b").is_err());
    }
}
