//! Offline stand-in for the `proptest` crate.
//!
//! Provides the strategy combinators, macros, and configuration surface this
//! workspace's property tests use, backed by a deterministic splitmix64
//! generator seeded from the test name. There is no shrinking: a failing case
//! panics with the generated inputs visible via the assertion message. The
//! generator is deterministic per test name, so failures reproduce exactly.

pub mod test_runner {
    /// Per-test configuration; only `cases` is interpreted.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to execute.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config overriding only the case count.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic random source driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from an arbitrary label (the test name).
        pub fn deterministic(label: &str) -> Self {
            // FNV-1a over the label.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit word (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A recipe for generating values of an output type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn gen(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Grows recursive structures: `f` receives a strategy for the
        /// previous level and returns the next level. `depth` bounds the
        /// number of levels; the size-tuning parameters are accepted for API
        /// compatibility but not interpreted.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> Recursive<Self::Value>
        where
            Self: Sized + 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
        {
            Recursive {
                base: self.boxed(),
                depth,
                grow: Rc::new(move |inner| f(inner).boxed()),
            }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    trait DynStrategy<T> {
        fn gen_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn gen_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.gen(rng)
        }
    }

    /// A cloneable, type-erased strategy.
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn gen(&self, rng: &mut TestRng) -> T {
            self.0.gen_dyn(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn gen(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.gen(rng))
        }
    }

    /// See [`Strategy::prop_recursive`].
    pub struct Recursive<T> {
        base: BoxedStrategy<T>,
        depth: u32,
        #[allow(clippy::type_complexity)]
        grow: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    }

    impl<T: 'static> Strategy for Recursive<T> {
        type Value = T;
        fn gen(&self, rng: &mut TestRng) -> T {
            let levels = rng.below(u64::from(self.depth) + 1) as u32;
            let mut s = self.base.clone();
            for _ in 0..levels {
                s = (self.grow)(s);
            }
            s.gen(rng)
        }
    }

    /// Weighted choice between strategies (built by `prop_oneof!`).
    pub struct OneOf<T> {
        choices: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> OneOf<T> {
        /// Builds a choice from `(weight, strategy)` pairs.
        pub fn new(choices: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total = choices.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! requires a positive total weight");
            OneOf { choices, total }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn gen(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.choices {
                let w = u64::from(*w);
                if pick < w {
                    return s.gen(rng);
                }
                pick -= w;
            }
            unreachable!("weights changed mid-draw")
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn gen(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn gen(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }
    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategies {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn gen(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.gen(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        fn arb(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arb(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arb(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The strategy returned by [`any`].
    #[derive(Debug)]
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn gen(&self, rng: &mut TestRng) -> T {
            T::arb(rng)
        }
    }

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A length range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Generates `Vec`s whose length falls in `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.elem.gen(rng)).collect()
        }
    }

    /// `proptest::collection::vec`: element strategy + length range.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Generates `Option`s that are `Some` three times out of four.
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn gen(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.gen(rng))
            }
        }
    }

    /// `proptest::option::of`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

pub mod bool {
    use crate::arbitrary::Any;
    use std::marker::PhantomData;

    /// The canonical `bool` strategy.
    pub const ANY: Any<bool> = Any(PhantomData);
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Builds a [`strategy::OneOf`] from strategies, optionally weighted.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Asserts a condition inside a property; failure panics with the message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for _ in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::gen(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    (($cfg:expr)) => {};
}

/// Declares property tests: each `fn name(binding in strategy, ...) { ... }`
/// becomes a `#[test]` running the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(i32),
        Node(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> u32 {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    fn tree_strategy() -> impl Strategy<Value = Tree> {
        let leaf = (-100i32..100).prop_map(Tree::Leaf);
        leaf.prop_recursive(4, 24, 2, |inner| {
            prop_oneof![
                3 => (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(a.into(), b.into())),
                1 => (-100i32..100).prop_map(Tree::Leaf),
            ]
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        /// Ranges respect bounds and maps apply.
        fn ranges_and_maps(x in 3u8..7, y in 1u64..=4, v in crate::collection::vec(0i64..10, 0..5), o in crate::option::of(1u32..3), b in crate::bool::ANY) {
            prop_assert!((3..7).contains(&x));
            prop_assert!((1..=4).contains(&y));
            prop_assert!(v.len() < 5);
            prop_assert!(v.iter().all(|e| (0..10).contains(e)));
            if let Some(i) = o {
                prop_assert!((1..3).contains(&i), "bad {}", i);
            }
            let _ = b;
        }

        fn recursion_is_bounded(t in tree_strategy()) {
            prop_assert!(depth(&t) <= 4, "depth {} too deep", depth(&t));
        }
    }

    #[test]
    fn determinism() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = tree_strategy();
        let mut r1 = TestRng::deterministic("d");
        let mut r2 = TestRng::deterministic("d");
        for _ in 0..20 {
            assert_eq!(s.gen(&mut r1), s.gen(&mut r2));
        }
    }
}
