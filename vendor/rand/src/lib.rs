//! Offline stand-in for the `rand` crate.
//!
//! The workspace builds in a hermetic environment with no registry access, so
//! external crates are vendored as small API-compatible implementations. This
//! one covers exactly the surface the workspace uses: `StdRng`,
//! `SeedableRng::seed_from_u64`, `RngExt::random::<f64>()` and
//! `RngExt::random_range(a..=b)`. The generator is a splitmix64 — statistically
//! fine for workload generation, not cryptographic.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word in the stream.
    fn next_u64(&mut self) -> u64;
}

/// Rngs constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from the generator's native distribution.
pub trait StandardSample: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a value can be drawn from.
pub trait SampleRange<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, mirroring `rand::Rng`/`RngExt`.
pub trait RngExt: RngCore {
    /// Samples from the standard distribution of `T`.
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The default seedable generator (splitmix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let x: f64 = a.random();
            let y: f64 = b.random();
            assert_eq!(x, y);
            assert!((0.0..1.0).contains(&x));
            let n = a.random_range(1..=20u64);
            b.random_range(1..=20u64);
            assert!((1..=20).contains(&n));
        }
    }
}
