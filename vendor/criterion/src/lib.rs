//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion API the `bench` crate uses —
//! `Criterion`, `benchmark_group`, `bench_function`, `Bencher::iter`,
//! `Throughput`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros — with a simple wall-clock measurement loop. Reports mean
//! nanoseconds per iteration (and throughput when configured) to stdout.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmark work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Declared workload size, for elements/second style reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Timing loop handle passed to the closure of [`BenchmarkGroup::bench_function`].
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: u64,
}

impl Bencher {
    /// Measures `f` repeatedly and records per-iteration timings.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: one untimed call.
        black_box(f());
        // Calibrate the per-sample iteration count so one sample is ≥ ~1ms
        // (or a single call if the workload is slow).
        let t0 = Instant::now();
        black_box(f());
        let one = t0.elapsed();
        let per_sample = if one >= Duration::from_millis(1) {
            1
        } else {
            let want = Duration::from_millis(1).as_nanos();
            (want / one.as_nanos().max(1)).clamp(1, 10_000) as u64
        };
        self.iters_per_sample = per_sample;
        self.samples.clear();
        for _ in 0..self.sample_count {
            let t = Instant::now();
            for _ in 0..per_sample {
                black_box(f());
            }
            self.samples.push(t.elapsed());
        }
    }

    fn mean_ns(&self) -> f64 {
        if self.samples.is_empty() || self.iters_per_sample == 0 {
            return 0.0;
        }
        let total: u128 = self.samples.iter().map(Duration::as_nanos).sum();
        total as f64 / (self.samples.len() as u64 * self.iters_per_sample) as f64
    }
}

/// A named group of related benchmarks sharing sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Declares per-iteration workload size for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let id = id.as_ref();
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count: self.sample_size,
        };
        f(&mut b);
        let ns = b.mean_ns();
        let mut line = format!("{}/{:<32} {:>12.1} ns/iter", self.name, id, ns);
        if let Some(t) = self.throughput {
            let (n, unit) = match t {
                Throughput::Elements(n) => (n, "elem/s"),
                Throughput::Bytes(n) => (n, "B/s"),
            };
            if ns > 0.0 {
                line.push_str(&format!("  {:>12.0} {}", n as f64 / (ns * 1e-9), unit));
            }
        }
        println!("{line}");
        self
    }

    /// Ends the group (report flushing is immediate in this implementation).
    pub fn finish(&mut self) {}
}

/// Benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one stand-alone named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        g.throughput(Throughput::Elements(10));
        let mut ran = false;
        g.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        g.finish();
        assert!(ran);
    }
}
