//! Offline stand-in for `serde_json`.
//!
//! Serializes the vendored `serde` crate's [`serde::Value`] tree to JSON text
//! and parses JSON text back. The JSON grammar implemented is the real one
//! (strings with escapes, numbers, arrays, objects, literals), so traces and
//! reports written by this crate are genuine JSON; the only stand-in-specific
//! convention is that maps with non-string keys arrive as arrays of
//! `[key, value]` pairs (that is how the vendored `serde` serializes them).

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// A serialization or deserialization failure.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Never fails for values produced by the vendored derives; the `Result` is
/// kept for API compatibility.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as human-indented JSON.
///
/// # Errors
///
/// Never fails for values produced by the vendored derives.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses a value of type `T` from JSON text.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        s: s.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.s.len() {
        return Err(Error::new("trailing characters after JSON value"));
    }
    Ok(T::from_value(&v)?)
}

fn write_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => {
            if n.is_finite() {
                // Guarantee a decimal point or exponent so it re-parses as F64.
                let s = format!("{n}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                match k {
                    Value::Str(s) => write_string(s, out),
                    // Non-string keys cannot occur from the derives (maps are
                    // pair sequences); stringify defensively.
                    other => {
                        let mut tmp = String::new();
                        write_value(other, &mut tmp, None, 0);
                        write_string(&tmp, out);
                    }
                }
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.s.get(self.i) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.i += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.i
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.s[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.i)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.i += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.i += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b']') => {
                            self.i += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::new(format!("bad array at byte {}", self.i))),
                    }
                }
            }
            Some(b'{') => {
                self.i += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.i += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let k = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let v = self.value()?;
                    entries.push((Value::Str(k), v));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b'}') => {
                            self.i += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::new(format!("bad object at byte {}", self.i))),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(Error::new(format!("unexpected byte at {}", self.i))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.i;
            while let Some(&b) = self.s.get(self.i) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.i += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.s[start..self.i])
                    .map_err(|_| Error::new("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .s
                                .get(self.i + 1..self.i + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.i += 4;
                        }
                        _ => return Err(Error::new("bad escape")),
                    }
                    self.i += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.i += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.i += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.i += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.s[start..self.i]).map_err(|_| Error::new("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new("bad float"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::new("bad integer"))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::new("bad integer"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn scalar_round_trip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(!from_str::<bool>("false").unwrap());
        let s = "he\"llo\n\\world".to_string();
        let j = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&j).unwrap(), s);
    }

    #[test]
    fn container_round_trip() {
        let mut m: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        m.insert(9, vec![1, 2, 3]);
        m.insert(0, vec![]);
        let j = to_string_pretty(&m).unwrap();
        let back: BTreeMap<u64, Vec<u8>> = from_str(&j).unwrap();
        assert_eq!(m, back);
        let v: Option<(u32, String)> = Some((5, "x".into()));
        let back2: Option<(u32, String)> = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(v, back2);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("4 4").is_err());
        assert!(from_str::<u64>("{").is_err());
        assert!(from_str::<bool>("truu").is_err());
    }
}
