//! Offline stand-in for `serde_derive`.
//!
//! Generates implementations of the vendored `serde` crate's value-tree
//! `Serialize`/`Deserialize` traits. The input is parsed directly from the
//! `proc_macro` token stream (no `syn`/`quote` available in the hermetic
//! build), which is sufficient because the workspace only derives on
//! non-generic named structs, newtype/tuple structs, and enums with unit,
//! tuple, or struct variants. The only `#[serde(...)]` helper supported is
//! the field-level `#[serde(default)]` / `#[serde(default = "path")]`,
//! which is what wire-compatible schema evolution (old peers omitting a
//! newly added field) needs; any other `serde` attribute is a compile
//! error rather than a silent no-op.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
struct Field {
    name: String,
    /// Missing-field policy: `None` = required; `Some(None)` =
    /// `#[serde(default)]` (use `Default::default()`); `Some(Some(path))` =
    /// `#[serde(default = "path")]` (call `path()`).
    default: Option<Option<String>>,
}

#[derive(Debug, Clone)]
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

#[derive(Debug)]
struct Parsed {
    name: String,
    /// `None` for structs; variant list for enums.
    variants: Option<Vec<(String, Shape)>>,
    shape: Shape,
}

/// Splits a delimited group's tokens at top-level commas, tracking `<...>`
/// nesting so type arguments like `BTreeMap<u64, u64>` stay intact.
fn split_top_level(tokens: Vec<TokenTree>) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle: i32 = 0;
    for t in tokens {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                out.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(t);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Strips leading `#[...]` attributes and `pub`/`pub(...)` visibility.
fn skip_attrs_and_vis(chunk: &[TokenTree]) -> &[TokenTree] {
    let mut i = 0;
    loop {
        match chunk.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then the bracketed attribute group.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = chunk.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return &chunk[i..],
        }
    }
}

/// Reads the field's `#[serde(...)]` attributes (if any) from the leading
/// attribute tokens of a field chunk. Only `default` forms are supported.
fn field_default(chunk: &[TokenTree]) -> Option<Option<String>> {
    let mut found = None;
    let mut i = 0;
    while let Some(TokenTree::Punct(p)) = chunk.get(i) {
        if p.as_char() != '#' {
            break;
        }
        let Some(TokenTree::Group(attr)) = chunk.get(i + 1) else {
            break;
        };
        i += 2;
        let toks: Vec<TokenTree> = attr.stream().into_iter().collect();
        let is_serde =
            matches!(toks.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde");
        if !is_serde {
            continue; // doc comments and other attributes
        }
        let Some(TokenTree::Group(args)) = toks.get(1) else {
            panic!("serde_derive stub: malformed #[serde] attribute");
        };
        let args: Vec<TokenTree> = args.stream().into_iter().collect();
        match (args.first(), args.get(1), args.get(2), args.len()) {
            (Some(TokenTree::Ident(d)), None, None, _) if d.to_string() == "default" => {
                found = Some(None);
            }
            (
                Some(TokenTree::Ident(d)),
                Some(TokenTree::Punct(eq)),
                Some(TokenTree::Literal(path)),
                3,
            ) if d.to_string() == "default" && eq.as_char() == '=' => {
                found = Some(Some(path.to_string().trim_matches('"').to_string()));
            }
            _ => panic!(
                "serde_derive stub: only #[serde(default)] and #[serde(default = \"path\")] are supported"
            ),
        }
    }
    found
}

fn named_fields(tokens: Vec<TokenTree>) -> Vec<Field> {
    split_top_level(tokens)
        .into_iter()
        .filter_map(|chunk| {
            let default = field_default(&chunk);
            let rest = skip_attrs_and_vis(&chunk);
            match rest.first() {
                Some(TokenTree::Ident(id)) => Some(Field {
                    name: id.to_string(),
                    default,
                }),
                _ => None,
            }
        })
        .collect()
}

fn tuple_arity(tokens: Vec<TokenTree>) -> usize {
    split_top_level(tokens)
        .into_iter()
        .filter(|c| !skip_attrs_and_vis(c).is_empty())
        .count()
}

fn parse(input: TokenStream) -> Parsed {
    let mut toks = input.into_iter().peekable();
    let mut is_enum = false;
    // Skip outer attributes and visibility, find `struct`/`enum`.
    loop {
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
            }
            Some(TokenTree::Ident(id)) => match id.to_string().as_str() {
                "pub" => {
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
                "struct" => break,
                "enum" => {
                    is_enum = true;
                    break;
                }
                _ => {}
            },
            Some(_) => {}
            None => panic!("serde_derive stub: no struct/enum found"),
        }
    }
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive stub: generic type `{name}` is not supported");
        }
    }

    if is_enum {
        let body = match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
            other => panic!("serde_derive stub: expected enum body, got {other:?}"),
        };
        let variants = split_top_level(body.stream().into_iter().collect())
            .into_iter()
            .filter_map(|chunk| {
                let rest = skip_attrs_and_vis(&chunk);
                let vname = match rest.first() {
                    Some(TokenTree::Ident(id)) => id.to_string(),
                    _ => return None,
                };
                let shape = match rest.get(1) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        Shape::Named(named_fields(g.stream().into_iter().collect()))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        Shape::Tuple(tuple_arity(g.stream().into_iter().collect()))
                    }
                    _ => Shape::Unit,
                };
                Some((vname, shape))
            })
            .collect();
        Parsed {
            name,
            variants: Some(variants),
            shape: Shape::Unit,
        }
    } else {
        let shape = match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(named_fields(g.stream().into_iter().collect()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(tuple_arity(g.stream().into_iter().collect()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            other => panic!("serde_derive stub: unexpected struct body {other:?}"),
        };
        Parsed {
            name,
            variants: None,
            shape,
        }
    }
}

/// The wire name for a field: raw-identifier prefix stripped.
fn wire(name: &str) -> &str {
    name.trim_start_matches("r#")
}

fn str_value(s: &str) -> String {
    format!("::serde::Value::Str(::std::string::String::from(\"{s}\"))")
}

fn named_map_expr(fields: &[Field], access: impl Fn(&str) -> String) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "({}, ::serde::Serialize::to_value({})),",
                str_value(wire(&f.name)),
                access(&f.name)
            )
        })
        .collect();
    format!("::serde::Value::Map(::std::vec![{}])", entries.join(""))
}

/// One named-field initializer for a generated `Deserialize` impl. A
/// required field errors when absent; a defaulted field falls back.
fn deser_field(f: &Field, src: &str) -> String {
    let name = &f.name;
    let w = wire(name);
    match &f.default {
        None => format!("{name}: ::serde::Deserialize::from_value({src}.field(\"{w}\")?)?,"),
        Some(default) => {
            let fallback = match default {
                None => "::std::default::Default::default()".to_string(),
                Some(path) => format!("{path}()"),
            };
            format!(
                "{name}: match {src}.field_opt(\"{w}\")? {{\
                     ::std::option::Option::Some(__f) => ::serde::Deserialize::from_value(__f)?,\
                     ::std::option::Option::None => {fallback},\
                 }},"
            )
        }
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let p = parse(input);
    let name = &p.name;
    let body = match &p.variants {
        None => match &p.shape {
            Shape::Unit => "::serde::Value::Null".to_string(),
            Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
            Shape::Tuple(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Seq(::std::vec![{}])", elems.join(","))
            }
            Shape::Named(fields) => named_map_expr(fields, |f| format!("&self.{f}")),
        },
        Some(variants) => {
            let mut arms = String::new();
            for (vname, shape) in variants {
                let arm = match shape {
                    Shape::Unit => {
                        format!("{name}::{vname} => {},", str_value(vname))
                    }
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Seq(::std::vec![{}])", elems.join(","))
                        };
                        format!(
                            "{name}::{vname}({}) => ::serde::Value::Map(::std::vec![({}, {payload})]),",
                            binds.join(","),
                            str_value(vname)
                        )
                    }
                    Shape::Named(fields) => {
                        let payload = named_map_expr(fields, |f| f.to_string());
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        format!(
                            "{name}::{vname} {{ {} }} => ::serde::Value::Map(::std::vec![({}, {payload})]),",
                            binds.join(","),
                            str_value(vname)
                        )
                    }
                };
                arms.push_str(&arm);
            }
            format!("match self {{ {arms} }}")
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    );
    out.parse()
        .expect("serde_derive stub: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let p = parse(input);
    let name = &p.name;
    let err = |msg: &str| format!("::serde::DeError::new(\"{msg}\")");
    let body = match &p.variants {
        None => match &p.shape {
            Shape::Unit => format!("let _ = __v; ::std::result::Result::Ok({name})"),
            Shape::Tuple(1) => {
                format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
            }
            Shape::Tuple(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(__v.elem({i})?)?"))
                    .collect();
                format!("::std::result::Result::Ok({name}({}))", elems.join(","))
            }
            Shape::Named(fields) => {
                let inits: Vec<String> = fields.iter().map(|f| deser_field(f, "__v")).collect();
                format!("::std::result::Result::Ok({name} {{ {} }})", inits.join(""))
            }
        },
        Some(variants) => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for (vname, shape) in variants {
                match shape {
                    Shape::Unit => unit_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),"
                    )),
                    Shape::Tuple(n) => {
                        let expr = if *n == 1 {
                            format!("{name}::{vname}(::serde::Deserialize::from_value(__payload)?)")
                        } else {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_value(__payload.elem({i})?)?"
                                    )
                                })
                                .collect();
                            format!("{name}::{vname}({})", elems.join(","))
                        };
                        payload_arms.push_str(&format!(
                            "\"{vname}\" => ::std::result::Result::Ok({expr}),"
                        ));
                    }
                    Shape::Named(fields) => {
                        let inits: Vec<String> =
                            fields.iter().map(|f| deser_field(f, "__payload")).collect();
                        payload_arms.push_str(&format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname} {{ {} }}),",
                            inits.join("")
                        ));
                    }
                }
            }
            format!(
                "if let ::serde::Value::Str(__s) = __v {{\n\
                     return match __s.as_str() {{ {unit_arms} _ => ::std::result::Result::Err({unknown}) }};\n\
                 }}\n\
                 if let ::serde::Value::Map(__entries) = __v {{\n\
                     if __entries.len() == 1 {{\n\
                         if let ::serde::Value::Str(__tag) = &__entries[0].0 {{\n\
                             let __payload = &__entries[0].1;\n\
                             return match __tag.as_str() {{ {payload_arms} _ => ::std::result::Result::Err({unknown}) }};\n\
                         }}\n\
                     }}\n\
                 }}\n\
                 ::std::result::Result::Err({bad})",
                unknown = err(&format!("unknown variant of {name}")),
                bad = err(&format!("invalid value for enum {name}")),
            )
        }
    };
    let out = format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    );
    out.parse()
        .expect("serde_derive stub: generated invalid Deserialize impl")
}
