#!/usr/bin/env bash
# Bench-regression gate: compares the fresh BENCH_*.json artifacts against
# the checked-in baselines in crates/bench/baselines/, then proves the gate
# can actually reject by re-running it against a doctored baseline (wall
# metrics shrunk, floor metrics raised — machine-independent by
# construction). A gate whose failure path has never fired is no gate.
#
# Usage: scripts/bench_gate.sh
#   Expects target/release/bench_gate and fresh BENCH_*.json at the
#   workspace root (check.sh runs explore_bench/fault_bench first; run
#   them manually otherwise). To refresh baselines after an intentional
#   perf change: target/release/bench_gate --rebase  (see EXPERIMENTS.md).
set -euo pipefail
cd "$(dirname "$0")/.."

GATE=target/release/bench_gate
if [[ ! -x "$GATE" ]]; then
    echo "==> building bench_gate"
    cargo build --release -p bench --bin bench_gate
fi

echo "==> bench_gate (fresh artifacts vs. checked-in baselines)"
"$GATE"

echo "==> bench_gate --doctor (inverted self-test: MUST fail)"
if "$GATE" --doctor >/dev/null 2>&1; then
    echo "bench_gate.sh: self-test FAILED — the doctored baseline passed" >&2
    exit 1
fi
echo "doctored baseline rejected, as expected"
