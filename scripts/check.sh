#!/usr/bin/env bash
# Workspace CI gate: build, test, clippy, and the static persistency lint.
#
# The lint step runs twice: once over examples/ (must be clean) and once —
# inverted — over the known-buggy lint demo, proving the `--deny warnings`
# gate actually fires.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo doc --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo clippy (lib targets) -- -D clippy::unwrap_used on the input paths"
# The trace-ingest and repair-engine crates must never unwrap on their
# production paths: corrupted inputs are routed into the error taxonomy.
cargo clippy -p pmtrace -p hippocrates --no-deps -- -D clippy::unwrap_used

echo "==> hippoctl lint --deny warnings examples/"
target/release/hippoctl lint --deny warnings examples/

echo "==> hippoctl lint --deny warnings crates/pmapps/pmc/lint_demo.pmc (must fail)"
if target/release/hippoctl lint --deny warnings crates/pmapps/pmc/lint_demo.pmc; then
    echo "check.sh: lint gate did NOT fire on the known-buggy demo" >&2
    exit 1
fi
echo "lint gate fires on the known-buggy demo, as expected"

echo "==> hippoctl explore examples/ordering_demo.pmc (must find the reordering)"
if target/release/hippoctl explore examples/ordering_demo.pmc --budget 64 --seed 0; then
    echo "check.sh: exploration did NOT find the known reordering bug" >&2
    exit 1
fi
echo "exploration finds the unfenced-flush reordering, as expected"

echo "==> hippoctl fix --bug-source exploration + re-explore (must be clean)"
healed="$(mktemp -d)/healed.ir"
target/release/hippoctl fix examples/ordering_demo.pmc --bug-source exploration \
    --budget 64 --seed 0 -o "$healed"
target/release/hippoctl explore "$healed" --budget 64 --seed 0
rm -rf "$(dirname "$healed")"

echo "==> hippoctl faultcampaign --seeds 8 (every fault archetype survived)"
target/release/hippoctl faultcampaign --seeds 8

echo "==> explore_bench smoke (writes BENCH_explore.json)"
target/release/explore_bench
test -s BENCH_explore.json

echo "==> fault_bench smoke (writes BENCH_fault.json)"
target/release/fault_bench
test -s BENCH_fault.json

echo "==> bench-regression gate (+ inverted self-test)"
scripts/bench_gate.sh

echo "check.sh: all checks passed"
