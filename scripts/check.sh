#!/usr/bin/env bash
# Workspace CI gate: build, test, clippy, and the static persistency lint.
#
# The lint step runs twice: once over examples/ (must be clean) and once —
# inverted — over the known-buggy lint demo, proving the `--deny warnings`
# gate actually fires.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo doc --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo clippy (lib targets) -- -D clippy::unwrap_used on the input paths"
# The trace-ingest and repair-engine crates must never unwrap on their
# production paths: corrupted inputs are routed into the error taxonomy.
cargo clippy -p pmtrace -p hippocrates --no-deps -- -D clippy::unwrap_used

echo "==> hippoctl lint --deny warnings examples/"
target/release/hippoctl lint --deny warnings examples/

echo "==> hippoctl lint --deny warnings crates/pmapps/pmc/lint_demo.pmc (must fail)"
if target/release/hippoctl lint --deny warnings crates/pmapps/pmc/lint_demo.pmc; then
    echo "check.sh: lint gate did NOT fire on the known-buggy demo" >&2
    exit 1
fi
echo "lint gate fires on the known-buggy demo, as expected"

echo "==> hippoctl lint --deny redundant crates/pmapps/pmc/redundant_demo.pmc (must fail)"
if target/release/hippoctl lint --deny redundant crates/pmapps/pmc/redundant_demo.pmc; then
    echo "check.sh: redundancy gate did NOT fire on the over-persisted demo" >&2
    exit 1
fi
echo "redundancy gate fires on the over-persisted demo, as expected"

echo "==> hippoctl lint --deny warnings crates/pmapps/pmc/recursion_demo.pmc (recursive summaries converge)"
target/release/hippoctl lint --deny warnings crates/pmapps/pmc/recursion_demo.pmc

echo "==> hippoctl explore examples/ordering_demo.pmc (must find the reordering)"
if target/release/hippoctl explore examples/ordering_demo.pmc --budget 64 --seed 0; then
    echo "check.sh: exploration did NOT find the known reordering bug" >&2
    exit 1
fi
echo "exploration finds the unfenced-flush reordering, as expected"

echo "==> hippoctl fix --bug-source exploration + re-explore (must be clean)"
healed="$(mktemp -d)/healed.ir"
target/release/hippoctl fix examples/ordering_demo.pmc --bug-source exploration \
    --budget 64 --seed 0 -o "$healed"
target/release/hippoctl explore "$healed" --budget 64 --seed 0

echo "==> hippoctl optimize on the healed module + re-explore (still clean)"
optimized="$(dirname "$healed")/healed_opt.ir"
target/release/hippoctl optimize "$healed" --budget 64 --seed 0 -o "$optimized"
target/release/hippoctl explore "$optimized" --budget 64 --seed 0
rm -rf "$(dirname "$healed")"

echo "==> hippoctl faultcampaign --seeds 11 (every fault archetype survived)"
target/release/hippoctl faultcampaign --seeds 11

echo "==> kill-and-resume gate (crash after first commit, resume, byte-identical)"
txdir="$(mktemp -d)"
cat > "$txdir/buggy.pmc" <<'EOF'
fn main() {
    var p: ptr = pmem_map(0, 4096);
    store8(p, 0, 1);
    crashpoint();
    store8(p, 8, 2);
}
EOF
target/release/hippoctl fix "$txdir/buggy.pmc" \
    --journal "$txdir/ref.journal" -o "$txdir/ref.ir"
if target/release/hippoctl fix "$txdir/buggy.pmc" \
    --journal "$txdir/kr.journal" --crash-after-commit 1 -o "$txdir/never.ir"; then
    echo "check.sh: --crash-after-commit did NOT kill the run" >&2
    exit 1
fi
target/release/hippoctl fix "$txdir/buggy.pmc" \
    --journal "$txdir/kr.journal" --resume -o "$txdir/resumed.ir" 2> "$txdir/resume.log"
grep -q "resumed from journal" "$txdir/resume.log"
cmp "$txdir/ref.ir" "$txdir/resumed.ir"
echo "killed run resumed to the byte-identical module, as expected"

echo "==> corrupted-journal gate (resume must refuse, inverted self-test)"
# Flip a byte in the journal header: interior corruption, never a torn tail.
printf 'X' | dd of="$txdir/kr.journal" bs=1 seek=10 conv=notrunc status=none
if target/release/hippoctl fix "$txdir/buggy.pmc" \
    --journal "$txdir/kr.journal" --resume -o "$txdir/bad.ir" 2> "$txdir/corrupt.log"; then
    echo "check.sh: resume did NOT refuse the corrupted journal" >&2
    exit 1
fi
grep -q "refusing to resume" "$txdir/corrupt.log"
echo "corrupted journal refused with a clear diagnostic, as expected"
rm -rf "$txdir"

echo "==> explore_bench smoke (writes BENCH_explore.json)"
target/release/explore_bench
test -s BENCH_explore.json

echo "==> fault_bench smoke (writes BENCH_fault.json)"
target/release/fault_bench
test -s BENCH_fault.json

echo "==> tx_bench smoke (writes BENCH_tx.json)"
target/release/tx_bench
test -s BENCH_tx.json

echo "==> opt_bench smoke (writes BENCH_opt.json)"
target/release/opt_bench
test -s BENCH_opt.json

echo "==> bench-regression gate (+ inverted self-test)"
scripts/bench_gate.sh

echo "check.sh: all checks passed"
