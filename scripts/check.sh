#!/usr/bin/env bash
# Workspace CI gate: build, test, clippy, and the static persistency lint.
#
# The lint step runs twice: once over examples/ (must be clean) and once —
# inverted — over the known-buggy lint demo, proving the `--deny warnings`
# gate actually fires.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> differential tier gate (interp and fast must be observationally identical)"
cargo test -q --release -p system-tests --test tier_differential

echo "==> cargo doc --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo clippy (lib targets) -- -D clippy::unwrap_used on the input paths"
# The trace-ingest and repair-engine crates must never unwrap on their
# production paths: corrupted inputs are routed into the error taxonomy.
cargo clippy -p pmtrace -p hippocrates --no-deps -- -D clippy::unwrap_used

echo "==> hippoctl lint --deny warnings examples/"
target/release/hippoctl lint --deny warnings examples/

echo "==> hippoctl lint --deny warnings crates/pmapps/pmc/lint_demo.pmc (must fail)"
if target/release/hippoctl lint --deny warnings crates/pmapps/pmc/lint_demo.pmc; then
    echo "check.sh: lint gate did NOT fire on the known-buggy demo" >&2
    exit 1
fi
echo "lint gate fires on the known-buggy demo, as expected"

echo "==> hippoctl lint --deny redundant crates/pmapps/pmc/redundant_demo.pmc (must fail)"
if target/release/hippoctl lint --deny redundant crates/pmapps/pmc/redundant_demo.pmc; then
    echo "check.sh: redundancy gate did NOT fire on the over-persisted demo" >&2
    exit 1
fi
echo "redundancy gate fires on the over-persisted demo, as expected"

echo "==> hippoctl lint --deny warnings crates/pmapps/pmc/recursion_demo.pmc (recursive summaries converge)"
target/release/hippoctl lint --deny warnings crates/pmapps/pmc/recursion_demo.pmc

echo "==> hippoctl explore examples/ordering_demo.pmc (must find the reordering)"
if target/release/hippoctl explore examples/ordering_demo.pmc --budget 64 --seed 0; then
    echo "check.sh: exploration did NOT find the known reordering bug" >&2
    exit 1
fi
echo "exploration finds the unfenced-flush reordering, as expected"

echo "==> hippoctl fix --bug-source exploration + re-explore (must be clean)"
healed="$(mktemp -d)/healed.ir"
target/release/hippoctl fix examples/ordering_demo.pmc --bug-source exploration \
    --budget 64 --seed 0 -o "$healed"
target/release/hippoctl explore "$healed" --budget 64 --seed 0

echo "==> hippoctl optimize on the healed module + re-explore (still clean)"
optimized="$(dirname "$healed")/healed_opt.ir"
target/release/hippoctl optimize "$healed" --budget 64 --seed 0 -o "$optimized"
target/release/hippoctl explore "$optimized" --budget 64 --seed 0
rm -rf "$(dirname "$healed")"

echo "==> hippoctl faultcampaign --seeds 18 (every fault archetype survived, incl. net.* and shard.*)"
target/release/hippoctl faultcampaign --seeds 18

echo "==> kill-and-resume gate (crash after first commit, resume, byte-identical)"
txdir="$(mktemp -d)"
cat > "$txdir/buggy.pmc" <<'EOF'
fn main() {
    var p: ptr = pmem_map(0, 4096);
    store8(p, 0, 1);
    crashpoint();
    store8(p, 8, 2);
}
EOF
target/release/hippoctl fix "$txdir/buggy.pmc" \
    --journal "$txdir/ref.journal" -o "$txdir/ref.ir"
if target/release/hippoctl fix "$txdir/buggy.pmc" \
    --journal "$txdir/kr.journal" --crash-after-commit 1 -o "$txdir/never.ir"; then
    echo "check.sh: --crash-after-commit did NOT kill the run" >&2
    exit 1
fi
target/release/hippoctl fix "$txdir/buggy.pmc" \
    --journal "$txdir/kr.journal" --resume -o "$txdir/resumed.ir" 2> "$txdir/resume.log"
grep -q "resumed from journal" "$txdir/resume.log"
cmp "$txdir/ref.ir" "$txdir/resumed.ir"
echo "killed run resumed to the byte-identical module, as expected"

echo "==> corrupted-journal gate (resume must refuse, inverted self-test)"
# Flip a byte in the journal header: interior corruption, never a torn tail.
printf 'X' | dd of="$txdir/kr.journal" bs=1 seek=10 conv=notrunc status=none
if target/release/hippoctl fix "$txdir/buggy.pmc" \
    --journal "$txdir/kr.journal" --resume -o "$txdir/bad.ir" 2> "$txdir/corrupt.log"; then
    echo "check.sh: resume did NOT refuse the corrupted journal" >&2
    exit 1
fi
grep -q "refusing to resume" "$txdir/corrupt.log"
echo "corrupted journal refused with a clear diagnostic, as expected"
rm -rf "$txdir"

echo "==> repair-as-a-service gate (serve, submit, poll, drain, resume after kill -9)"
ddir="$(mktemp -d)"
dsock="$ddir/hippod.sock"
djournal="$ddir/jobs.journal"
target/release/hippoctl serve --socket "$dsock" --journal "$djournal" --workers 2 \
    > "$ddir/serve.log" 2>&1 &
dpid=$!
for _ in $(seq 1 100); do
    if target/release/hippoctl health --socket "$dsock" >/dev/null 2>&1; then break; fi
    sleep 0.1
done
target/release/hippoctl health --socket "$dsock" | grep -q '"ok":true'
# A fix campaign over the socket, then its healed artifact back through the
# daemon as explore and lint jobs (the .ir round-trips the wire).
target/release/hippoctl submit --socket "$dsock" examples/ordering_demo.pmc \
    --kind fix --bug-source exploration --budget 64 --seed 0 --wait -o "$ddir/healed.ir"
target/release/hippoctl submit --socket "$dsock" "$ddir/healed.ir" \
    --kind explore --budget 64 --seed 0 --wait
lint_id="$(target/release/hippoctl submit --socket "$dsock" "$ddir/healed.ir" --kind lint)"
for _ in $(seq 1 100); do
    line="$(target/release/hippoctl status --socket "$dsock" "$lint_id")"
    case "$line" in
        *failed*) echo "check.sh: daemon lint job failed: $line" >&2; exit 1 ;;
        *done*) break ;;
    esac
    sleep 0.1
done
case "$line" in *done*) ;; *) echo "check.sh: daemon lint job never settled" >&2; exit 1 ;; esac
# Graceful shutdown drains and removes the socket.
target/release/hippoctl shutdown --socket "$dsock"
wait "$dpid"
test ! -e "$dsock"
echo "daemon served fix/explore/lint jobs and drained cleanly, as expected"

echo "==> repair-as-a-service gate (kill -9 mid-campaign, restart resumes)"
cat > "$ddir/crashy.pmc" <<'EOF'
fn main() {
    var p: ptr = pmem_map(1, 4096);
    store8(p, 0, 1);
    store8(p, 64, 2);
    print(load8(p, 0));
}
EOF
target/release/hippoctl serve --socket "$dsock" --journal "$djournal" --workers 2 \
    > "$ddir/serve2.log" 2>&1 &
dpid=$!
for _ in $(seq 1 100); do
    if target/release/hippoctl health --socket "$dsock" >/dev/null 2>&1; then break; fi
    sleep 0.1
done
job_id="$(target/release/hippoctl submit --socket "$dsock" "$ddir/crashy.pmc" --kind fix)"
kill -9 "$dpid"
wait "$dpid" 2>/dev/null || true
# Restart on the same journal: the stale socket and dead holder's lock must
# not get in the way, and the acknowledged job must reach `done`.
target/release/hippoctl serve --socket "$dsock" --journal "$djournal" --workers 2 \
    > "$ddir/serve3.log" 2>&1 &
dpid=$!
for _ in $(seq 1 100); do
    if target/release/hippoctl health --socket "$dsock" >/dev/null 2>&1; then break; fi
    sleep 0.1
done
for _ in $(seq 1 200); do
    line="$(target/release/hippoctl status --socket "$dsock" "$job_id")"
    case "$line" in
        *failed*) echo "check.sh: resumed job failed: $line" >&2; exit 1 ;;
        *done*) break ;;
    esac
    sleep 0.1
done
case "$line" in *done*) ;; *) echo "check.sh: job never settled after resume" >&2; exit 1 ;; esac
target/release/hippoctl shutdown --socket "$dsock"
wait "$dpid"
rm -rf "$ddir"
echo "killed daemon restarted on its journal and finished the campaign, as expected"

echo "==> hot-standby failover gate (TCP campaign, kill -9 primary, standby finishes byte-identical)"
fdir="$(mktemp -d)"
fjournal="$fdir/jobs.journal"
pport=$((20000 + RANDOM % 20000))
sport=$((pport + 1))
# The do-no-harm reference: the same fix standalone.
target/release/hippoctl fix examples/ordering_demo.pmc --bug-source exploration \
    --budget 64 --seed 0 -o "$fdir/ref.ir"
target/release/hippoctl serve --listen "127.0.0.1:$pport" --journal "$fjournal" --workers 2 \
    > "$fdir/primary.log" 2>&1 &
ppid=$!
target/release/hippoctl serve --listen "127.0.0.1:$sport" --journal "$fjournal" --standby --workers 2 \
    > "$fdir/standby.log" 2>&1 &
spid=$!
for _ in $(seq 1 100); do
    if target/release/hippoctl health --connect "127.0.0.1:$pport" >/dev/null 2>&1; then break; fi
    sleep 0.1
done
target/release/hippoctl health --connect "127.0.0.1:$pport" | grep -q '"standby":false'
target/release/hippoctl health --connect "127.0.0.1:$sport" | grep -q '"standby":true'
job_id="$(target/release/hippoctl submit --connect "127.0.0.1:$pport" examples/ordering_demo.pmc \
    --kind fix --bug-source exploration --budget 64 --seed 0)"
kill -9 "$ppid"
wait "$ppid" 2>/dev/null || true
# The standby wins the journal flock, replays, and re-queues the campaign.
took_over=0
for _ in $(seq 1 100); do
    if target/release/hippoctl health --connect "127.0.0.1:$sport" 2>/dev/null \
        | grep -q '"standby":false'; then took_over=1; break; fi
    sleep 0.1
done
test "$took_over" = 1 || { echo "check.sh: standby never took over" >&2; exit 1; }
for _ in $(seq 1 200); do
    line="$(target/release/hippoctl status --connect "127.0.0.1:$sport" "$job_id")"
    case "$line" in
        *failed*) echo "check.sh: failover job failed: $line" >&2; exit 1 ;;
        *done*) break ;;
    esac
    sleep 0.1
done
case "$line" in *done*) ;; *) echo "check.sh: job never settled after failover" >&2; exit 1 ;; esac
# The journaled artifact is served warm — and byte-identical to standalone.
target/release/hippoctl submit --connect "127.0.0.1:$sport" examples/ordering_demo.pmc \
    --kind fix --bug-source exploration --budget 64 --seed 0 --wait -o "$fdir/standby.ir"
cmp "$fdir/ref.ir" "$fdir/standby.ir"
target/release/hippoctl shutdown --connect "127.0.0.1:$sport"
wait "$spid"
echo "standby took over the killed primary and served the byte-identical artifact, as expected"

echo "==> kill-worker-mid-campaign gate (shard chaos seed 14, heals byte-identical)"
wdir="$(mktemp -d)"
cat > "$wdir/campaign.pmc" <<'EOF'
fn main() {
    var p: ptr = pmem_map(9, 4096);
    store8(p, 0, 1);
    clwb(p);
    sfence();
    store8(p, 64, 2);
    clwb(p + 64);
    sfence();
    store8(p, 128, 3);
    print(load8(p, 0) + load8(p, 64) + load8(p, 128));
}
EOF
wsock="$wdir/hippod.sock"
# The do-no-harm reference: the same 4-shard campaign, no faults.
target/release/hippoctl serve --socket "$wsock" --journal "$wdir/ref.journal" --workers 3 \
    > "$wdir/ref.log" 2>&1 &
wpid=$!
for _ in $(seq 1 100); do
    if target/release/hippoctl health --socket "$wsock" >/dev/null 2>&1; then break; fi
    sleep 0.1
done
target/release/hippoctl submit --socket "$wsock" "$wdir/campaign.pmc" \
    --kind explore --shards 4 --wait -o "$wdir/ref.out"
target/release/hippoctl shutdown --socket "$wsock"
wait "$wpid"
# Chaos run: archetype 14 kills two shard workers mid-lease; the reaper
# must reclaim, re-run, and merge the exact reference bytes.
target/release/hippoctl serve --socket "$wsock" --journal "$wdir/chaos.journal" --workers 3 \
    --fault-shard 14 --lease-ttl-ms 100 > "$wdir/chaos.log" 2>&1 &
wpid=$!
for _ in $(seq 1 100); do
    if target/release/hippoctl health --socket "$wsock" >/dev/null 2>&1; then break; fi
    sleep 0.1
done
target/release/hippoctl submit --socket "$wsock" "$wdir/campaign.pmc" \
    --kind explore --shards 4 --wait -o "$wdir/chaos.out"
target/release/hippoctl shutdown --socket "$wsock"
wait "$wpid"
cmp "$wdir/ref.out" "$wdir/chaos.out"
# The degradation trail is on the record, not just implied.
grep -q "LeaseReclaimed" "$wdir/chaos.journal"
rm -rf "$wdir"
echo "killed shard workers were reaped and the campaign healed byte-identically, as expected"

echo "==> triple-standby election gate (kill -9 two primaries in a row, epochs stay monotonic)"
edir="$(mktemp -d)"
ejournal="$edir/jobs.journal"
cat > "$edir/app.pmc" <<'EOF'
fn main() {
    var p: ptr = pmem_map(3, 4096);
    store8(p, 0, 5);
    print(load8(p, 0));
}
EOF
esocks=()
epids=()
for i in 0 1 2 3; do
    eflags=""
    if [ "$i" != 0 ]; then eflags="--standby"; fi
    # shellcheck disable=SC2086
    target/release/hippoctl serve --socket "$edir/d$i.sock" --journal "$ejournal" \
        --workers 2 $eflags > "$edir/d$i.log" 2>&1 &
    epids+=($!)
    esocks+=("$edir/d$i.sock")
done
find_primary() {
    for _ in $(seq 1 150); do
        for idx in "${!esocks[@]}"; do
            if [ -n "${epids[$idx]}" ] && target/release/hippoctl health --socket "${esocks[$idx]}" 2>/dev/null \
                | grep -q '"standby":false'; then
                echo "$idx"
                return 0
            fi
        done
        sleep 0.1
    done
    return 1
}
for round in 1 2; do
    leader="$(find_primary)" || { echo "check.sh: no primary emerged (round $round)" >&2; exit 1; }
    target/release/hippoctl health --socket "${esocks[$leader]}" | grep -q "\"epoch\":$round"
    target/release/hippoctl submit --socket "${esocks[$leader]}" "$edir/app.pmc" \
        --kind fix --wait >/dev/null
    kill -9 "${epids[$leader]}"
    wait "${epids[$leader]}" 2>/dev/null || true
    epids[$leader]=""
done
leader="$(find_primary)" || { echo "check.sh: no successor emerged after two kills" >&2; exit 1; }
target/release/hippoctl health --socket "${esocks[$leader]}" | grep -q '"epoch":3'
target/release/hippoctl submit --socket "${esocks[$leader]}" "$edir/app.pmc" \
    --kind fix --wait >/dev/null
for idx in "${!epids[@]}"; do
    if [ -n "${epids[$idx]}" ]; then
        target/release/hippoctl shutdown --socket "${esocks[$idx]}"
        wait "${epids[$idx]}"
    fi
done
rm -rf "$edir"
echo "three standbys elected successors across two murders with monotonic epochs, as expected"

echo "==> slow-client gate (a stalled mid-frame peer never blocks the daemon)"
lport=$((sport + 1))
target/release/hippoctl serve --listen "127.0.0.1:$lport" --workers 2 \
    > "$fdir/slow.log" 2>&1 &
lpid=$!
for _ in $(seq 1 100); do
    if target/release/hippoctl health --connect "127.0.0.1:$lport" >/dev/null 2>&1; then break; fi
    sleep 0.1
done
# A hostile peer: declares a 256-byte frame, sends 8 bytes of it, stalls.
exec 3<>"/dev/tcp/127.0.0.1/$lport"
printf '\x00\x00\x01\x00abcd' >&3
# While that connection dangles mid-frame, the daemon still answers.
target/release/hippoctl health --connect "127.0.0.1:$lport" | grep -q '"ok":true'
target/release/hippoctl ping --connect "127.0.0.1:$lport" | grep -q pong
exec 3>&-
target/release/hippoctl shutdown --connect "127.0.0.1:$lport"
wait "$lpid"
rm -rf "$fdir"
echo "stalled mid-frame peer left the daemon fully responsive, as expected"

echo "==> explore_bench smoke (writes BENCH_explore.json)"
target/release/explore_bench
test -s BENCH_explore.json

echo "==> fault_bench smoke (writes BENCH_fault.json)"
target/release/fault_bench
test -s BENCH_fault.json

echo "==> tx_bench smoke (writes BENCH_tx.json)"
target/release/tx_bench
test -s BENCH_tx.json

echo "==> opt_bench smoke (writes BENCH_opt.json)"
target/release/opt_bench
test -s BENCH_opt.json

echo "==> serve_bench smoke (writes BENCH_serve.json)"
target/release/serve_bench
test -s BENCH_serve.json

echo "==> bench-regression gate (+ inverted self-test)"
scripts/bench_gate.sh

echo "check.sh: all checks passed"
