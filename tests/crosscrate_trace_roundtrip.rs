//! Trace interchange across crates: the trace a VM emits survives JSON
//! serialization and still drives localization and repair — the scenario
//! where the bug finder and the fixer are separate processes, exactly how
//! pmemcheck feeds Hippocrates in the original toolchain.

use hippocrates::{Hippocrates, RepairOptions};
use pmcheck::check_trace;
use pmtrace::Trace;
use pmvm::{Vm, VmOptions};

#[test]
fn serialized_trace_drives_repair() {
    let m0 = minipmdk::build_buggy("pmdk-447").unwrap();
    let entry = minipmdk::entry_for("pmdk-447");
    let run = Vm::new(VmOptions::default()).run(&m0, &entry).unwrap();
    let trace = run.trace.unwrap();

    // Ship the trace through its wire format.
    let json = trace.to_json().unwrap();
    let trace2 = Trace::from_json(&json).unwrap();
    assert_eq!(trace, trace2);

    // Check and repair from the deserialized copy.
    let report = check_trace(&trace2);
    assert!(!report.is_clean());
    let mut m = minipmdk::build_buggy("pmdk-447").unwrap();
    let summary = Hippocrates::new(RepairOptions::default())
        .repair_once(&mut m, &trace2, &report)
        .unwrap();
    assert!(!summary.fixes.is_empty());
    let checked = pmcheck::run_and_check(&m, &entry, VmOptions::default()).unwrap();
    assert!(checked.report.is_clean(), "{}", checked.report.render());
}

#[test]
fn text_rendering_of_real_traces_is_stable() {
    let m = pmapps::pclht::build_correct().unwrap();
    let run = Vm::new(VmOptions::default())
        .run(&m, pmapps::pclht::ENTRY)
        .unwrap();
    let trace = run.trace.unwrap();
    let text = pmtrace::format::render_text(&trace);
    assert!(text.contains("REGISTER"));
    assert!(text.contains("STORE"));
    assert!(text.contains("FLUSH"));
    assert!(text.contains("FENCE"));
    // Stack frames are rendered for nested PM stores.
    assert!(
        text.contains("by clht_put") || text.contains("by pclht_main"),
        "{}",
        &text[..500]
    );
}

#[test]
fn source_loc_only_traces_still_locate() {
    // Strip structural refs from every event (a foreign bug finder that
    // only reports source lines); localization must fall back to debug info.
    let m = minipmdk::build_buggy("pmdk-452").unwrap();
    let entry = minipmdk::entry_for("pmdk-452");
    let run = Vm::new(VmOptions::default()).run(&m, &entry).unwrap();
    let trace = run.trace.unwrap();
    let mut report = check_trace(&trace);
    for bug in &mut report.bugs {
        bug.store_at = None;
    }
    let mut m2 = minipmdk::build_buggy("pmdk-452").unwrap();
    let summary = Hippocrates::new(RepairOptions::default())
        .repair_once(&mut m2, &trace, &report)
        .unwrap();
    assert!(!summary.fixes.is_empty());
    let checked = pmcheck::run_and_check(&m2, &entry, VmOptions::default()).unwrap();
    assert!(checked.report.is_clean(), "{}", checked.report.render());
}

#[test]
fn portable_log_format_drives_repair() {
    // Simulate a foreign bug finder: export the trace to the line-based
    // log, reimport it, and repair from the imported copy.
    let m0 = pmapps::memcached::build_buggy("mm-4").unwrap();
    let run = Vm::new(VmOptions::default())
        .run(&m0, pmapps::memcached::ENTRY)
        .unwrap();
    let log = pmtrace::log::to_log(run.trace.as_ref().unwrap());
    let imported = pmtrace::log::from_log(&log).unwrap();
    assert_eq!(run.trace.as_ref().unwrap(), &imported);

    let report = check_trace(&imported);
    assert!(!report.is_clean());
    let mut m = pmapps::memcached::build_buggy("mm-4").unwrap();
    let summary = Hippocrates::new(RepairOptions::default())
        .repair_once(&mut m, &imported, &report)
        .unwrap();
    assert!(!summary.fixes.is_empty());
    let checked =
        pmcheck::run_and_check(&m, pmapps::memcached::ENTRY, VmOptions::default()).unwrap();
    assert!(checked.report.is_clean(), "{}", checked.report.render());
}
