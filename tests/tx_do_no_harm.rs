//! Property-based verification of the repair transaction's do-no-harm
//! contract: a round that fails to commit rolls the module back
//! byte-identically and quarantines its fixes, a transiently vetoed commit
//! converges to the exact module a fault-free run produces, and the
//! write-ahead journal replays committed rounds idempotently.

use hippocrates::{Hippocrates, RepairOptions};
use pmfault::{FaultKind, FaultPlan, FaultSite, Trigger};
use pmvm::{Vm, VmOptions};
use proptest::prelude::*;

/// The publish-pattern program family from `explore_do_no_harm`: `n_keys`
/// records, each a data line and a flag line, with per-site persists
/// controlled by `mask`. Dense in real durability bugs, sparse in clean
/// members — both matter for the transaction properties.
fn program(n_keys: u8, mask: u8) -> String {
    let mut body = String::new();
    for k in 0..n_keys {
        let data_off = u32::from(k) * 128;
        let flag_off = u32::from(k) * 128 + 64;
        let val = u32::from(k) * 3 + 1;
        body.push_str(&format!("    store8(p, {data_off}, {val});\n"));
        if (mask >> (2 * (k % 4))) & 1 == 1 {
            body.push_str(&format!("    clwb(p + {data_off});\n    sfence();\n"));
        }
        body.push_str(&format!("    store8(p, {flag_off}, 1);\n"));
        if (mask >> (2 * (k % 4) + 1)) & 1 == 1 {
            body.push_str(&format!("    clwb(p + {flag_off});\n    sfence();\n"));
        }
    }
    format!(
        "fn main() {{\n    var p: ptr = pmem_map(0, 8192);\n{body}    print(load8(p, 0));\n}}\n"
    )
}

fn veto(trigger: Trigger) -> FaultPlan {
    FaultPlan::single(FaultSite::TxCommit, trigger, FaultKind::CommitVeto)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// THE rollback property: when every commit is vetoed, no round ever
    /// lands — the module is byte-identical to the input, every planned fix
    /// sits in the quarantine ledger, and none of the quarantined fixes
    /// appear in the (empty) committed fix list.
    #[test]
    fn permanent_veto_rolls_back_byte_identically(n_keys in 1u8..4, mask in 0u8..=255) {
        let src = program(n_keys, mask);
        let mut m = pmlang::compile_one("prop.pmc", &src).unwrap();
        let before = pmir::display::print_module(&m);
        let result = Hippocrates::new(RepairOptions {
            fault: Some(veto(Trigger::Always)),
            source_retries: 0,
            ..RepairOptions::default()
        })
        .repair_until_clean(&mut m, "main");
        // Rollback is unconditional: whatever the run's verdict, the module
        // the caller holds is the module the caller passed in.
        prop_assert_eq!(pmir::display::print_module(&m), before);
        match result {
            Ok(outcome) => {
                // Only a program with nothing to fix escapes the veto.
                prop_assert!(outcome.clean);
                prop_assert!(outcome.fixes.is_empty());
                prop_assert!(outcome.quarantined.is_empty());
            }
            Err(e) => {
                let partial = e.partial_outcome();
                prop_assert!(partial.is_some(), "veto failure must carry a partial outcome: {e}");
                if let Some(partial) = partial {
                    prop_assert_eq!(partial.committed_rounds, 0);
                    prop_assert!(partial.fixes.is_empty(), "{:?}", partial.fixes);
                    prop_assert!(!partial.quarantined.is_empty());
                    for q in &partial.quarantined {
                        prop_assert!(!q.targets.is_empty());
                        prop_assert!(q.reason.contains("vetoed"), "{}", q.reason);
                    }
                }
            }
        }
    }

    /// A transient veto (one failed journal append) is retried away: the run
    /// converges clean, quarantines nothing, and produces the byte-identical
    /// module of a fault-free run — with unchanged observable output.
    #[test]
    fn transient_veto_converges_to_the_fault_free_module(n_keys in 1u8..4, mask in 0u8..=255) {
        let src = program(n_keys, mask);
        let before = {
            let m = pmlang::compile_one("prop.pmc", &src).unwrap();
            Vm::new(VmOptions::default()).run(&m, "main").unwrap().output
        };
        let mut clean_m = pmlang::compile_one("prop.pmc", &src).unwrap();
        let clean = Hippocrates::new(RepairOptions::default())
            .repair_until_clean(&mut clean_m, "main")
            .unwrap();
        let mut vetoed_m = pmlang::compile_one("prop.pmc", &src).unwrap();
        let vetoed = Hippocrates::new(RepairOptions {
            fault: Some(veto(Trigger::Nth(0))),
            ..RepairOptions::default()
        })
        .repair_until_clean(&mut vetoed_m, "main")
        .unwrap();
        prop_assert!(vetoed.clean);
        prop_assert!(vetoed.quarantined.is_empty(), "{:?}", vetoed.quarantined);
        prop_assert_eq!(vetoed.fixes.len(), clean.fixes.len());
        prop_assert_eq!(
            pmir::display::print_module(&vetoed_m),
            pmir::display::print_module(&clean_m)
        );
        let after = Vm::new(VmOptions::default()).run(&vetoed_m, "main").unwrap();
        prop_assert_eq!(before, after.output);
    }

    /// Journal round-trip: resuming a finished run's journal on a fresh copy
    /// of the input replays every committed round idempotently and converges
    /// to the byte-identical module.
    #[test]
    fn journal_resume_replays_committed_rounds(n_keys in 1u8..4, mask in 0u8..=255) {
        let dir = std::env::temp_dir().join(format!("hippo-tx-prop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("k{n_keys}m{mask}.journal"));
        std::fs::remove_file(&path).ok();
        let src = program(n_keys, mask);
        let opts = || RepairOptions {
            journal_path: Some(path.clone()),
            ..RepairOptions::default()
        };

        let mut m1 = pmlang::compile_one("prop.pmc", &src).unwrap();
        let first = Hippocrates::new(opts())
            .repair_until_clean(&mut m1, "main")
            .unwrap();
        prop_assert_eq!(first.replayed_rounds, 0);

        let mut m2 = pmlang::compile_one("prop.pmc", &src).unwrap();
        let second = Hippocrates::new(RepairOptions { resume: true, ..opts() })
            .repair_until_clean(&mut m2, "main")
            .unwrap();
        prop_assert!(second.clean);
        prop_assert_eq!(second.replayed_rounds, first.committed_rounds);
        prop_assert_eq!(second.committed_rounds, first.committed_rounds);
        prop_assert_eq!(second.fixes.len(), first.fixes.len());
        prop_assert_eq!(
            pmir::display::print_module(&m2),
            pmir::display::print_module(&m1)
        );
        std::fs::remove_file(&path).ok();
    }
}

/// The family is not vacuous: the fully unpersisted member has bugs for the
/// veto to quarantine.
#[test]
fn family_contains_real_bugs() {
    let src = program(2, 0);
    let mut m = pmlang::compile_one("prop.pmc", &src).unwrap();
    let outcome = Hippocrates::new(RepairOptions::default())
        .repair_until_clean(&mut m, "main")
        .unwrap();
    assert!(!outcome.fixes.is_empty(), "mask 0 must need fixes");
}
