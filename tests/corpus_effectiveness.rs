//! §6.1 as an integration test: every corpus bug is detected, repaired, and
//! re-verified clean; fix shapes match the Fig. 3 expectations; Full-AA and
//! Trace-AA agree.

use bugdb::{corpus, ExpectedFix, Target};
use hippocrates::{Hippocrates, MarkingMode, RepairOptions};
use pmcheck::run_and_check;
use pmir::Module;
use pmvm::VmOptions;

fn build(id: &str, target: Target) -> (Module, String) {
    match target {
        Target::Pmdk => (minipmdk::build_buggy(id).unwrap(), minipmdk::entry_for(id)),
        Target::Pclht => (
            pmapps::pclht::build_buggy(id).unwrap(),
            pmapps::pclht::ENTRY.to_string(),
        ),
        Target::Memcached => (
            pmapps::memcached::build_buggy(id).unwrap(),
            pmapps::memcached::ENTRY.to_string(),
        ),
    }
}

#[test]
fn all_23_bugs_detected_and_repaired() {
    for bug in corpus() {
        let (mut m, entry) = build(bug.id, bug.target);
        let pre = run_and_check(&m, &entry, VmOptions::default()).unwrap();
        assert!(!pre.report.is_clean(), "{}: undetected", bug.id);

        let outcome = Hippocrates::new(RepairOptions::default())
            .repair_until_clean(&mut m, &entry)
            .unwrap_or_else(|e| panic!("{}: {e}", bug.id));
        assert!(outcome.clean, "{}: not clean", bug.id);
        assert!(!outcome.fixes.is_empty(), "{}: no fixes", bug.id);

        // Re-running the bug finder on the repaired program is the paper's
        // validation step.
        let post = run_and_check(&m, &entry, VmOptions::default()).unwrap();
        assert!(
            post.report.is_clean(),
            "{}: {}",
            bug.id,
            post.report.render()
        );
    }
}

#[test]
fn pmdk_fix_shapes_match_fig3() {
    for bug in corpus().iter().filter(|b| b.target == Target::Pmdk) {
        let (mut m, entry) = build(bug.id, bug.target);
        let outcome = Hippocrates::new(RepairOptions::default())
            .repair_until_clean(&mut m, &entry)
            .unwrap();
        let interproc = outcome.interprocedural_count() > 0;
        match bug.expected_fix.unwrap() {
            ExpectedFix::InterproceduralFlushFence => {
                assert!(interproc, "{}: expected interprocedural fix", bug.id)
            }
            ExpectedFix::IntraproceduralFlush => {
                assert!(!interproc, "{}: expected intraprocedural fix", bug.id);
                assert!(
                    outcome
                        .fixes
                        .iter()
                        .all(|f| matches!(f.kind, hippocrates::FixKind::IntraFlush)),
                    "{}: expected pure flush fixes, got {:?}",
                    bug.id,
                    outcome.fixes
                );
            }
        }
    }
}

#[test]
fn marking_modes_agree_on_every_corpus_bug() {
    for bug in corpus() {
        let (mut full, entry) = build(bug.id, bug.target);
        Hippocrates::new(RepairOptions::default())
            .repair_until_clean(&mut full, &entry)
            .unwrap();
        let (mut traced, entry) = build(bug.id, bug.target);
        Hippocrates::new(RepairOptions {
            marking: MarkingMode::TraceAa,
            ..RepairOptions::default()
        })
        .repair_until_clean(&mut traced, &entry)
        .unwrap();
        assert_eq!(
            pmir::display::print_module(&full),
            pmir::display::print_module(&traced),
            "{}: heuristics diverged",
            bug.id
        );
    }
}

#[test]
fn intraprocedural_mode_also_fixes_everything() {
    // The RedisH-intra configuration is the safety net: it must repair the
    // whole corpus too (hoisting is purely a performance optimization).
    for bug in corpus() {
        let (mut m, entry) = build(bug.id, bug.target);
        let outcome = Hippocrates::new(RepairOptions::intraprocedural_only())
            .repair_until_clean(&mut m, &entry)
            .unwrap_or_else(|e| panic!("{}: {e}", bug.id));
        assert!(outcome.clean, "{}", bug.id);
        assert_eq!(outcome.interprocedural_count(), 0, "{}", bug.id);
    }
}
