//! End-to-end pipeline test (paper Fig. 2): source → IR → execution →
//! pmemcheck trace → Hippocrates repair → re-verification, across crates.

use hippocrates::{FixKind, Hippocrates, RepairOptions};
use pmcheck::{run_and_check, BugKind};
use pmvm::{Vm, VmOptions};

/// The paper's Listing 5 program end to end: detection, heuristic hoisting,
/// the persistent-subprogram transformation, and re-verification.
#[test]
fn listing5_full_pipeline() {
    let src = r#"
        fn update(addr: ptr, idx: int, val: int) {
            store1(addr, idx, val);
        }
        fn modify(addr: ptr) {
            update(addr, 0, 1);
        }
        fn main() {
            var vol_addr: ptr = alloc(4096);
            var pm_addr: ptr = pmem_map(0, 4096);
            var i: int = 0;
            while (i < 100) {
                modify(vol_addr);
                i = i + 1;
            }
            modify(pm_addr);
            print(load1(pm_addr, 0));
        }
    "#;
    let mut m = pmlang::compile_one("listing5.pmc", src).unwrap();

    // Step 1: the bug finder reports a missing flush&fence in `update`.
    let checked = run_and_check(&m, "main", VmOptions::default()).unwrap();
    let bugs = checked.report.deduped_bugs();
    assert_eq!(bugs.len(), 1);
    assert_eq!(bugs[0].kind, BugKind::MissingFlushFence);
    assert_eq!(bugs[0].store_at.as_ref().unwrap().function, "update");
    assert_eq!(bugs[0].stack.len(), 3, "update <- modify <- main");

    // Steps 2-4: Hippocrates hoists two levels, creating modify_PM and
    // update_PM exactly as in Listing 5.
    let before = Vm::new(VmOptions::default()).run(&m, "main").unwrap();
    let outcome = Hippocrates::new(RepairOptions::default())
        .repair_until_clean(&mut m, "main")
        .unwrap();
    assert!(outcome.clean);
    assert_eq!(outcome.fixes.len(), 1);
    assert!(matches!(
        &outcome.fixes[0].kind,
        FixKind::Interproc { levels: 2, root_clone } if root_clone == "modify_PM"
    ));
    assert!(m.function_by_name("update_PM").is_some());
    assert!(m.function_by_name("modify_PM").is_some());

    // Do no harm: identical output; and the volatile path is untouched
    // (exactly one flush, one fence — on the PM path only).
    let after = Vm::new(VmOptions::default()).run(&m, "main").unwrap();
    assert_eq!(before.output, after.output);
    assert_eq!(after.stats.volatile_flushes, 0);
    assert_eq!(after.stats.pm_flushes, 1);
    assert_eq!(after.stats.fences, 1);

    // The repaired module still verifies and round-trips through the
    // textual IR.
    pmir::verify::verify_module(&m).unwrap();
    let printed = pmir::display::print_module(&m);
    let reparsed = pmir::parse::parse_module(&printed).unwrap();
    assert_eq!(printed, pmir::display::print_module(&reparsed));
}

/// Repair makes updates actually durable: the crash image of the repaired
/// program contains the data; the buggy one's does not.
#[test]
fn repair_changes_crash_image() {
    let src = r#"
        fn main() {
            var p: ptr = pmem_map(9, 4096);
            store8(p, 0, 4242);
        }
    "#;
    let mut m = pmlang::compile_one("t.pmc", src).unwrap();
    let buggy_run = Vm::new(VmOptions::default()).run(&m, "main").unwrap();
    assert_eq!(
        buggy_run
            .machine
            .crash_image()
            .read_int(buggy_run.machine.crash_image().pool_base(9).unwrap(), 8),
        Some(0)
    );

    Hippocrates::new(RepairOptions::default())
        .repair_until_clean(&mut m, "main")
        .unwrap();
    let fixed_run = Vm::new(VmOptions::default()).run(&m, "main").unwrap();
    let img = fixed_run.machine.crash_image();
    assert_eq!(img.read_int(img.pool_base(9).unwrap(), 8), Some(4242));
}

/// A repaired program's data survives a simulated restart.
#[test]
fn repaired_data_survives_restart() {
    let writer = r#"
        fn main() {
            var p: ptr = pmem_map(5, 4096);
            store8(p, 0, 777);
        }
    "#;
    let reader = r#"
        fn main() {
            var p: ptr = pmem_map(5, 4096);
            print(load8(p, 0));
        }
    "#;
    let mut w = pmlang::compile_one("w.pmc", writer).unwrap();
    Hippocrates::new(RepairOptions::default())
        .repair_until_clean(&mut w, "main")
        .unwrap();
    let run = Vm::new(VmOptions::default()).run(&w, "main").unwrap();
    let media = run.machine.into_media();

    let r = pmlang::compile_one("r.pmc", reader).unwrap();
    let run2 = Vm::new(VmOptions::default().with_media(media))
        .run(&r, "main")
        .unwrap();
    assert_eq!(run2.output, vec![777]);
}

/// Without repair, the same restart loses the store — the bug is real.
#[test]
fn unrepaired_data_lost_on_restart() {
    let writer = "fn main() { var p: ptr = pmem_map(5, 4096); store8(p, 0, 777); }";
    let reader = "fn main() { var p: ptr = pmem_map(5, 4096); print(load8(p, 0)); }";
    let w = pmlang::compile_one("w.pmc", writer).unwrap();
    let run = Vm::new(VmOptions::default()).run(&w, "main").unwrap();
    let media = run.machine.into_media();
    let r = pmlang::compile_one("r.pmc", reader).unwrap();
    let run2 = Vm::new(VmOptions::default().with_media(media))
        .run(&r, "main")
        .unwrap();
    assert_eq!(run2.output, vec![0]);
}
