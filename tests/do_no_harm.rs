//! Property-based "do no harm" tests: the machine-checked counterparts of
//! the paper's §4 proofs. Inserting flushes and fences at arbitrary
//! program points — and running Hippocrates itself — never changes a
//! program's observable output and never introduces a new durability bug,
//! on any tested eviction schedule.

use hippocrates::{Hippocrates, RepairOptions};
use pmcheck::{check_trace, run_and_check};
use pmir::{rewrite, FenceKind, FlushKind, Module, Op, Operand};
use pmvm::{Vm, VmOptions};
use proptest::prelude::*;

/// A tiny random program family: a chain of helpers doing PM and volatile
/// stores with a parameterized mix of persists.
fn program(n_keys: u8, persist_mask: u8, vol_rounds: u8) -> String {
    format!(
        r#"
        fn put(p: ptr, off: int, v: int) {{
            store8(p, off, v);
        }}
        fn persist_one(p: ptr, off: int) {{
            clwb(p + off);
            sfence();
        }}
        fn main() {{
            var pm: ptr = pmem_map(0, 8192);
            var buf: ptr = alloc(8192);
            var r: int = 0;
            while (r < {vol_rounds}) {{
                put(buf, r * 8, r);
                r = r + 1;
            }}
            var k: int = 0;
            while (k < {n_keys}) {{
                put(pm, k * 64, k * 3 + 1);
                if ((({persist_mask} >> (k & 7)) & 1) == 1) {{
                    persist_one(pm, k * 64);
                }}
                k = k + 1;
            }}
            var sum: int = 0;
            k = 0;
            while (k < {n_keys}) {{
                sum = sum + load8(pm, k * 64);
                k = k + 1;
            }}
            print(sum);
        }}
    "#
    )
}

/// All flush/fence insertion points in `main`-reachable functions.
fn insertion_points(m: &Module) -> Vec<(pmir::FuncId, pmir::InstId)> {
    let mut points = vec![];
    for (fid, f) in m.functions() {
        for (_, i) in f.linked_insts() {
            if !f.inst(i).op.is_terminator() {
                points.push((fid, i));
            }
        }
    }
    points
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Lemma 1 + Lemma 2: inserting a random fence, or a flush of a PM
    /// pointer, anywhere, changes neither the output nor cleanliness.
    #[test]
    fn random_flush_fence_insertion_is_harmless(
        n_keys in 1u8..6,
        persist_mask in 0u8..=255,
        vol_rounds in 0u8..4,
        point_sel in 0usize..200,
        insert_fence in proptest::bool::ANY,
    ) {
        let src = program(n_keys, persist_mask, vol_rounds);
        let m0 = pmlang::compile_one("p.pmc", &src).unwrap();
        let base = Vm::new(VmOptions::default()).run(&m0, "main").unwrap();
        // The harm metric is the number of non-durable store *events* (the
        // program has a single checkpoint, program end). A fence may
        // reclassify a missing-flush&fence bug as missing-flush — that is
        // progress, not harm — so dedup keys (which include the kind) are
        // not the right measure.
        let base_bugs = check_trace(base.trace.as_ref().unwrap()).bugs.len();

        let mut m = pmlang::compile_one("p.pmc", &src).unwrap();
        let points = insertion_points(&m);
        let (fid, inst) = points[point_sel % points.len()];
        if insert_fence {
            rewrite::insert_after(
                m.function_mut(fid),
                inst,
                Op::Fence { kind: FenceKind::Sfence },
                None,
            );
        } else {
            // Flush a PM address: the pool base is the pmemmap result in
            // main; flushing any constant offset within it is safe.
            let main = m.function_by_name("main").unwrap();
            let pool_val = {
                let f = m.function(main);
                f.linked_insts().find_map(|(_, i)| match f.inst(i).op {
                    Op::PmemMap { .. } => f.inst(i).result,
                    _ => None,
                }).unwrap()
            };
            if fid != main {
                // Only insert into main for the flush case (the pool value
                // is only in scope there).
                let f = m.function(main);
                let candidates: Vec<pmir::InstId> = f
                    .linked_insts()
                    .filter(|&(_, i)| !f.inst(i).op.is_terminator())
                    .map(|(_, i)| i)
                    .collect();
                let at = candidates[point_sel % candidates.len()];
                // The pool value must dominate the insertion point; inserting
                // right after its definition is always safe.
                let _ = at;
                let def = f.linked_insts().find(|&(_, i)| f.inst(i).result == Some(pool_val)).unwrap().1;
                rewrite::insert_after(
                    m.function_mut(main),
                    def,
                    Op::Flush { kind: FlushKind::Clwb, addr: Operand::Value(pool_val) },
                    None,
                );
            } else {
                let def = {
                    let f = m.function(main);
                    f.linked_insts().find(|&(_, i)| f.inst(i).result == Some(pool_val)).unwrap().1
                };
                rewrite::insert_after(
                    m.function_mut(main),
                    def,
                    Op::Flush { kind: FlushKind::Clwb, addr: Operand::Value(pool_val) },
                    None,
                );
            }
        }
        pmir::verify::verify_module(&m).unwrap();
        let modified = Vm::new(VmOptions::default()).run(&m, "main").unwrap();

        // Do no harm, clause 1: observable behavior unchanged.
        prop_assert_eq!(&base.output, &modified.output);
        // Clause 2: no new non-durable stores (the count can only shrink).
        let new_bugs = check_trace(modified.trace.as_ref().unwrap()).bugs.len();
        prop_assert!(new_bugs <= base_bugs, "bugs grew: {} -> {}", base_bugs, new_bugs);
    }

    /// Theorem 1-4 composed: Hippocrates repairs every program in the
    /// family to a clean report with unchanged output — including under
    /// random cache-eviction schedules (eviction may make stores durable
    /// early, never breaks anything).
    #[test]
    fn hippocrates_repairs_random_programs_harmlessly(
        n_keys in 1u8..6,
        persist_mask in 0u8..=255,
        vol_rounds in 0u8..4,
        evict_period in proptest::option::of(1u64..5),
        hoisting in proptest::bool::ANY,
    ) {
        let src = program(n_keys, persist_mask, vol_rounds);
        let mut m = pmlang::compile_one("p.pmc", &src).unwrap();
        let base = Vm::new(VmOptions::default()).run(&m, "main").unwrap();

        let opts = if hoisting {
            RepairOptions::default()
        } else {
            RepairOptions::intraprocedural_only()
        };
        let outcome = Hippocrates::new(opts).repair_until_clean(&mut m, "main").unwrap();
        prop_assert!(outcome.clean);

        let vm_opts = VmOptions { evict_period, ..VmOptions::default() };
        let repaired = Vm::new(vm_opts).run(&m, "main").unwrap();
        prop_assert_eq!(&base.output, &repaired.output);
        let report = check_trace(repaired.trace.as_ref().unwrap());
        prop_assert!(report.is_clean(), "{}", report.render());
    }
}

/// Deterministic spot-check: repair is idempotent — running Hippocrates on
/// an already-repaired program applies nothing.
#[test]
fn repair_is_idempotent() {
    let src = program(4, 0, 2);
    let mut m = pmlang::compile_one("p.pmc", &src).unwrap();
    let engine = Hippocrates::new(RepairOptions::default());
    let first = engine.repair_until_clean(&mut m, "main").unwrap();
    assert!(!first.fixes.is_empty());
    let text = pmir::display::print_module(&m);
    let second = engine.repair_until_clean(&mut m, "main").unwrap();
    assert!(second.fixes.is_empty());
    assert_eq!(text, pmir::display::print_module(&m));
}

/// The checker agrees with the hardware model: a program the checker calls
/// clean leaves no dirty PM lines at exit, and vice versa for the buggy one.
#[test]
fn checker_crossvalidates_machine_state() {
    let clean_src = program(4, 0b1111_1111, 1);
    let m = pmlang::compile_one("c.pmc", &clean_src).unwrap();
    let checked = run_and_check(&m, "main", VmOptions::default()).unwrap();
    assert!(checked.report.is_clean());
    assert!(checked.run.machine.dirty_pm_lines().is_empty());

    let buggy_src = program(4, 0, 1);
    let m = pmlang::compile_one("b.pmc", &buggy_src).unwrap();
    let checked = run_and_check(&m, "main", VmOptions::default()).unwrap();
    assert!(!checked.report.is_clean());
    assert!(!checked.run.machine.dirty_pm_lines().is_empty());
}
