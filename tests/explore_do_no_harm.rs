//! Property-based stress-verification of repairs: for a family of randomly
//! persisted publish-pattern programs, Hippocrates' repair followed by
//! crash-state exploration finds **zero** inconsistencies — the exploration
//! analog of the do-no-harm output-equivalence property. Also checks that
//! exploration itself is deterministic in the worker count and that repair
//! never changes observable output.

use hippocrates::{BugSource, Hippocrates, RepairOptions};
use pmexplore::{run_and_explore, ExploreOptions};
use pmvm::{Vm, VmOptions};
use proptest::prelude::*;

/// A publish-pattern program family: `n_keys` records, each a data line and
/// a flag line, with per-site persists controlled by `mask` (bit pairs:
/// even bit = persist data before the flag, odd bit = persist the flag).
/// The recovery oracle enforces the publish invariant: a set flag means the
/// data must be durable.
fn program(n_keys: u8, mask: u8) -> String {
    let mut body = String::new();
    for k in 0..n_keys {
        let data_off = u32::from(k) * 128;
        let flag_off = u32::from(k) * 128 + 64;
        let val = u32::from(k) * 3 + 1;
        body.push_str(&format!("    store8(p, {data_off}, {val});\n"));
        if (mask >> (2 * (k % 4))) & 1 == 1 {
            body.push_str(&format!("    clwb(p + {data_off});\n    sfence();\n"));
        }
        body.push_str(&format!("    store8(p, {flag_off}, 1);\n"));
        if (mask >> (2 * (k % 4) + 1)) & 1 == 1 {
            body.push_str(&format!("    clwb(p + {flag_off});\n    sfence();\n"));
        }
    }
    let mut checks = String::new();
    for k in 0..n_keys {
        let data_off = u32::from(k) * 128;
        let flag_off = u32::from(k) * 128 + 64;
        let val = u32::from(k) * 3 + 1;
        checks.push_str(&format!(
            "    if (load8(p, {flag_off}) == 1) {{\n        if (load8(p, {data_off}) != {val}) {{ return 1; }}\n    }}\n"
        ));
    }
    format!(
        "fn main() {{\n    var p: ptr = pmem_map(0, 8192);\n{body}    print(load8(p, 0));\n}}\n\
         fn recover() -> int {{\n    var p: ptr = pmem_map(0, 8192);\n{checks}    return 0;\n}}\n"
    )
}

fn explore_opts(jobs: usize) -> ExploreOptions {
    ExploreOptions {
        budget: 128,
        jobs,
        ..ExploreOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// THE property: repair-then-explore is always clean, and repair never
    /// changes the program's observable output.
    #[test]
    fn repaired_programs_survive_exploration(n_keys in 1u8..5, mask in 0u8..=255) {
        let src = program(n_keys, mask);
        let mut m = pmlang::compile_one("prop.pmc", &src).unwrap();
        let before = Vm::new(VmOptions::default()).run(&m, "main").unwrap();

        let outcome = Hippocrates::new(RepairOptions {
            bug_source: BugSource::Exploration,
            explore_budget: 128,
            ..RepairOptions::default()
        })
        .repair_until_clean(&mut m, "main")
        .unwrap();
        prop_assert!(outcome.clean);

        // Zero inconsistencies on re-exploration of the healed module.
        let x = run_and_explore(&m, "main", &explore_opts(1)).unwrap();
        prop_assert!(x.report.is_clean(), "{}", x.report.render());

        // Do no harm: output unchanged.
        let after = Vm::new(VmOptions::default()).run(&m, "main").unwrap();
        prop_assert_eq!(before.output, after.output);
    }

    /// Exploration is deterministic in the worker count: a parallel run
    /// reports exactly the serial run's findings, on buggy inputs too.
    #[test]
    fn exploration_is_deterministic_across_jobs(n_keys in 1u8..4, mask in 0u8..=255) {
        let src = program(n_keys, mask);
        let m = pmlang::compile_one("prop.pmc", &src).unwrap();
        let serial = run_and_explore(&m, "main", &explore_opts(1)).unwrap();
        let parallel = run_and_explore(&m, "main", &explore_opts(4)).unwrap();
        prop_assert_eq!(serial.report, parallel.report);
    }

    /// Do no harm under injected faults: with any fault archetype armed on
    /// detection, repair either fails with a structured error or converges
    /// clean — and a clean repair never changes the program's observable
    /// output, no matter what the fault did to the detection pipeline.
    #[test]
    fn repair_under_active_fault_plan_does_no_harm(
        seed in 0u64..pmfault::N_ARCHETYPES,
        n_keys in 1u8..3,
        mask in 0u8..=255,
    ) {
        let src = program(n_keys, mask);
        let mut m = pmlang::compile_one("prop.pmc", &src).unwrap();
        let before = Vm::new(VmOptions::default()).run(&m, "main").unwrap();
        let plan = pmfault::FaultPlan::from_seed(seed);
        let bug_source = if plan.targets(pmfault::FaultSite::ExploreWorker)
            || plan.targets(pmfault::FaultSite::ExploreOracle)
        {
            BugSource::Exploration
        } else {
            // Dynamic + static: a degraded dynamic source always has a
            // surviving partner, mirroring `hippoctl faultcampaign`.
            BugSource::Both
        };
        let result = Hippocrates::new(RepairOptions {
            bug_source,
            explore_budget: 64,
            fault: Some(plan),
            watchdog_ms: Some(30),
            source_retries: 0,
            ..RepairOptions::default()
        })
        .repair_until_clean(&mut m, "main");
        match result {
            Ok(outcome) => {
                prop_assert!(outcome.clean);
                let after = Vm::new(VmOptions::default()).run(&m, "main").unwrap();
                prop_assert_eq!(before.output, after.output);
            }
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
    }
}

/// A fully unpersisted publish is caught by exploration (sanity check that
/// the property above is not vacuous: the family does contain bugs).
#[test]
fn family_contains_real_bugs() {
    let src = program(2, 0);
    let m = pmlang::compile_one("prop.pmc", &src).unwrap();
    let x = run_and_explore(&m, "main", &explore_opts(1)).unwrap();
    assert!(!x.report.is_clean(), "mask 0 leaves everything unpersisted");
}
