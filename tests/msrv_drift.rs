//! MSRV drift gate: every workspace member must inherit (or pin) the
//! workspace MSRV, so the pinned-toolchain CI leg actually covers the whole
//! tree. A crate that drops its `rust-version` would silently float to
//! "whatever the newest stable accepts" and break the MSRV leg weeks later;
//! this test fails the build the moment the manifest drifts.

use std::fs;
use std::path::Path;

/// The workspace MSRV; must match `[workspace.package] rust-version` and
/// the toolchain pinned in `.github/workflows/ci.yml`'s MSRV matrix leg.
const MSRV: &str = "1.87";

fn workspace_root() -> &'static Path {
    // system-tests lives at crates/system-tests; the workspace root is two up.
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

#[test]
fn workspace_pins_the_msrv() {
    let root = fs::read_to_string(workspace_root().join("Cargo.toml")).unwrap();
    assert!(
        root.contains(&format!("rust-version = \"{MSRV}\"")),
        "[workspace.package] rust-version is not pinned to {MSRV}; \
         update MSRV here and the ci.yml matrix leg together"
    );
}

#[test]
fn every_member_inherits_the_msrv() {
    let root = workspace_root();
    let mut missing = Vec::new();
    for dir in ["crates", "vendor"] {
        for entry in fs::read_dir(root.join(dir)).unwrap() {
            let manifest = entry.unwrap().path().join("Cargo.toml");
            if !manifest.is_file() {
                continue;
            }
            let text = fs::read_to_string(&manifest).unwrap();
            // Workspace crates inherit; vendored stand-ins (which do not use
            // workspace inheritance) pin the same version literally.
            let ok = text.contains("rust-version.workspace = true")
                || text.contains(&format!("rust-version = \"{MSRV}\""));
            if !ok {
                missing.push(manifest.display().to_string());
            }
        }
    }
    assert!(
        missing.is_empty(),
        "workspace members without the {MSRV} MSRV declaration:\n  {}",
        missing.join("\n  ")
    );
}

#[test]
fn ci_matrix_leg_matches_the_msrv() {
    let ci = fs::read_to_string(workspace_root().join(".github/workflows/ci.yml")).unwrap();
    assert!(
        ci.contains(&format!("{MSRV}.0")) || ci.contains(&format!("\"{MSRV}\"")),
        "ci.yml has no matrix leg pinning toolchain {MSRV}; \
         the MSRV declaration would be untested"
    );
}
