//! Property-based do-no-harm for the "inverse Hippocrates" optimizer: over
//! a seeded corpus of publish-pattern programs with randomly injected
//! *redundant* barriers, `optimize_module` never changes observable output
//! and never introduces a bug visible to the dynamic checker or the
//! crash-state explorer. A deliberately-unsound forced removal either
//! commits harmlessly (the oracle genuinely tolerates it) or rolls back
//! byte-identically into quarantine — there is no third outcome.

use hippocrates::{BugSource, Hippocrates, RepairOptions};
use pmexplore::{run_and_explore, ExploreOptions};
use pmredund::{apply_findings, optimize_module, Finding, FindingKind, OptimizeOptions, Witness};
use pmvm::{Vm, VmOptions};
use proptest::prelude::*;

/// A *correctly persisted* publish family with `mask`-controlled redundant
/// barriers: per record, bit 0 duplicates the data flush (coalescable),
/// bit 1 doubles the trailing fence (sinkable), bit 2 re-flushes the
/// already-durable data line (redundant). Returns the source and how many
/// extra barriers were injected.
fn over_persisted(n_keys: u8, mask: u8) -> (String, usize) {
    let mut body = String::new();
    let mut extras = 0;
    for k in 0..n_keys {
        let data = u32::from(k) * 128;
        let flag = data + 64;
        let val = u32::from(k) * 3 + 1;
        let b = mask.rotate_right(u32::from(k));
        body.push_str(&format!("    store8(p, {data}, {val});\n"));
        body.push_str(&format!("    clwb(p + {data});\n"));
        if b & 1 != 0 {
            body.push_str(&format!("    clwb(p + {data});\n"));
            extras += 1;
        }
        body.push_str("    sfence();\n");
        body.push_str(&format!("    store8(p, {flag}, 1);\n"));
        body.push_str(&format!("    clwb(p + {flag});\n    sfence();\n"));
        if b & 2 != 0 {
            body.push_str("    sfence();\n");
            extras += 1;
        }
        if b & 4 != 0 {
            body.push_str(&format!("    clwb(p + {data});\n"));
            extras += 1;
        }
    }
    let mut checks = String::new();
    for k in 0..n_keys {
        let data = u32::from(k) * 128;
        let flag = data + 64;
        let val = u32::from(k) * 3 + 1;
        checks.push_str(&format!(
            "    if (load8(p, {flag}) == 1) {{\n        if (load8(p, {data}) != {val}) {{ return 1; }}\n    }}\n"
        ));
    }
    let src = format!(
        "fn main() {{\n    var p: ptr = pmem_map(0, 8192);\n{body}    print(load8(p, 0));\n}}\n\
         fn recover() -> int {{\n    var p: ptr = pmem_map(0, 8192);\n{checks}    return 0;\n}}\n"
    );
    (src, extras)
}

/// The *buggy* publish family from the repair tests: `mask` bit pairs decide
/// which persists exist at all.
fn under_persisted(n_keys: u8, mask: u8) -> String {
    let mut body = String::new();
    for k in 0..n_keys {
        let data = u32::from(k) * 128;
        let flag = data + 64;
        let val = u32::from(k) * 3 + 1;
        body.push_str(&format!("    store8(p, {data}, {val});\n"));
        if (mask >> (2 * (k % 4))) & 1 == 1 {
            body.push_str(&format!("    clwb(p + {data});\n    sfence();\n"));
        }
        body.push_str(&format!("    store8(p, {flag}, 1);\n"));
        if (mask >> (2 * (k % 4) + 1)) & 1 == 1 {
            body.push_str(&format!("    clwb(p + {flag});\n    sfence();\n"));
        }
    }
    let mut checks = String::new();
    for k in 0..n_keys {
        let data = u32::from(k) * 128;
        let flag = data + 64;
        let val = u32::from(k) * 3 + 1;
        checks.push_str(&format!(
            "    if (load8(p, {flag}) == 1) {{\n        if (load8(p, {data}) != {val}) {{ return 1; }}\n    }}\n"
        ));
    }
    format!(
        "fn main() {{\n    var p: ptr = pmem_map(0, 8192);\n{body}    print(load8(p, 0));\n}}\n\
         fn recover() -> int {{\n    var p: ptr = pmem_map(0, 8192);\n{checks}    return 0;\n}}\n"
    )
}

fn opt_opts() -> OptimizeOptions {
    OptimizeOptions {
        explore_budget: 64,
        ..OptimizeOptions::default()
    }
}

fn explore_opts() -> ExploreOptions {
    ExploreOptions {
        budget: 64,
        ..ExploreOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// THE property: on a correctly persisted program, optimization removes
    /// the injected redundancy (and only then), keeps the observable output
    /// byte-identical, and the optimized module still survives both the
    /// dynamic checker and crash-state exploration clean.
    #[test]
    fn optimize_preserves_output_and_crash_consistency(
        n_keys in 1u8..4,
        mask in 0u8..=255,
    ) {
        let (src, extras) = over_persisted(n_keys, mask);
        let mut m = pmlang::compile_one("opt_prop.pmc", &src).unwrap();
        let before = Vm::new(VmOptions::default()).run(&m, "main").unwrap();

        let out = optimize_module(&mut m, &opt_opts()).unwrap();
        if extras == 0 {
            prop_assert!(out.applied.is_empty(), "nothing to remove in the tight program");
        } else {
            prop_assert!(!out.applied.is_empty(), "{extras} injected barriers, none removed");
            prop_assert!(out.applied.iter().all(|a| !a.finding.witness.events.is_empty()));
        }

        let after = Vm::new(VmOptions::default()).run(&m, "main").unwrap();
        prop_assert_eq!(before.output, after.output);
        let checked = pmcheck::run_and_check(&m, "main", VmOptions::default()).unwrap();
        prop_assert!(checked.report.is_clean(), "{}", checked.report.render());
        let x = run_and_explore(&m, "main", &explore_opts()).unwrap();
        prop_assert!(x.report.is_clean(), "{}", x.report.render());
    }

    /// The full pipeline: repair a buggy program until clean, then optimize
    /// the healed module — exploration stays clean and the healed output is
    /// untouched. This is exactly the `fix --optimize` path.
    #[test]
    fn repair_then_optimize_stays_clean(n_keys in 1u8..3, mask in 0u8..=255) {
        let src = under_persisted(n_keys, mask);
        let mut m = pmlang::compile_one("opt_prop.pmc", &src).unwrap();
        let outcome = Hippocrates::new(RepairOptions {
            bug_source: BugSource::Exploration,
            explore_budget: 64,
            ..RepairOptions::default()
        })
        .repair_until_clean(&mut m, "main")
        .unwrap();
        prop_assert!(outcome.clean);
        let healed = Vm::new(VmOptions::default()).run(&m, "main").unwrap();

        optimize_module(&mut m, &opt_opts()).unwrap();

        let x = run_and_explore(&m, "main", &explore_opts()).unwrap();
        prop_assert!(x.report.is_clean(), "{}", x.report.render());
        let after = Vm::new(VmOptions::default()).run(&m, "main").unwrap();
        prop_assert_eq!(healed.output, after.output);
    }

    /// Forced-unsound removal: hand the applier an arbitrary flush dressed
    /// up as a "redundant" finding. Either the removal genuinely does no
    /// harm (and must re-verify clean with unchanged output), or it is
    /// rolled back *byte-identically* and quarantined. Never both, never
    /// neither.
    #[test]
    fn forced_removal_commits_harmlessly_or_rolls_back(
        n_keys in 1u8..4,
        pick in 0u8..=255,
    ) {
        let (src, _) = over_persisted(n_keys, 0);
        let mut m = pmlang::compile_one("opt_prop.pmc", &src).unwrap();
        let f = m.function_by_name("main").unwrap();
        let func = m.function(f);
        let flushes: Vec<pmir::InstId> = func
            .linked_insts()
            .filter_map(|(_, i)| match func.inst(i).op {
                pmir::Op::Flush { .. } => Some(i),
                _ => None,
            })
            .collect();
        let target = flushes[usize::from(pick) % flushes.len()];
        let forced = Finding {
            kind: FindingKind::RedundantFlush,
            function: "main".to_string(),
            func: f,
            inst: target,
            loc: None,
            line: None,
            witness: Witness::default(),
            est_cycles_saved: 6,
            score: 0,
        };
        let snapshot = pmir::snapshot::ModuleSnapshot::capture(&m);
        let before = Vm::new(VmOptions::default()).run(&m, "main").unwrap();

        let out = apply_findings(&mut m, vec![forced], &opt_opts()).unwrap();
        prop_assert_eq!(out.applied.len() + out.quarantined.len(), 1);
        if out.quarantined.len() == 1 {
            prop_assert!(snapshot.matches(&m), "rollback must be byte-identical");
            prop_assert_eq!(out.rounds_rolled_back, 1);
        } else {
            // The oracle tolerated it: that tolerance must be real.
            let after = Vm::new(VmOptions::default()).run(&m, "main").unwrap();
            prop_assert_eq!(before.output, after.output);
            let x = run_and_explore(&m, "main", &explore_opts()).unwrap();
            prop_assert!(x.report.is_clean(), "{}", x.report.render());
        }
    }
}

/// The redundancy the properties rely on is real: a fully decorated program
/// yields findings of more than one kind (the corpus is not vacuous).
#[test]
fn corpus_contains_every_redundancy_shape() {
    let (src, extras) = over_persisted(3, 0b111);
    assert!(extras >= 3);
    let m = pmlang::compile_one("opt_prop.pmc", &src).unwrap();
    let findings = pmredund::analyze_module(&m, "main").unwrap();
    assert!(
        findings.len() >= 3,
        "expected the injected redundancy, got {findings:?}"
    );
    let kinds: std::collections::BTreeSet<_> = findings.iter().map(|f| f.kind).collect();
    assert!(
        kinds.len() >= 2,
        "expected multiple finding kinds, got {kinds:?}"
    );
}

/// Removing the *data* flush from a tight program is unsound — exploration
/// must catch it (the forced-removal property is not vacuous either).
#[test]
fn forced_corpus_contains_real_harm() {
    let (src, _) = over_persisted(1, 0);
    let mut m = pmlang::compile_one("opt_prop.pmc", &src).unwrap();
    let f = m.function_by_name("main").unwrap();
    let func = m.function(f);
    let first_flush = func
        .linked_insts()
        .find_map(|(_, i)| match func.inst(i).op {
            pmir::Op::Flush { .. } => Some(i),
            _ => None,
        })
        .expect("the data flush");
    let forced = Finding {
        kind: FindingKind::RedundantFlush,
        function: "main".to_string(),
        func: f,
        inst: first_flush,
        loc: None,
        line: None,
        witness: Witness::default(),
        est_cycles_saved: 6,
        score: 0,
    };
    let out = apply_findings(&mut m, vec![forced], &opt_opts()).unwrap();
    assert_eq!(out.quarantined.len(), 1, "the data flush is load-bearing");
    assert!(!out.quarantined[0].reason.is_empty());
}
