//! Hoisting-heuristic shape tests: deeper chains, ties, fence-only fixes,
//! and memcpy subprograms (complements the Listing 5/6 pipeline test).

use hippocrates::{FixKind, Hippocrates, RepairOptions};
use pmvm::{Vm, VmOptions};

fn repair(src: &str) -> (pmir::Module, hippocrates::RepairOutcome) {
    let mut m = pmlang::compile_one("h.pmc", src).unwrap();
    let outcome = Hippocrates::new(RepairOptions::default())
        .repair_until_clean(&mut m, "main")
        .unwrap();
    assert!(outcome.clean);
    (m, outcome)
}

/// Three helper levels, PM-only pointer at the outermost call: the fix
/// hoists three frames, cloning the whole chain.
#[test]
fn three_level_hoist() {
    let src = r#"
        fn leaf(p: ptr, v: int) { store8(p, 0, v); }
        fn mid(p: ptr) { leaf(p, 1); }
        fn top(p: ptr) { mid(p); }
        fn main() {
            var vol: ptr = alloc(64);
            var pm: ptr = pmem_map(0, 4096);
            top(vol);
            top(pm);
        }
    "#;
    let (m, outcome) = repair(src);
    assert_eq!(outcome.interprocedural_count(), 1);
    assert_eq!(outcome.hoist_level_histogram().get(&3), Some(&1));
    for clone in ["leaf_PM", "mid_PM", "top_PM"] {
        assert!(m.function_by_name(clone).is_some(), "missing {clone}");
    }
    // The volatile path pays nothing.
    let run = Vm::new(VmOptions::default()).run(&m, "main").unwrap();
    assert_eq!(run.stats.volatile_flushes, 0);
}

/// A helper used *only* on PM scores +1 at the store and +1 at the call
/// site; the tie breaks toward the intraprocedural fix (no clone).
#[test]
fn pm_only_helper_stays_intraprocedural() {
    let src = r#"
        fn put(p: ptr, v: int) { store8(p, 0, v); }
        fn main() {
            var pm: ptr = pmem_map(0, 4096);
            put(pm, 1);
        }
    "#;
    let (m, outcome) = repair(src);
    assert_eq!(outcome.interprocedural_count(), 0);
    assert!(m.function_by_name("put_PM").is_none());
    assert!(matches!(outcome.fixes[0].kind, FixKind::IntraFlushFence));
}

/// A fence-only (missing-fence) bug is anchored at the existing flush and
/// never considered for hoisting.
#[test]
fn fence_only_fix_never_hoists() {
    let src = r#"
        fn persist_weak(p: ptr) { clwb(p); }
        fn main() {
            var vol: ptr = alloc(64);
            var pm: ptr = pmem_map(0, 4096);
            store8(vol, 0, 1);
            store8(pm, 0, 1);
            persist_weak(pm);
        }
    "#;
    let (m, outcome) = repair(src);
    assert!(outcome.fixes.iter().all(|f| !f.kind.is_interprocedural()));
    assert!(m.function_by_name("persist_weak_PM").is_none());
}

/// A hoisted memcpy subprogram gets the range-flush helper call inside the
/// clone; the original stays untouched.
#[test]
fn hoisted_memcpy_uses_range_helper_in_clone() {
    let src = r#"
        fn blit(dst: ptr, src: ptr, n: int) { memcpy(dst, src, n); }
        fn main() {
            var a: ptr = alloc(256);
            var b: ptr = alloc(256);
            var pm: ptr = pmem_map(0, 4096);
            blit(a, b, 128);
            blit(b, a, 128);
            blit(pm, a, 128);
        }
    "#;
    let (m, outcome) = repair(src);
    assert_eq!(outcome.interprocedural_count(), 1);
    let clone = m.function_by_name("blit_PM").expect("clone exists");
    let helper = m
        .function_by_name(hippocrates::plan::FLUSH_RANGE_HELPER)
        .expect("helper exists");
    let cf = m.function(clone);
    assert!(cf
        .linked_insts()
        .any(|(_, i)| matches!(cf.inst(i).op, pmir::Op::Call { callee, .. } if callee == helper)));
    let of = m.function(m.function_by_name("blit").unwrap());
    assert!(!of.linked_insts().any(|(_, i)| matches!(
        of.inst(i).op,
        pmir::Op::Call { .. } | pmir::Op::Flush { .. }
    )));
    // Volatile blits stay flush-free at runtime.
    let run = Vm::new(VmOptions::default()).run(&m, "main").unwrap();
    assert_eq!(run.stats.volatile_flushes, 0);
    assert!(run.stats.pm_flushes >= 2, "128 bytes = at least 2 lines");
}

/// Two sibling PM paths through one helper converge on a single clone over
/// repair iterations, and the final module is stable (idempotent repair).
#[test]
fn sibling_paths_share_one_clone() {
    let src = r#"
        fn put(p: ptr, off: int, v: int) { store8(p, off, v); }
        fn writer_a(p: ptr) { put(p, 0, 1); }
        fn writer_b(p: ptr) { put(p, 64, 2); }
        fn main() {
            var vol: ptr = alloc(256);
            var pm: ptr = pmem_map(0, 4096);
            put(vol, 0, 9);
            writer_a(pm);
            writer_b(pm);
        }
    "#;
    let (m, outcome) = repair(src);
    assert!(outcome.clean);
    // Exactly one persistent clone of `put` exists, shared by both paths.
    let clones: Vec<&str> = m
        .functions()
        .filter(|(_, f)| f.persistent_clone_of.as_deref() == Some("put"))
        .map(|(_, f)| f.name())
        .collect();
    assert_eq!(clones.len(), 1, "clones: {clones:?}");
    let run = Vm::new(VmOptions::default()).run(&m, "main").unwrap();
    assert_eq!(run.stats.volatile_flushes, 0);
    assert_eq!(run.stats.pm_stores, 2);
}
