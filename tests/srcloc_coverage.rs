//! Regression: every instruction in every compiled or synthesized module
//! carries a source location. The static checker, the lint renderer, and
//! repair reporting all assume `inst.loc` is present; a lowering or
//! synthesis path that drops it turns diagnostics blind.

use hippocrates::{Hippocrates, RepairOptions};

fn assert_full_coverage(tag: &str, m: &pmir::Module) {
    for fid in m.func_ids() {
        let f = m.function(fid);
        for (_, i) in f.linked_insts() {
            assert!(
                f.inst(i).loc.is_some(),
                "{tag}: `{}` inst {i:?} ({:?}) has no source location",
                f.name(),
                f.inst(i).op
            );
        }
    }
}

#[test]
fn corpus_builds_have_full_srcloc_coverage() {
    assert_full_coverage("pclht", &pmapps::pclht::build_correct().unwrap());
    assert_full_coverage("memcached", &pmapps::memcached::build_correct().unwrap());
    for id in pmapps::memcached::BUG_IDS {
        assert_full_coverage(id, &pmapps::memcached::build_buggy(id).unwrap());
    }
    assert_full_coverage(
        "redis",
        &pmapps::redis::build(pmapps::redis::RedisBuild::PmPort).unwrap(),
    );
}

#[test]
fn synthesized_workload_has_srclocs() {
    let ops = vec![
        pmapps::redis::RedisOp::set(1, 64),
        pmapps::redis::RedisOp::get(1),
        pmapps::redis::RedisOp::del(1),
    ];
    let mut m = pmapps::redis::build(pmapps::redis::RedisBuild::PmPort).unwrap();
    pmapps::redis::attach_workload(&mut m, "bench", &ops);
    assert_full_coverage("redis+workload", &m);
}

#[test]
fn repaired_modules_keep_full_srcloc_coverage() {
    // Repair inserts flushes/fences, synthesizes the range-flush helper
    // (portable mode), and clones subprograms when hoisting — all of it
    // must stay attributable.
    let src = r#"
        fn update(addr: ptr, idx: int, val: int) { store1(addr, idx, val); }
        fn modify(addr: ptr) { update(addr, 0, 1); }
        fn main() {
            var vol: ptr = alloc(4096);
            var pm: ptr = pmem_map(0, 4096);
            var i: int = 0;
            while (i < 20) { modify(vol); i = i + 1; }
            modify(pm);
            memcpy(pm + 64, vol, 200);
        }
    "#;
    for portable in [false, true] {
        let mut m = pmlang::compile_one("t.pmc", src).unwrap();
        Hippocrates::new(RepairOptions {
            portable_fixes: portable,
            ..RepairOptions::default()
        })
        .repair_until_clean(&mut m, "main")
        .unwrap();
        assert_full_coverage(if portable { "portable" } else { "direct" }, &m);
    }
}

#[test]
fn every_pmlang_construct_lowers_with_a_srcloc() {
    let src = r#"
        fn helper(p: ptr, n: int) -> int {
            if (n <= 0) { return 0; }
            var i: int = 0;
            var acc: int = 0;
            while (i < n) {
                acc = acc + load1(p, i);
                i = i + 1;
            }
            return acc;
        }
        fn main() {
            var pool: ptr = pmem_map(0, 4096);
            var buf: ptr = alloc(256);
            memcpy(pool, buf, 128);
            memset(pool + 128, 0, 64);
            store1(pool, 200, 5);
            store8(pool, 208, 7);
            clwb(pool);
            clflushopt(pool + 64);
            clflush(pool + 128);
            sfence();
            mfence();
            crashpoint();
            print(helper(pool, 16));
        }
    "#;
    assert_full_coverage("kitchen", &pmlang::compile_one("k.pmc", src).unwrap());
}
