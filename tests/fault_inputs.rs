//! Fault-input corpus: truncated, bit-flipped, and duplicated trace files
//! plus corrupted pool images. The contract under test is the hardened
//! ingest surface: no corrupted input ever panics a parser, failures carry
//! structured context (line and byte offsets for trace logs), and the
//! diagnostic for a given corrupted input is stable across re-parses.

use pmem_sim::{CrashImage, FenceKind, FlushKind, Machine};
use pmfault::{bitflip_bytes, bitflip_text, duplicate_line, truncate_text};
use pmtrace::{log, Trace, TraceError};
use proptest::prelude::*;

const SRC: &str = r#"
    fn main() {
        var p: ptr = pmem_map(5, 4096);
        store8(p, 0, 7);
        clwb(p);
        sfence();
        store8(p, 64, 9);
        crashpoint();
        store8(p, 128, 11);
    }
    fn recover() -> int {
        var p: ptr = pmem_map(5, 4096);
        if (load8(p, 0) != 7) { return 1; }
        return 0;
    }
"#;

/// A real trace with every record family: register, store, flush, fence,
/// crash point, program end.
fn sample_trace() -> Trace {
    let m = pmlang::compile_one("corpus.pmc", SRC).expect("corpus compiles");
    pmcheck::run_and_check(&m, "main", pmvm::VmOptions::default())
        .expect("corpus runs")
        .trace
}

fn sample_image() -> CrashImage {
    let mut m = Machine::default();
    let p = m.map_pool(5, 4096).expect("pool maps");
    m.store_int(p, 8, 7).expect("store lands");
    m.flush(FlushKind::Clwb, p).expect("flush issues");
    m.fence(FenceKind::Sfence);
    m.crash_image()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Truncating a trace log anywhere yields either a shorter parse or a
    /// structured error naming the line — never a panic — and re-parsing
    /// the same bytes reproduces the same diagnostic.
    #[test]
    fn truncated_trace_logs_yield_stable_structured_errors(seed in any::<u64>()) {
        let text = log::to_log(&sample_trace());
        let cut = truncate_text(&text, seed);
        let first = log::from_log(&cut);
        let second = log::from_log(&cut);
        match (&first, &second) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(a), Err(b)) => {
                prop_assert_eq!(a.to_string(), b.to_string());
                prop_assert!(
                    a.to_string().contains("trace log line"),
                    "error must name the line: {}",
                    a
                );
                prop_assert!(
                    a.to_string().contains("byte"),
                    "error must carry a byte offset: {}",
                    a
                );
            }
            _ => prop_assert!(false, "parse must be deterministic"),
        }
    }

    /// A printable-byte flip anywhere in the log parses or fails with
    /// line/byte context, deterministically.
    #[test]
    fn bitflipped_trace_logs_never_panic(seed in any::<u64>()) {
        let text = log::to_log(&sample_trace());
        let flipped = bitflip_text(&text, seed);
        match log::from_log(&flipped) {
            Ok(t) => prop_assert!(t.len() <= sample_trace().len()),
            Err(e) => {
                prop_assert!(e.to_string().contains("trace log line"), "{e}");
                let again = log::from_log(&flipped).expect_err("deterministic");
                prop_assert_eq!(e.to_string(), again.to_string());
            }
        }
    }

    /// Raw single-bit corruption (possibly producing invalid UTF-8, routed
    /// through lossy decoding like a damaged file read) never panics.
    #[test]
    fn raw_bit_corruption_never_panics(seed in any::<u64>()) {
        let data = bitflip_bytes(log::to_log(&sample_trace()).as_bytes(), seed);
        let text = String::from_utf8_lossy(&data);
        let _ = log::from_log(&text);
    }

    /// A duplicated record parses (one extra event) and is caught by
    /// `Trace::validate` as a structured warning, stably.
    #[test]
    fn duplicated_records_are_flagged_not_fatal(seed in any::<u64>()) {
        let original = sample_trace();
        let text = log::to_log(&original);
        let dup = duplicate_line(&text, seed);
        let parsed = log::from_log(&dup).expect("a duplicated line still parses");
        prop_assert_eq!(parsed.len(), original.len() + 1);
        let w1 = parsed.validate();
        let w2 = parsed.validate();
        prop_assert_eq!(&w1, &w2, "validation is deterministic");
        // Duplicating anything but the crash point is flagged.
        for w in &w1 {
            prop_assert!(!w.to_string().is_empty());
        }
    }

    /// Truncated trace JSON maps into the structured error taxonomy.
    #[test]
    fn truncated_trace_json_is_structured(cut in any::<usize>()) {
        let json = sample_trace().to_json().expect("serializes");
        let end = (0..=cut % (json.len() + 1)).rev().find(|&i| json.is_char_boundary(i)).unwrap_or(0);
        match Trace::from_json_diagnostic(&json[..end]) {
            Ok(t) => prop_assert_eq!(t, sample_trace()),
            Err(TraceError::Json { message }) => prop_assert!(!message.is_empty()),
            Err(other) => prop_assert!(false, "unexpected taxonomy branch: {}", other),
        }
    }

    /// A corrupted serialized pool image either fails to deserialize with
    /// a structured error or deserializes into an image that recovery can
    /// be booted on without panicking.
    #[test]
    fn corrupted_pool_images_never_panic(seed in any::<u64>()) {
        let json = serde_json::to_string(&sample_image()).expect("image serializes");
        let corrupted = bitflip_text(&json, seed);
        match serde_json::from_str::<CrashImage>(&corrupted) {
            Err(e) => prop_assert!(!e.to_string().is_empty()),
            Ok(img) => {
                let m = pmlang::compile_one("corpus.pmc", SRC).expect("compiles");
                let opts = pmvm::VmOptions::default().with_media(img.into_media());
                match pmvm::Vm::new(opts).run(&m, "recover") {
                    Ok(res) => prop_assert!(res.return_value.is_some()),
                    Err(e) => prop_assert!(!e.to_string().is_empty()),
                }
            }
        }
    }
}

/// The corpus exercises real parse failures, not only benign corruptions:
/// cutting mid-record must produce at least one structured error across a
/// seed sweep.
#[test]
fn corpus_contains_real_parse_failures() {
    let text = log::to_log(&sample_trace());
    let mut failures = 0;
    for seed in 0..64u64 {
        if log::from_log(&truncate_text(&text, seed)).is_err() {
            failures += 1;
        }
        if log::from_log(&bitflip_text(&text, seed)).is_err() {
            failures += 1;
        }
    }
    assert!(failures > 0, "the sweep never produced a parse failure");
}
