//! Why durability bugs matter: crash the P-CLHT example at its durability
//! checkpoint and inspect what survives. The buggy index loses the freshly
//! inserted pair; the correct and the Hippocrates-repaired indexes keep it.

use hippocrates::{Hippocrates, RepairOptions};
use pmvm::{Ended, Vm, VmOptions};

/// Runs `pclht_main` until the first crash point (the first overflow
/// insert, key 193), "reboots" onto the surviving medium, and returns what
/// a recovery probe reads for key 193.
fn crash_and_probe(m: &pmir::Module) -> i64 {
    let run = Vm::new(VmOptions::default().stop_at(1))
        .run(m, pmapps::pclht::ENTRY)
        .expect("runs to the crash point");
    assert_eq!(run.ended, Ended::CrashPoint(1));
    let media = run.machine.into_media();
    let probe = Vm::new(VmOptions::default().with_media(media))
        .run(m, "pclht_probe")
        .expect("probe runs");
    probe.output[0]
}

#[test]
fn buggy_index_loses_the_pair_after_crash() {
    let m = pmapps::pclht::build_buggy("pclht-1").unwrap();
    assert_eq!(crash_and_probe(&m), 0, "unflushed pair must be lost");
}

#[test]
fn correct_index_keeps_the_pair_after_crash() {
    let m = pmapps::pclht::build_correct().unwrap();
    assert_eq!(crash_and_probe(&m), 193 * 7);
}

#[test]
fn repaired_index_keeps_the_pair_after_crash() {
    let mut m = pmapps::pclht::build_buggy("pclht-1").unwrap();
    let outcome = Hippocrates::new(RepairOptions::default())
        .repair_until_clean(&mut m, pmapps::pclht::ENTRY)
        .unwrap();
    assert!(outcome.clean);
    assert_eq!(
        crash_and_probe(&m),
        193 * 7,
        "the Hippocrates fix must make the pair durable by the crash point"
    );
}

/// Same story on memcached's CAS path (bug mm-9): the unfenced CAS bump is
/// lost at the crash point in the buggy build and durable after repair.
#[test]
fn memcached_cas_bump_lost_then_healed() {
    let crash_probe = |m: &pmir::Module| {
        let run = Vm::new(VmOptions::default().stop_at(1))
            .run(m, pmapps::memcached::ENTRY)
            .expect("runs to the crash point");
        assert_eq!(run.ended, Ended::CrashPoint(1));
        let media = run.machine.into_media();
        Vm::new(VmOptions::default().with_media(media))
            .run(m, "mc_probe")
            .expect("probe runs")
            .output[0]
    };
    // Correct build: the CAS bump (1 -> 2) is flushed and fenced before the
    // crash point.
    let correct = pmapps::memcached::build_correct().unwrap();
    assert_eq!(crash_probe(&correct), 2);
    // mm-9: the fence is missing, so the flushed-but-undrained bump is lost.
    let buggy = pmapps::memcached::build_buggy("mm-9").unwrap();
    assert_eq!(crash_probe(&buggy), 1);
    // Healed: durable again.
    let mut healed = pmapps::memcached::build_buggy("mm-9").unwrap();
    Hippocrates::new(RepairOptions::default())
        .repair_until_clean(&mut healed, pmapps::memcached::ENTRY)
        .unwrap();
    assert_eq!(crash_probe(&healed), 2);
}
