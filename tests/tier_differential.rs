//! Differential tier gate: the fast execution tier must be observationally
//! identical to the reference interpreter, end to end.
//!
//! The contract (locked in CI — `scripts/check.sh` runs this file on every
//! change): for any program, `ExecTier::Interp` and `ExecTier::Fast`
//! produce
//!
//! 1. byte-identical traces and PM data logs (every event, every stack,
//!    every captured store byte),
//! 2. identical dynamic-checker bug sets,
//! 3. identical exploration reports — including the crash-image content
//!    digests (`Finding::image_hash`) and every counter,
//! 4. identical repair outcomes: the same fixes, and the same fixed module
//!    bit-for-bit (snapshot digest).
//!
//! Anything the fast tier gets wrong that the VM-level differential tests
//! in `pmvm` miss (decode bugs that only bite under exploration workloads,
//! tier-dependent iteration order leaking into findings) fails here on the
//! real app corpus and on a randomized publish-pattern family.

use hippocrates::{BugSource, Hippocrates, RepairOptions};
use pmexplore::{run_and_explore, ExploreOptions};
use pmvm::{ExecTier, VmOptions};
use proptest::prelude::*;

fn explore_opts(tier: ExecTier) -> ExploreOptions {
    ExploreOptions {
        budget: 96,
        seed: 0,
        jobs: 1,
        tier,
        ..ExploreOptions::default()
    }
}

/// Asserts contracts (1)–(3) for one module: both tiers run the checker
/// and the explorer; every observable must match.
fn assert_tiers_agree(tag: &str, m: &pmir::Module, entry: &str) {
    let checked = |tier| {
        let opts = VmOptions {
            tier,
            ..VmOptions::default()
        };
        pmcheck::run_and_check(m, entry, opts)
            .unwrap_or_else(|e| panic!("{tag}: {tier:?} checker run failed: {e}"))
    };
    let (ci, cf) = (checked(ExecTier::Interp), checked(ExecTier::Fast));
    assert_eq!(ci.report, cf.report, "{tag}: dynamic bug sets diverge");
    assert_eq!(
        ci.run.output, cf.run.output,
        "{tag}: observable output diverges"
    );
    assert_eq!(
        ci.run.return_value, cf.run.return_value,
        "{tag}: return values diverge"
    );
    assert_eq!(ci.run.ended, cf.run.ended, "{tag}: end states diverge");
    assert_eq!(ci.run.stats, cf.run.stats, "{tag}: machine stats diverge");
    assert_eq!(
        ci.trace.events, cf.trace.events,
        "{tag}: checker traces diverge"
    );

    let explored = |tier| {
        run_and_explore(m, entry, &explore_opts(tier))
            .unwrap_or_else(|e| panic!("{tag}: {tier:?} exploration failed: {e}"))
    };
    let (xi, xf) = (explored(ExecTier::Interp), explored(ExecTier::Fast));
    assert_eq!(
        xi.trace.events, xf.trace.events,
        "{tag}: traces diverge between tiers"
    );
    assert_eq!(xi.data, xf.data, "{tag}: PM data logs diverge");
    // Report equality covers findings (with their crash-image content
    // digests), all counters, and diagnostics.
    assert_eq!(xi.report, xf.report, "{tag}: exploration reports diverge");
}

/// Asserts contract (4): repair under either tier applies the same fixes
/// and produces a bit-identical fixed module.
fn assert_repair_agrees(tag: &str, m: &pmir::Module, entry: &str) {
    let repaired = |tier| {
        let mut m = m.clone();
        let outcome = Hippocrates::new(RepairOptions {
            bug_source: BugSource::Exploration,
            explore_budget: 96,
            explore_jobs: 1,
            tier,
            ..RepairOptions::default()
        })
        .repair_until_clean(&mut m, entry)
        .unwrap_or_else(|e| panic!("{tag}: {tier:?} repair failed: {e}"));
        (pmir::snapshot::digest_hex(&m), outcome)
    };
    let ((di, oi), (df, of)) = (repaired(ExecTier::Interp), repaired(ExecTier::Fast));
    assert_eq!(di, df, "{tag}: fixed modules diverge between tiers");
    assert_eq!(oi.clean, of.clean, "{tag}: repair convergence diverges");
    assert_eq!(
        oi.fixes.len(),
        of.fixes.len(),
        "{tag}: applied fix counts diverge"
    );
    assert_eq!(
        oi.iterations, of.iterations,
        "{tag}: iteration counts diverge"
    );
}

#[test]
fn pclht_tiers_identical() {
    let m = pmapps::pclht::build_correct().expect("pclht builds");
    assert_tiers_agree("pclht-correct", &m, pmapps::pclht::ENTRY);
    for id in pmapps::pclht::BUG_IDS {
        let m = pmapps::pclht::build_buggy(id).expect("buggy pclht builds");
        assert_tiers_agree(&format!("pclht-{id}"), &m, pmapps::pclht::ENTRY);
    }
}

#[test]
fn pclht_repair_identical_across_tiers() {
    for id in pmapps::pclht::BUG_IDS {
        let m = pmapps::pclht::build_buggy(id).expect("buggy pclht builds");
        assert_repair_agrees(&format!("pclht-{id}"), &m, pmapps::pclht::ENTRY);
    }
}

#[test]
fn memcached_tiers_identical() {
    let m = pmapps::memcached::build_correct().expect("memcached builds");
    assert_tiers_agree("memcached-correct", &m, pmapps::memcached::ENTRY);
    // Two representative injected bugs; the full ten run in corpus tests.
    for id in &pmapps::memcached::BUG_IDS[..2] {
        let m = pmapps::memcached::build_buggy(id).expect("buggy memcached builds");
        assert_tiers_agree(&format!("memcached-{id}"), &m, pmapps::memcached::ENTRY);
    }
}

/// The `explore_do_no_harm` publish-pattern family, reused as a randomized
/// tier-differential corpus: every generated program must explore and
/// repair identically under both tiers.
fn program(n_keys: u8, mask: u8) -> String {
    let mut body = String::new();
    for k in 0..n_keys {
        let data_off = u32::from(k) * 128;
        let flag_off = u32::from(k) * 128 + 64;
        let val = u32::from(k) * 3 + 1;
        body.push_str(&format!("    store8(p, {data_off}, {val});\n"));
        if (mask >> (2 * (k % 4))) & 1 == 1 {
            body.push_str(&format!("    clwb(p + {data_off});\n    sfence();\n"));
        }
        body.push_str(&format!("    store8(p, {flag_off}, 1);\n"));
        if (mask >> (2 * (k % 4) + 1)) & 1 == 1 {
            body.push_str(&format!("    clwb(p + {flag_off});\n    sfence();\n"));
        }
    }
    let mut checks = String::new();
    for k in 0..n_keys {
        let data_off = u32::from(k) * 128;
        let flag_off = u32::from(k) * 128 + 64;
        let val = u32::from(k) * 3 + 1;
        checks.push_str(&format!(
            "    if (load8(p, {flag_off}) == 1) {{\n        if (load8(p, {data_off}) != {val}) {{ return 1; }}\n    }}\n"
        ));
    }
    format!(
        "fn main() {{\n    var p: ptr = pmem_map(0, 8192);\n{body}    print(load8(p, 0));\n}}\n\
         fn recover() -> int {{\n    var p: ptr = pmem_map(0, 8192);\n{checks}    return 0;\n}}\n"
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn random_publish_programs_are_tier_identical(n_keys in 1u8..5, mask in 0u8..=255) {
        let src = program(n_keys, mask);
        let m = pmlang::compile_one("t.pmc", &src).expect("family compiles");
        assert_tiers_agree(&format!("publish-{n_keys}-{mask:#x}"), &m, "main");
    }

    #[test]
    fn random_publish_repairs_are_tier_identical(n_keys in 1u8..4, mask in 0u8..=255) {
        let src = program(n_keys, mask);
        let m = pmlang::compile_one("t.pmc", &src).expect("family compiles");
        assert_repair_agrees(&format!("publish-{n_keys}-{mask:#x}"), &m, "main");
    }
}
