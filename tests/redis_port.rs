//! The §6.3 Redis case study as an integration test: Hippocrates turns the
//! flush-free Redis into a durable port whose behavior matches the
//! developer port and whose performance beats the intraprocedural repair.

use bench::redisx::{build_redis_variants, calibration_ops, measure_workload, to_redis_ops};
use pmapps::redis::{attach_workload, build, RedisBuild, RedisOp};
use pmcheck::run_and_check;
use pmvm::{Vm, VmOptions};
use ycsb::{Generator, Workload};

#[test]
fn flush_free_redis_has_missing_flush_bugs_only() {
    let mut m = build(RedisBuild::FlushFree).unwrap();
    let entry = attach_workload(&mut m, "cal", &calibration_ops());
    let checked = run_and_check(&m, &entry, VmOptions::default()).unwrap();
    assert!(!checked.report.is_clean());
    // Fences were kept, so every report is missing-flush (§6.3: "we leave
    // memory fences … to preserve semantic ordering").
    for bug in checked.report.deduped_bugs() {
        assert_eq!(bug.kind, pmcheck::BugKind::MissingFlush, "{bug}");
    }
}

#[test]
fn repaired_redis_is_clean_under_fresh_workloads() {
    let mut v = build_redis_variants();
    // A workload the repair never saw: different keys, lengths, op mix.
    let ops: Vec<RedisOp> = (100..140)
        .map(|k| RedisOp::set(k, 256))
        .chain((100..140).map(RedisOp::get))
        .chain((100..110).map(RedisOp::del))
        .chain(std::iter::once(RedisOp::scan(120, 12)))
        .chain((120..125).map(|k| RedisOp::rmw(k, 256)))
        .collect();
    for m in [&mut v.hfull, &mut v.hintra] {
        let entry = attach_workload(m, "fresh", &ops);
        let checked = run_and_check(m, &entry, VmOptions::default()).unwrap();
        assert!(checked.report.is_clean(), "{}", checked.report.render());
    }
}

#[test]
fn all_variants_equivalent_and_ordered() {
    let mut v = build_redis_variants();
    let g = Generator::new(300, 300, 1024, 42);
    let load = to_redis_ops(&g.load_ops(), 1024);
    for w in [Workload::A, Workload::C] {
        let run = to_redis_ops(&g.run_ops(w), 1024);
        let tag = format!("w{}", w.label());
        let pm = measure_workload(&mut v.pm, &tag, &load, &run);
        let full = measure_workload(&mut v.hfull, &tag, &load, &run);
        let intra = measure_workload(&mut v.hintra, &tag, &load, &run);
        // Do no harm across variants.
        assert_eq!(pm.output, full.output, "{w:?}");
        assert_eq!(pm.output, intra.output, "{w:?}");
        // Fig. 4 ordering: full >= pm (never slower), intra well behind.
        assert!(
            full.run_cycles <= pm.run_cycles,
            "{w:?}: full slower than pm"
        );
        assert!(
            intra.run_cycles as f64 >= 1.5 * full.run_cycles as f64,
            "{w:?}: intra gap too small ({} vs {})",
            intra.run_cycles,
            full.run_cycles
        );
    }
}

#[test]
fn hfull_hoists_the_shared_copy_helper() {
    let v = build_redis_variants();
    assert!(v.hfull.function_by_name("copy_bytes_PM").is_some());
    // The volatile copy helper itself is untouched: the original is still
    // flush-free.
    let orig = v.hfull.function_by_name("copy_bytes").unwrap();
    let f = v.hfull.function(orig);
    let has_flush_call = f.linked_insts().any(|(_, i)| {
        matches!(&f.inst(i).op, pmir::Op::Call { callee, .. }
            if v.hfull.function(*callee).name().contains("flush"))
            || matches!(f.inst(i).op, pmir::Op::Flush { .. })
    });
    assert!(!has_flush_call, "volatile path must stay flush-free");
}

#[test]
fn repaired_redis_data_survives_restart() {
    let mut v = build_redis_variants();
    let ops: Vec<RedisOp> = (1..=10).map(|k| RedisOp::set(k, 128)).collect();
    let entry = attach_workload(&mut v.hfull, "persist", &ops);
    let run = Vm::new(VmOptions::default()).run(&v.hfull, &entry).unwrap();
    let media = run.machine.into_media();

    // Re-open the store from the durable medium and read everything back.
    let read_ops: Vec<RedisOp> = (1..=10).map(RedisOp::get).collect();
    let entry2 = attach_workload(&mut v.hfull, "recover", &read_ops);
    let run2 = Vm::new(VmOptions::default().with_media(media))
        .run(&v.hfull, &entry2)
        .unwrap();
    assert!(run2.output[0] != 0, "values must be durable across restart");
}
