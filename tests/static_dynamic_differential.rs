//! Differential harness: the static checker against the dynamic checker on
//! the whole `.pmc` corpus.
//!
//! The contract (ISSUE: static feeds repair without running the program):
//!
//! 1. On every *buggy* corpus variant, every bug the dynamic checker finds
//!    must also be found statically — same store instruction, with a
//!    kind-compatible classification (a static `missing-flush&fence` may
//!    subsume a dynamic `missing-flush`/`missing-fence` verdict and vice
//!    versa, because path joins can weaken the fence half; repair converges
//!    either way).
//! 2. On the *correct* builds, the static checker stays clean — the
//!    optimistic cover rules must not drown the repair engine in false
//!    alarms.
//! 3. Static-only extras on buggy variants are snapshotted per variant so a
//!    precision regression is a visible diff, not silent noise.

use pmcheck::{Bug, BugKind, CheckReport};
use pmvm::VmOptions;
use std::collections::BTreeSet;

/// Whether a static classification accounts for a dynamic one.
///
/// The static checker joins over *all* paths, so its fence bit can be
/// weaker (a fence on some-but-not-all paths demotes `missing-flush` to
/// `missing-flush&fence`) or stronger (a path the execution never took
/// fences). Either repair (flush, or flush+fence) heals the store; the
/// differential only requires the *flush half* to agree.
fn kind_compatible(dynamic: BugKind, stat: BugKind) -> bool {
    match dynamic {
        BugKind::MissingFlush => matches!(stat, BugKind::MissingFlush | BugKind::MissingFlushFence),
        BugKind::MissingFence => matches!(stat, BugKind::MissingFence | BugKind::MissingFlushFence),
        BugKind::MissingFlushFence => {
            matches!(stat, BugKind::MissingFlushFence | BugKind::MissingFlush)
        }
    }
}

fn store_key(b: &Bug) -> Option<(String, u32)> {
    b.store_at.as_ref().map(|at| (at.function.clone(), at.inst))
}

/// Asserts contract (1) for one module and returns the static-only extras
/// as stable `function:inst kind` lines.
fn differential(tag: &str, m: &pmir::Module, entry: &str) -> Vec<String> {
    let dynamic = pmcheck::run_and_check(m, entry, VmOptions::default())
        .unwrap_or_else(|e| panic!("{tag}: vm failed: {e}"))
        .report;
    let stat = pmstatic::check_module(m, entry).unwrap_or_else(|e| panic!("{tag}: {e}"));
    assert_missed_none(tag, &dynamic, &stat);
    static_only(&dynamic, &stat)
}

fn assert_missed_none(tag: &str, dynamic: &CheckReport, stat: &CheckReport) {
    for d in dynamic.deduped_bugs() {
        let key = store_key(d).unwrap_or_else(|| panic!("{tag}: dynamic bug without store_at"));
        let found = stat
            .bugs
            .iter()
            .any(|s| store_key(s).as_ref() == Some(&key) && kind_compatible(d.kind, s.kind));
        assert!(
            found,
            "{tag}: dynamic {} at {}:{} not found statically.\nstatic report:\n{}",
            d.kind,
            key.0,
            key.1,
            stat.render()
        );
    }
}

/// Static findings about *stores the dynamic checker never flagged at all*
/// (classification skew on a store both checkers flagged is covered by the
/// kind-compatibility contract, not counted as an extra). These are the
/// checker's unexecuted-path value-add — snapshotted so precision changes
/// surface as diffs.
fn static_only(dynamic: &CheckReport, stat: &CheckReport) -> Vec<String> {
    let dyn_stores: BTreeSet<_> = dynamic.bugs.iter().filter_map(store_key).collect();
    let mut extras = BTreeSet::new();
    for s in stat.deduped_bugs() {
        let Some(key) = store_key(s) else { continue };
        if !dyn_stores.contains(&key) {
            extras.insert(format!("{}:{} {}", key.0, key.1, s.kind));
        }
    }
    extras.into_iter().collect()
}

#[test]
fn correct_builds_are_statically_clean() {
    let m = pmapps::pclht::build_correct().unwrap();
    let r = pmstatic::check_module(&m, pmapps::pclht::ENTRY).unwrap();
    assert!(r.is_clean(), "pclht-correct:\n{}", r.render());

    let m = pmapps::memcached::build_correct().unwrap();
    let r = pmstatic::check_module(&m, pmapps::memcached::ENTRY).unwrap();
    assert!(r.is_clean(), "memcached-correct:\n{}", r.render());

    let ops: Vec<pmapps::redis::RedisOp> = (1..=10)
        .map(|k| pmapps::redis::RedisOp::set(k, 64))
        .collect();
    let mut m = pmapps::redis::build(pmapps::redis::RedisBuild::PmPort).unwrap();
    let entry = pmapps::redis::attach_workload(&mut m, "bench", &ops);
    let r = pmstatic::check_module(&m, &entry).unwrap();
    assert!(r.is_clean(), "redis-pmport:\n{}", r.render());
}

#[test]
fn pclht_buggy_variants_covered_statically() {
    for id in pmapps::pclht::BUG_IDS {
        let m = pmapps::pclht::build_buggy(id).unwrap();
        let extras = differential(id, &m, pmapps::pclht::ENTRY);
        assert!(
            extras.is_empty(),
            "{id}: unexpected static-only findings: {extras:#?}"
        );
    }
}

#[test]
fn memcached_buggy_variants_covered_statically() {
    for id in pmapps::memcached::BUG_IDS {
        let m = pmapps::memcached::build_buggy(id).unwrap();
        let extras = differential(id, &m, pmapps::memcached::ENTRY);
        // Snapshot: mm-10 removes both unlink persists in `mc_delete`, but
        // the workload only ever deletes the head of a bucket chain — the
        // mid-chain `store8(prev, 64, ..)` is unexecuted, so only the
        // static checker sees it.
        let expected: &[&str] = match id {
            "mm-10" => &["mc_delete:47 missing-flush"],
            _ => &[],
        };
        assert_eq!(
            extras, expected,
            "{id}: static-only findings drifted: {extras:#?}"
        );
    }
}

#[test]
fn static_source_heals_what_dynamic_cannot_see() {
    // mm-10 removes both unlink persists in `mc_delete`; the workload only
    // exercises the head-of-bucket branch. A dynamic-only repair converges
    // while the mid-chain unlink store is still unflushed — repairing
    // against both sources heals it too, verified by re-running both
    // checkers on the healed module.
    use hippocrates::{BugSource, Hippocrates, RepairOptions};

    let mut m = pmapps::memcached::build_buggy("mm-10").unwrap();
    let entry = pmapps::memcached::ENTRY;

    let mut dyn_only = m.clone();
    Hippocrates::new(RepairOptions::default())
        .repair_until_clean(&mut dyn_only, entry)
        .unwrap();
    let leftover = pmstatic::check_module(&dyn_only, entry).unwrap();
    assert!(
        leftover
            .deduped_bugs()
            .iter()
            .any(|b| store_key(b).is_some_and(|(f, _)| f == "mc_delete")),
        "dynamic-only repair should leave the unexecuted unlink store buggy:\n{}",
        leftover.render()
    );

    let outcome = Hippocrates::new(RepairOptions {
        bug_source: BugSource::Both,
        ..RepairOptions::default()
    })
    .repair_until_clean(&mut m, entry)
    .unwrap();
    assert!(outcome.clean);
    assert!(pmstatic::check_module(&m, entry).unwrap().is_clean());
    assert!(pmcheck::run_and_check(&m, entry, VmOptions::default())
        .unwrap()
        .report
        .is_clean());
}

#[test]
fn redis_flush_free_covered_statically() {
    let ops: Vec<pmapps::redis::RedisOp> = (1..=10)
        .map(|k| pmapps::redis::RedisOp::set(k, 64))
        .chain((1..=10).map(pmapps::redis::RedisOp::get))
        .collect();
    let mut m = pmapps::redis::build(pmapps::redis::RedisBuild::FlushFree).unwrap();
    let entry = pmapps::redis::attach_workload(&mut m, "bench", &ops);
    let extras = differential("redis-flush-free", &m, &entry);
    // Snapshot: the workload performs no DELs, so the delete path's stores
    // are invisible to the dynamic checker — the static checker still
    // audits them. This list changing (either way) is a precision change.
    assert_eq!(
        extras,
        vec![
            "redis_del:44 missing-flush".to_string(),
            "redis_del:49 missing-flush".to_string(),
        ],
        "redis-flush-free: static-only findings drifted"
    );
}
